//! Closed-loop re-planning under mid-run perturbations: the simulator
//! observes its engines, the shared [`ReplanPolicy`] fires on the observed
//! throughput gap, and [`FleetTopology::replan`] re-routes traffic — the
//! recovery the ROADMAP's online re-planning item asked for.

use helix_cluster::{ClusterProfile, ClusterSpec, ModelConfig, ModelId, NodeId};
use helix_core::{heuristics, IwrrScheduler, ReplanPolicy, ReplanReason, Topology};
use helix_sim::{ClusterSimulator, PerturbationEvent, SimulationConfig};
use helix_workload::{ArrivalPattern, Workload};

fn profile() -> ClusterProfile {
    ClusterProfile::analytic(ClusterSpec::solver_quality_10(), ModelConfig::llama_13b())
}

/// Swarm's balanced stages replicate every layer range over several nodes,
/// so the planner has somewhere to shift flow when one replica degrades.
fn topology(profile: &ClusterProfile) -> Topology {
    let placement = heuristics::swarm_placement(profile).unwrap();
    Topology::plan(profile, &placement, true).unwrap()
}

fn saturating_workload(n: usize) -> Workload {
    let config = helix_workload::AzureTraceConfig {
        mean_input_tokens: 128.0,
        mean_output_tokens: 48.0,
        max_input_tokens: 384,
        max_output_tokens: 96,
        ..Default::default()
    };
    config
        .generate(n, 9)
        .with_arrivals(ArrivalPattern::Offline, 4)
}

/// Mean fleet-total interval throughput over windows inside `[from, to)`.
fn mean_window_throughput(intervals: &[helix_sim::IntervalMetrics], from: f64, to: f64) -> f64 {
    let windows: Vec<f64> = intervals
        .iter()
        .filter(|w| w.start >= from && w.end <= to)
        .map(|w| w.total_throughput())
        .collect();
    assert!(!windows.is_empty(), "no complete window in [{from}, {to})");
    windows.iter().sum::<f64>() / windows.len() as f64
}

/// The busiest node among those with the smallest positive flow share — a
/// stage replica the rest of its stage can cover for, so a slowdown is
/// recoverable by routing around it.
fn modest_flow_node(topology: &Topology) -> NodeId {
    topology
        .nodes()
        .filter(|n| n.flow > 1e-6)
        .min_by(|a, b| {
            a.flow
                .partial_cmp(&b.flow)
                .unwrap()
                .then(a.node.cmp(&b.node))
        })
        .expect("some node carries flow")
        .node
}

#[test]
fn slowdown_triggers_replan_and_recovers_ninety_percent() {
    let profile = profile();
    let topology = topology(&profile);
    let slow = modest_flow_node(&topology);
    let perturb_at = 120.0;
    let recover_at = 360.0;
    let end = 540.0;
    let events = [
        PerturbationEvent::NodeSlowdown {
            at: perturb_at,
            node: slow,
            factor: 2.0,
        },
        PerturbationEvent::NodeRecovery {
            at: recover_at,
            node: slow,
        },
    ];
    let policy = ReplanPolicy {
        check_interval_secs: 10.0,
        gap_threshold: 0.25,
        cooldown_secs: 30.0,
        min_occupancy: 0.05,
    };
    // Enough work to keep the cluster saturated through the whole horizon.
    let workload = saturating_workload(12000);
    let config = SimulationConfig::offline(end)
        .with_warmup(0.0)
        .with_admission_limit(64);

    let scheduler = IwrrScheduler::from_topology(&topology).unwrap();
    let mut sim = ClusterSimulator::new(&topology, Box::new(scheduler));
    let report = sim.run_with_events(&workload, config, &events, Some(policy));

    // The loop fired: at least one gap-triggered re-plan after the slowdown.
    let gap_replans: Vec<_> = report
        .replans
        .iter()
        .filter(|r| {
            matches!(
                r.reason,
                ReplanReason::ThroughputGap { node, speed, .. }
                    if node == slow && speed < 0.75
            )
        })
        .collect();
    assert!(
        !gap_replans.is_empty(),
        "the 2x slowdown must trigger a re-plan; log: {:?}",
        report.replans
    );
    let replan_at = gap_replans[0].at;
    assert!(replan_at >= perturb_at, "re-plan follows the slowdown");

    // Recovery: steady-state throughput after the re-plan settles is at
    // least 90% of the pre-perturbation steady state.
    let pre = mean_window_throughput(&report.intervals, 40.0, perturb_at);
    let post = mean_window_throughput(&report.intervals, replan_at + 60.0, replan_at + 180.0);
    assert!(
        post >= 0.9 * pre,
        "post-re-plan throughput {post:.1} tok/s must recover >= 90% of \
         pre-perturbation {pre:.1} tok/s (re-plan at {replan_at})"
    );

    // The gap is measured against the *plan*: once the slowdown is priced
    // in, the policy goes quiet instead of re-firing every cooldown.
    let replans_between: usize = report
        .replans
        .iter()
        .filter(|r| r.at > replan_at && r.at < recover_at)
        .count();
    assert!(
        replans_between <= 1,
        "a priced-in slowdown must not re-fire the loop every cooldown; \
         got {replans_between} extra re-plans: {:?}",
        report.replans
    );

    // When the node recovers, the upward drift re-prices it back to full
    // speed.
    let recovered = report.replans.iter().any(|r| {
        r.at >= recover_at
            && matches!(r.reason, ReplanReason::ThroughputGap { node, .. } if node == slow)
    });
    assert!(
        recovered,
        "recovery must fire the loop; log: {:?}",
        report.replans
    );
    assert_eq!(
        sim.fleet().compute_share(ModelId(0), slow),
        1.0,
        "the recovered node is re-priced at full speed"
    );
}

#[test]
fn replanning_beats_not_replanning_under_the_same_slowdown() {
    let profile = profile();
    let topology = topology(&profile);
    let slow = modest_flow_node(&topology);
    let events = [PerturbationEvent::NodeSlowdown {
        at: 60.0,
        node: slow,
        factor: 4.0,
    }];
    let config = SimulationConfig::offline(360.0)
        .with_warmup(60.0)
        .with_admission_limit(64);
    let run = |policy: Option<ReplanPolicy>| {
        let scheduler = IwrrScheduler::from_topology(&topology).unwrap();
        let mut sim = ClusterSimulator::new(&topology, Box::new(scheduler));
        sim.run_with_events(&saturating_workload(2500), config, &events, policy)
    };
    let with_loop = run(Some(ReplanPolicy::default()));
    let without_loop = run(None);
    assert!(!with_loop.replans.is_empty());
    assert!(without_loop.replans.is_empty());
    // The closed loop never loses to the frozen plan under drift (small
    // tolerance absorbs scheduling noise).
    assert!(
        with_loop.metrics.overall.decode_throughput()
            >= without_loop.metrics.overall.decode_throughput() * 0.97,
        "with loop {:.1} vs frozen {:.1}",
        with_loop.metrics.overall.decode_throughput(),
        without_loop.metrics.overall.decode_throughput()
    );
}

#[test]
fn arrival_rate_shift_compresses_late_arrivals() {
    let profile = profile();
    let topology = topology(&profile);
    let workload = saturating_workload(120).with_arrivals(ArrivalPattern::constant_rate(1.0), 5);
    let config = SimulationConfig::online(400.0).with_warmup(0.0);
    let run = |events: &[PerturbationEvent]| {
        let scheduler = IwrrScheduler::from_topology(&topology).unwrap();
        let mut sim = ClusterSimulator::new(&topology, Box::new(scheduler));
        sim.run_with_events(&workload, config, events, None)
    };
    let steady = run(&[]);
    // Doubling the arrival rate from t=30 squeezes the same requests into a
    // shorter horizon: every request still completes, sooner.
    let burst = run(&[PerturbationEvent::ArrivalRateShift {
        at: 30.0,
        factor: 2.0,
    }]);
    assert_eq!(
        steady.metrics.overall.completed_requests,
        burst.metrics.overall.completed_requests
    );
    assert!(burst.metrics.overall.measured_seconds <= steady.metrics.overall.measured_seconds);
}
