//! Figure 7: geo-distributed clusters (3 regions, 100 Mb/s / 50 ms between
//! them) serving LLaMA 30B and 70B — throughput and latency for Helix, Swarm
//! and separate pipelines.
//!
//! ```text
//! cargo run --release -p helix-bench --bin fig7_geo_distributed [--full]
//! ```

use helix_bench::{
    print_serving_table, run_serving, ExperimentReport, ExperimentScale, ServingSetting, SystemKind,
};
use helix_cluster::{ClusterProfile, ClusterSpec, ModelConfig};

fn main() {
    let scale = ExperimentScale::from_args();
    let mut all_rows = Vec::new();
    for model in [ModelConfig::llama_30b(), ModelConfig::llama2_70b()] {
        let profile = ClusterProfile::analytic(ClusterSpec::geo_distributed_24(), model);
        let mut rows = Vec::new();
        for setting in [ServingSetting::Offline, ServingSetting::Online] {
            for system in [
                SystemKind::Helix,
                SystemKind::Swarm,
                SystemKind::SeparatePipelines,
            ] {
                if let Some(row) = run_serving(&profile, system, setting, scale, 71) {
                    rows.push(row);
                }
            }
        }
        print_serving_table(
            &format!(
                "Figure 7: geo-distributed clusters, {}",
                profile.model().name
            ),
            &rows,
        );
        // The paper highlights Helix's shallower pipelines under slow networks.
        if let (Some(h), Some(s)) = (
            rows.iter().find(|r| r.system == "Helix"),
            rows.iter().find(|r| r.system == "Swarm"),
        ) {
            println!(
                "pipeline depth: Helix {} vs Swarm {}",
                h.pipeline_depth, s.pipeline_depth
            );
        }
        all_rows.extend(rows);
    }
    let report = ExperimentReport::new(
        "fig7_geo_distributed",
        "Figure 7 (a-f)",
        scale,
        serde_json::to_value(&all_rows).unwrap(),
    );
    if let Ok(path) = report.write() {
        println!("\nwrote {}", path.display());
    }
}
