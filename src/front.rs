//! One front door over both serving surfaces.
//!
//! The workspace has two executable models of a Helix cluster: the
//! discrete-event simulator ([`helix_sim::ClusterSimulator`]) and the
//! multi-threaded prototype runtime (`helix_runtime`).  Both now expose a
//! session-shaped API — [`helix_runtime::ServingSession`] and
//! [`helix_sim::SimSession`] — and this module ties them together with the
//! [`ServingFrontEnd`] trait, so examples, tests and benches can drive either
//! surface through one generic `submit → drain → finish` flow:
//!
//! ```rust,no_run
//! use helix::front::ServingFrontEnd;
//! use helix_workload::Workload;
//!
//! fn run<F: ServingFrontEnd>(front: F, workload: &Workload) -> Result<F::Report, F::Error> {
//!     front.serve(workload)
//! }
//! ```

use helix_cluster::{ModelId, NodeId};
use helix_core::{LayerRange, PlacementDelta, ReplicationPolicy};
use helix_runtime::{RuntimeError, RuntimeReport, ServingSession};
use helix_sim::{FleetRunReport, SimSession};
use helix_workload::{Request, TicketId, Workload};
use std::convert::Infallible;

/// A session-shaped serving surface: non-blocking submission, mid-run speed
/// perturbation, drain and a final report.
///
/// Implemented by [`ServingSession`] (threaded prototype runtime) and
/// [`SimSession`] (discrete-event simulator).  The two return different
/// report types — the runtime's per-request [`RuntimeReport`] and the
/// simulator's windowed [`FleetRunReport`] — so the report is an associated
/// type rather than a common denominator that would lose information.
pub trait ServingFrontEnd {
    /// The report the surface produces when finished.
    type Report;
    /// The error type of draining/finishing ([`Infallible`] for the
    /// simulator).
    type Error: std::error::Error + 'static;

    /// Submits one request and returns its ticket without blocking.
    fn submit(&mut self, request: Request) -> TicketId;

    /// Makes `node`'s batches take `factor`× the cost model's prediction
    /// from now on (1.0 restores nominal speed).  Both surfaces *measure*
    /// the resulting gap; adaptive configurations react to the measurement.
    fn inject_speed(&mut self, node: NodeId, factor: f64);

    /// Migrates `layers` of `model` from `from` to `to` mid-run, KV state
    /// included: the fleet re-plans with the equivalent placement delta, the
    /// KV pages travel the `from → to` link as modelled traffic, and the
    /// hand-over sequences freeze → transfer → re-route → resume so no
    /// in-flight pipeline drops.  On the threaded runtime the migration
    /// applies immediately; on the simulator it applies at the start of the
    /// next drained batch.
    fn migrate(&mut self, model: ModelId, from: NodeId, to: NodeId, layers: LayerRange);

    /// Installs the fleet-wide KV replication policy governing subsequently
    /// admitted requests: hot sequences trickle their KV to standby
    /// tenancies as decode proceeds, making them promotable when their
    /// primary fails.
    fn set_replication(&mut self, policy: ReplicationPolicy);

    /// Kills `node` at virtual time `at` (seconds since the surface
    /// started serving the current batch): its workers stop, in-flight
    /// pipelines crossing it promote their replicas — when the replication
    /// policy trickled their KV to standbys — or abort and re-admit, and the
    /// fleet re-plans around the hole.  The fail-over shows up in the final
    /// report's `failovers` log on both surfaces.
    fn fail_node(&mut self, node: NodeId, at: f64);

    /// Completes everything submitted so far.
    fn drain(&mut self) -> Result<(), Self::Error>;

    /// Drains, shuts the surface down and returns its report.
    fn finish(self) -> Result<Self::Report, Self::Error>
    where
        Self: Sized;

    /// Serves a whole workload: submit everything, drain, finish.
    fn serve(mut self, workload: &Workload) -> Result<Self::Report, Self::Error>
    where
        Self: Sized,
    {
        for request in workload.requests() {
            self.submit(*request);
        }
        self.drain()?;
        self.finish()
    }
}

impl ServingFrontEnd for ServingSession {
    type Report = RuntimeReport;
    type Error = RuntimeError;

    fn submit(&mut self, request: Request) -> TicketId {
        ServingSession::submit(self, request)
    }

    fn inject_speed(&mut self, node: NodeId, factor: f64) {
        ServingSession::inject_speed(self, node, factor)
    }

    fn migrate(&mut self, model: ModelId, from: NodeId, to: NodeId, layers: LayerRange) {
        self.apply_placement_delta(PlacementDelta::new().migrate(model, from, to, layers));
    }

    fn set_replication(&mut self, policy: ReplicationPolicy) {
        ServingSession::set_replication(self, policy)
    }

    fn fail_node(&mut self, node: NodeId, at: f64) {
        ServingSession::fail_node(self, node, at)
    }

    fn drain(&mut self) -> Result<(), RuntimeError> {
        ServingSession::drain(self)
    }

    fn finish(self) -> Result<RuntimeReport, RuntimeError> {
        ServingSession::finish(self)
    }

    fn serve(self, workload: &Workload) -> Result<RuntimeReport, RuntimeError> {
        // The inherent batch path: on a fresh session this is the legacy
        // blocking loop, bit-identical to the pre-session runtime.
        ServingSession::serve(self, workload)
    }
}

impl ServingFrontEnd for SimSession {
    type Report = FleetRunReport;
    type Error = Infallible;

    fn submit(&mut self, request: Request) -> TicketId {
        SimSession::submit(self, request)
    }

    fn inject_speed(&mut self, node: NodeId, factor: f64) {
        SimSession::inject_speed(self, node, factor)
    }

    fn migrate(&mut self, model: ModelId, from: NodeId, to: NodeId, layers: LayerRange) {
        SimSession::migrate(self, model, from, to, layers)
    }

    fn set_replication(&mut self, policy: ReplicationPolicy) {
        SimSession::set_replication(self, policy)
    }

    fn fail_node(&mut self, node: NodeId, at: f64) {
        SimSession::fail_node(self, node, at)
    }

    fn drain(&mut self) -> Result<(), Infallible> {
        SimSession::drain(self);
        Ok(())
    }

    fn finish(self) -> Result<FleetRunReport, Infallible> {
        Ok(SimSession::finish(self))
    }
}
