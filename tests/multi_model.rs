//! End-to-end multi-model serving: a 2-model mixed workload runs through the
//! joint fleet planner → `FleetTopology` → per-model IWRR → the discrete-event
//! simulator **and** the prototype runtime, with per-model throughput and
//! latency reported by both surfaces.

use helix::prelude::*;
use helix_core::fleet::{fleet_profiles, FleetAnnealingOptions, FleetAnnealingPlanner};
use helix_core::{FleetScheduler, FleetTopology};
use helix_sim::SimulationConfig;
use helix_workload::AzureTraceConfig;

fn planned_fleet() -> (Vec<ClusterProfile>, FleetTopology) {
    let profiles = fleet_profiles(
        &ClusterSpec::single_cluster_24(),
        &[ModelConfig::llama_30b(), ModelConfig::llama_13b()],
    );
    let planner = FleetAnnealingPlanner::new(&profiles).with_options(FleetAnnealingOptions {
        iterations: 500,
        ..Default::default()
    });
    let (placement, flows) = planner.solve().expect("2-model fleet plans");
    assert!(flows.iter().all(|&f| f > 0.0), "per-model flows {flows:?}");
    let fleet = FleetTopology::plan(&profiles, &placement, true).expect("fleet topology plans");
    (profiles, fleet)
}

fn mixed_workload(n_per_model: usize) -> helix_workload::Workload {
    let config = AzureTraceConfig {
        mean_input_tokens: 96.0,
        mean_output_tokens: 16.0,
        max_input_tokens: 256,
        max_output_tokens: 32,
        ..Default::default()
    };
    helix_workload::Workload::merge(vec![
        config
            .generate(n_per_model, 21)
            .with_model(helix_cluster::ModelId(0)),
        config
            .generate(n_per_model, 22)
            .with_model(helix_cluster::ModelId(1)),
    ])
    .with_arrivals(ArrivalPattern::Offline, 9)
}

#[test]
fn two_model_mixed_workload_serves_in_the_simulator() {
    let (_, fleet) = planned_fleet();
    let schedulers = FleetScheduler::iwrr(&fleet).unwrap();
    let mut sim = helix_sim::ClusterSimulator::new_fleet(&fleet, schedulers);
    let workload = mixed_workload(30);
    let metrics = sim.run_per_model(&workload, SimulationConfig::offline(200.0).with_warmup(0.0));

    assert_eq!(metrics.per_model.len(), 2);
    for (m, per_model) in metrics.per_model.iter().enumerate() {
        assert!(
            per_model.decode_throughput() > 0.0,
            "model {m} reports no throughput"
        );
        assert!(
            per_model.completed_requests > 0,
            "model {m} completed nothing"
        );
        assert!(per_model.avg_prompt_latency() > 0.0);
    }
    // The combined view aggregates the per-model ones.
    assert_eq!(
        metrics.overall.decode_tokens,
        metrics
            .per_model
            .iter()
            .map(|m| m.decode_tokens)
            .sum::<u64>()
    );
    assert!(metrics.overall.decode_throughput() > 0.0);
}

#[test]
fn two_model_mixed_workload_serves_in_the_runtime() {
    let (_, fleet) = planned_fleet();
    let schedulers = FleetScheduler::iwrr(&fleet).unwrap();
    let session = helix_runtime::ServingBuilder::new()
        .fleet(&fleet)
        .schedulers(schedulers)
        .config(helix_runtime::RuntimeConfig::fast_test())
        .build()
        .unwrap();
    let workload = mixed_workload(15);
    let total = workload.len();
    let report = session.serve(&workload).unwrap();
    assert_eq!(report.completed(), total);
    for m in 0..2 {
        let model = helix_cluster::ModelId(m);
        assert!(
            report.decode_throughput_for(model) > 0.0,
            "model {m} reports no throughput"
        );
        let latency = report.prompt_latency_for(model);
        assert!(latency.count > 0 && latency.mean >= 0.0);
        assert!(!report.outcomes_for(model).is_empty());
    }
    // Throughputs decompose over models.
    let sum = report.decode_throughput_for(helix_cluster::ModelId(0))
        + report.decode_throughput_for(helix_cluster::ModelId(1));
    assert!((sum - report.decode_throughput()).abs() < 1e-6);
}

#[test]
fn jsonl_traces_with_model_mixes_replay_through_the_simulator() {
    let (_, fleet) = planned_fleet();
    // A small hand-written mixed trace.
    let mut lines = String::new();
    for i in 0..30 {
        lines.push_str(&format!(
            "{{\"arrival_time\": {:.2}, \"prompt_tokens\": 64, \"output_tokens\": 8, \"model\": {}}}\n",
            0.1 * i as f64,
            i % 2
        ));
    }
    let workload = helix_workload::Workload::from_jsonl_str(&lines).unwrap();
    assert_eq!(workload.len(), 30);
    assert_eq!(workload.models().len(), 2);
    let schedulers = FleetScheduler::iwrr(&fleet).unwrap();
    let mut sim = helix_sim::ClusterSimulator::new_fleet(&fleet, schedulers);
    let metrics = sim.run_per_model(&workload, SimulationConfig::online(120.0).with_warmup(0.0));
    assert!(metrics.per_model[0].completed_requests > 0);
    assert!(metrics.per_model[1].completed_requests > 0);
}
