//! Integration tests checking the paper's qualitative claims at reduced
//! scale: who wins, in which direction, and by roughly how much.

use helix::prelude::*;

fn evaluate_flow(profile: &ClusterProfile, placement: &ModelPlacement) -> f64 {
    FlowGraphBuilder::new(profile)
        .build(placement)
        .map(|g| g.max_flow().value)
        .unwrap_or(0.0)
}

#[test]
fn fig2_max_flow_equals_serving_bottleneck() {
    // The Fig. 2 example: only T4-2 holds the last layer, so the cluster
    // throughput is capped by what can reach and pass through T4-2.
    let mut model = ModelConfig::llama2_70b();
    model.num_layers = 3;
    let profile = ClusterProfile::analytic(ClusterSpec::fig2_example(), model);
    let mut placement = ModelPlacement::empty(3);
    placement.assign(NodeId(0), LayerRange::new(0, 2));
    placement.assign(NodeId(1), LayerRange::new(0, 1));
    placement.assign(NodeId(2), LayerRange::new(2, 3));
    let graph = FlowGraphBuilder::new(&profile).build(&placement).unwrap();
    let flow = graph.max_flow();
    assert!(flow.value > 0.0);
    // All serving flow passes through T4-2 (node 2).
    let through_t42 = graph.node_flow(&flow, NodeId(2)).unwrap();
    assert!((through_t42 - flow.value).abs() < 1e-6);
    // The bottleneck (min cut) capacity matches, certifying optimality.
    let cut = graph.bottleneck(&flow);
    assert!((cut.capacity - flow.value).abs() < 1e-6);
}

#[test]
fn helix_placement_dominates_heuristics_on_both_paper_clusters() {
    // §6.6: Helix's placement achieves higher max-flow throughput than Swarm
    // and Petals placements on the single cluster and the geo-distributed
    // clusters.
    for (cluster, model) in [
        (ClusterSpec::single_cluster_24(), ModelConfig::llama2_70b()),
        (ClusterSpec::geo_distributed_24(), ModelConfig::llama2_70b()),
    ] {
        let profile = ClusterProfile::analytic(cluster, model);
        let swarm = evaluate_flow(&profile, &heuristics::swarm_placement(&profile).unwrap());
        let petals = evaluate_flow(&profile, &heuristics::petals_placement(&profile).unwrap());
        let planner = FlowAnnealingPlanner::new(&profile).with_options(AnnealingOptions {
            iterations: 1500,
            ..Default::default()
        });
        let (_, helix_flow) = planner.solve().unwrap();
        assert!(
            helix_flow >= swarm * 1.2,
            "{}: helix {} should clearly beat swarm {}",
            profile.cluster().name,
            helix_flow,
            swarm
        );
        assert!(
            helix_flow >= petals,
            "{}: helix {} should be at least as good as petals {}",
            profile.cluster().name,
            helix_flow,
            petals
        );
    }
}

#[test]
fn partial_inference_never_hurts_throughput() {
    // §4.4: allowing partial inference only adds valid connections, so the
    // max flow of any placement can only grow.
    let profile =
        ClusterProfile::analytic(ClusterSpec::single_cluster_24(), ModelConfig::llama2_70b());
    for placement in [
        heuristics::swarm_placement(&profile).unwrap(),
        heuristics::petals_placement(&profile).unwrap(),
    ] {
        let with = FlowGraphBuilder::new(&profile)
            .partial_inference(true)
            .build(&placement)
            .unwrap()
            .max_flow()
            .value;
        let without = FlowGraphBuilder::new(&profile)
            .partial_inference(false)
            .build(&placement)
            .unwrap()
            .max_flow()
            .value;
        assert!(with >= without - 1e-6);
    }
}

#[test]
fn cluster_pruning_shrinks_the_milp_without_losing_much_throughput() {
    // §4.5 / §6.8: pruning to a bounded degree reduces problem size while the
    // achievable throughput stays close to the unpruned one.
    let profile =
        ClusterProfile::analytic(ClusterSpec::single_cluster_24(), ModelConfig::llama2_70b());
    let full_size = MilpPlacementPlanner::new(&profile).problem_size();
    let pruned_size = MilpPlacementPlanner::new(&profile)
        .prune_to_degree(12)
        .problem_size();
    assert!(pruned_size.0 < full_size.0 && pruned_size.1 < full_size.1);

    let placement = heuristics::petals_placement(&profile).unwrap();
    let full_flow = FlowGraphBuilder::new(&profile)
        .build(&placement)
        .unwrap()
        .max_flow()
        .value;
    let pruned_flow = FlowGraphBuilder::new(&profile)
        .prune_to_degree(12)
        .build(&placement)
        .unwrap()
        .max_flow()
        .value;
    assert!(
        pruned_flow >= full_flow * 0.8,
        "pruned {pruned_flow} vs full {full_flow}"
    );
}

#[test]
fn upper_bound_is_respected_by_every_planner() {
    // §4.5: the cluster throughput can never exceed the sum of per-node
    // compute divided by the number of layers; all planners respect it.
    for cluster in [
        ClusterSpec::solver_quality_10(),
        ClusterSpec::single_cluster_24(),
        ClusterSpec::high_heterogeneity_42(),
    ] {
        let profile = ClusterProfile::analytic(cluster, ModelConfig::llama_30b());
        let bound = profile.throughput_upper_bound();
        for placement in [
            heuristics::swarm_placement(&profile).ok(),
            heuristics::petals_placement(&profile).ok(),
            heuristics::separate_pipelines_placement(&profile).ok(),
        ]
        .into_iter()
        .flatten()
        {
            let flow = evaluate_flow(&profile, &placement);
            assert!(
                flow <= bound * 1.0001,
                "{}: {flow} > bound {bound}",
                profile.cluster().name
            );
        }
    }
}

#[test]
fn table1_reproduces_min_gpu_counts() {
    // Table 1 of the paper, allowing a one-GPU slack since our parameter
    // counts are analytic rather than published totals.
    let rows: [(ModelConfig, usize, usize, usize); 4] = [
        (ModelConfig::llama2_70b(), 12, 7, 4),
        (ModelConfig::gpt3_175b(), 30, 18, 9),
        (ModelConfig::grok1_314b(), 53, 32, 16),
        (ModelConfig::llama3_405b(), 68, 41, 21),
    ];
    for (model, l4, a100, h100) in rows {
        let close = |got: usize, want: usize| got.abs_diff(want) <= 2;
        assert!(
            close(model.min_gpus(24.0, 0.5), l4),
            "{} L4 count",
            model.name
        );
        assert!(
            close(model.min_gpus(40.0, 0.5), a100),
            "{} A100 count",
            model.name
        );
        assert!(
            close(model.min_gpus(80.0, 0.5), h100),
            "{} H100 count",
            model.name
        );
    }
}

#[test]
fn iwrr_scheduling_avoids_congestion_better_than_random() {
    // §6.7 at small scale: with the same placement, IWRR should not produce
    // more link congestion than random scheduling on the geo-distributed
    // cluster.
    let profile =
        ClusterProfile::analytic(ClusterSpec::geo_distributed_24(), ModelConfig::llama_30b());
    let planner = FlowAnnealingPlanner::new(&profile).with_options(AnnealingOptions {
        iterations: 500,
        ..Default::default()
    });
    let (placement, _) = planner.solve().unwrap();
    let workload = AzureTraceConfig {
        mean_input_tokens: 96.0,
        mean_output_tokens: 16.0,
        max_input_tokens: 256,
        max_output_tokens: 32,
        ..Default::default()
    }
    .generate(60, 5)
    .with_arrivals(ArrivalPattern::Offline, 6);

    let topology = Topology::plan(&profile, &placement, true).unwrap();
    let congestion = |scheduler: Box<dyn Scheduler>| {
        let mut sim = ClusterSimulator::new(&topology, scheduler);
        let metrics = sim.run(&workload, SimulationConfig::offline(150.0).with_warmup(0.0));
        metrics
            .most_congested_links(1)
            .first()
            .map(|l| l.mean_queue_delay)
            .unwrap_or(0.0)
    };
    let iwrr = congestion(Box::new(IwrrScheduler::from_topology(&topology).unwrap()));
    let random = congestion(Box::new(RandomScheduler::new(&topology, 23)));
    assert!(
        iwrr <= random * 1.5 + 0.05,
        "iwrr congestion {iwrr} should not exceed random {random} by much"
    );
}
