//! The coordinator: request admission, per-request pipeline scheduling and
//! lifecycle tracking.
//!
//! This is the runtime counterpart of the coordinator in the paper's Fig. 3:
//! when a request arrives it asks the configured [`Scheduler`] for a
//! per-request pipeline, sends the request to the pipeline's first node, and
//! when the last node reports a finished iteration it either launches the
//! next decode iteration on the *same* pipeline or completes the request and
//! releases its KV cache everywhere (§5.1–§5.2).
//!
//! The coordinator runs in one of two modes:
//!
//! * **batch** ([`Coordinator::run`]) — every request of a [`Workload`] is
//!   admitted at its arrival time and the future resolves when all of them
//!   completed;
//! * **live** ([`Coordinator::run_live`]) — the session loop behind
//!   [`ServingSession`](crate::ServingSession): requests arrive through a
//!   control channel, completions stream back as they happen, and the
//!   control plane accepts mid-run placement deltas that can *spawn new
//!   workers* for (node, model) pairs the original build never had.
//!
//! When a [`ReplanPolicy`] is configured, either mode also closes the online
//! re-planning loop: every policy interval the workers' shared statistics
//! are read into [`NodeObservations`], and when the measured speed factors
//! warrant action [`FleetTopology::replan`] is applied **drain-then-switch**
//! — the affected models' schedulers and KV estimators are swapped for *new*
//! requests while every in-flight pipeline keeps the route it was assigned,
//! so nothing is dropped mid-generation.

use crate::clock::VirtualClock;
use crate::error::RuntimeError;
use crate::message::{Envelope, Phase, RuntimeMsg, StageWork};
use crate::metrics::RequestOutcome;
use crate::registry::{WorkerKey, WorkerRegistry, WorkerSpawner};
use helix_cluster::{ModelId, NodeId, TOKEN_WIRE_BYTES};
use helix_core::{
    ClusterState, EngineCounters, FleetTopology, HelixError, IwrrScheduler, KvCacheEstimator,
    KvMigration, KvTransferRecord, LayerRange, NodeObservations, ObservationWindows,
    PlacementDelta, PrefixRoute, PrefixRouter, PrefixStats, PrefixWork, ReplanPolicy, ReplanReason,
    ReplanRecord, RequestPipeline, Scheduler,
};
use helix_workload::{Request, RequestId, Workload};
use minirt::channel::{Receiver, Sender, TryRecvError};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deadline slack absorbing float rounding between virtual-time deadlines and
/// the wall clock, so a wait never wakes an iteration too early and re-arms a
/// deadline that is microscopically in the past.
const DEADLINE_SLACK: Duration = Duration::from_micros(1);

/// What arrives on the coordinator's inbound channel: worker traffic routed
/// by the fabric, or a wake-up ping the session sends right after queueing a
/// control message so the coordinator's waker-based wait returns immediately
/// and drains the control channel.
pub(crate) enum CoordinatorMsg {
    /// A message from a worker, delivered by the fabric.
    Runtime(RuntimeMsg),
    /// The session queued a control message; drain the control channel now.
    Wake,
}

/// Control messages a [`ServingSession`](crate::ServingSession) sends to its
/// coordinator thread.
pub(crate) enum SessionControl {
    /// Admit one request (honouring its `arrival_time` in virtual seconds).
    Submit(Request),
    /// Apply a placement delta to the standing fleet plan: re-plan, swap the
    /// affected models' schedulers, spawn workers for newly added
    /// (node, model) tenancies and retire ones the plan dropped (after their
    /// in-flight pipelines drain).
    ApplyDelta(PlacementDelta),
    /// Retire a worker that the active plan no longer schedules onto.
    Retire(NodeId, ModelId),
    /// Complete everything submitted so far, then acknowledge.
    Drain(Sender<()>),
    /// Drain and exit the live loop.
    Finish,
}

/// Everything the coordinator needs to run.
pub(crate) struct CoordinatorSpec {
    /// One scheduling policy per model of the fleet (Helix IWRR or one of the
    /// baselines); single-model runs carry exactly one entry.
    pub schedulers: Vec<Box<dyn Scheduler>>,
    /// One KV-cache usage estimator per model (§5.2) — each model's slice of
    /// a shared node's KV pool is masked independently.
    pub estimators: Vec<KvCacheEstimator>,
    /// Shared virtual clock.
    pub clock: VirtualClock,
    /// Messages arriving from workers through the fabric, plus session
    /// wake-ups.
    pub inbound: Receiver<CoordinatorMsg>,
    /// Outgoing messages into the fabric.
    pub fabric: Sender<Envelope>,
    /// The live worker set (shared with the fabric and the front door).
    pub registry: Arc<WorkerRegistry>,
    /// Spawns additional workers when a re-plan adds a tenancy.
    pub spawner: WorkerSpawner,
    /// Wall-clock budget for the whole run.
    pub max_wall: Duration,
    /// The standing fleet plan, mutated in place by re-plans.
    pub fleet: FleetTopology,
    /// When the observation-driven loop fires (None = only explicit deltas
    /// re-plan).
    pub policy: Option<ReplanPolicy>,
}

/// The coordinator's standing control-plane state: the fleet plan it serves,
/// the optional observation policy, and the re-plan log.
struct ControlState {
    fleet: FleetTopology,
    policy: Option<ReplanPolicy>,
    last_check: f64,
    last_replan: Option<f64>,
    /// The shared window accumulator (same measurement math as the sim).
    windows: ObservationWindows,
    replans: Vec<ReplanRecord>,
}

/// The coordinator's runtime view of the cluster for one model, used by that
/// model's scheduler.
///
/// Queue lengths and recent throughput come from the model's workers' shared
/// statistics (the runtime equivalent of the paper's runtime monitoring);
/// KV usage comes from the model's coordinator-side estimator, exactly as in
/// §5.2.
struct CoordinatorView<'a> {
    model: ModelId,
    estimator: &'a KvCacheEstimator,
    registry: &'a WorkerRegistry,
}

impl ClusterState for CoordinatorView<'_> {
    fn queue_len(&self, node: NodeId) -> usize {
        self.registry
            .stats((node, self.model))
            .map(|s| s.lock().queue_len)
            .unwrap_or(0)
    }

    fn recent_throughput(&self, node: NodeId) -> f64 {
        self.registry
            .stats((node, self.model))
            .map(|s| s.lock().recent_throughput)
            .unwrap_or(0.0)
    }

    fn kv_used_tokens(&self, node: NodeId) -> f64 {
        self.estimator.estimated_tokens(node)
    }

    fn kv_capacity_tokens(&self, node: NodeId) -> f64 {
        self.estimator.capacity_tokens(node)
    }
}

/// The in-flight state of one admitted request.
struct InFlight {
    request: Request,
    pipeline: Arc<RequestPipeline>,
    first_token_at: Option<f64>,
    decode_remaining: usize,
    /// The shared-prefix reference this admission holds, released (estimator
    /// refcounts and router home) when the request finishes.
    prefix: Option<PrefixWork>,
}

pub(crate) struct Coordinator {
    schedulers: Vec<Box<dyn Scheduler>>,
    /// Per-model cache-aware routers layered over the base schedulers.
    prefix_routers: Vec<PrefixRouter>,
    estimators: Vec<KvCacheEstimator>,
    clock: VirtualClock,
    inbound: Receiver<CoordinatorMsg>,
    fabric: Sender<Envelope>,
    registry: Arc<WorkerRegistry>,
    spawner: WorkerSpawner,
    max_wall: Duration,
    in_flight: HashMap<RequestId, InFlight>,
    outcomes: Vec<RequestOutcome>,
    control: ControlState,
    /// Workers the plan dropped, awaiting their in-flight pipelines to drain.
    pending_retire: HashSet<WorkerKey>,
    /// KV hand-overs in flight, with the virtual time each freeze began.
    /// Drains wait for these; each resolves on the matching `KvInstalled`.
    /// Freezes are layer-scoped: each pending migration holds exactly one
    /// `Freeze(layers)` on each endpoint, and overlapping hand-overs stack
    /// their ranges on the worker rather than refcounting here.
    pending_migrations: Vec<(KvMigration, f64)>,
    /// Re-route deferred until a model's last pending transfer lands: the
    /// re-planned scheduler to install then (freeze → transfer → re-route →
    /// resume).
    deferred_swaps: HashMap<usize, Box<dyn Scheduler>>,
    /// Completed KV hand-overs, for the final report.
    kv_transfers: Vec<KvTransferRecord>,
    /// Live-mode completion stream (None in batch mode).
    completions: Option<Sender<RequestOutcome>>,
}

impl Coordinator {
    pub(crate) fn new(spec: CoordinatorSpec) -> Self {
        assert_eq!(
            spec.schedulers.len(),
            spec.estimators.len(),
            "one estimator per model"
        );
        let prefix_routers = (0..spec.schedulers.len())
            .map(|_| PrefixRouter::new())
            .collect();
        Coordinator {
            schedulers: spec.schedulers,
            prefix_routers,
            estimators: spec.estimators,
            clock: spec.clock,
            inbound: spec.inbound,
            fabric: spec.fabric,
            registry: spec.registry,
            spawner: spec.spawner,
            max_wall: spec.max_wall,
            in_flight: HashMap::new(),
            outcomes: Vec::new(),
            control: ControlState {
                fleet: spec.fleet,
                policy: spec.policy,
                last_check: 0.0,
                last_replan: None,
                windows: ObservationWindows::new(),
                replans: Vec::new(),
            },
            pending_retire: HashSet::new(),
            pending_migrations: Vec::new(),
            deferred_swaps: HashMap::new(),
            kv_transfers: Vec::new(),
            completions: None,
        }
    }

    /// The re-plans the run applied (empty when none fired).
    pub(crate) fn take_replans(&mut self) -> Vec<ReplanRecord> {
        std::mem::take(&mut self.control.replans)
    }

    /// The KV hand-overs the run completed (empty when none migrated).
    pub(crate) fn take_kv_transfers(&mut self) -> Vec<KvTransferRecord> {
        std::mem::take(&mut self.kv_transfers)
    }

    /// Prefix-sharing counters summed over all models, taken (not copied) so
    /// back-to-back runs each report their own.
    pub(crate) fn take_prefix_stats(&mut self) -> PrefixStats {
        let mut stats = PrefixStats::default();
        for router in &mut self.prefix_routers {
            stats.merge(&router.take_stats());
        }
        stats
    }

    /// Serves the whole workload, returning one outcome per request in
    /// completion order (the batch path — the session's `serve` convenience
    /// wrapper drives exactly this future to completion on its own thread).
    pub(crate) async fn run(
        &mut self,
        workload: &Workload,
    ) -> Result<Vec<RequestOutcome>, RuntimeError> {
        let requests: Vec<Request> = workload.requests().to_vec();
        let total = requests.len();
        let mut next_arrival = 0usize;
        let mut deferred: VecDeque<Request> = VecDeque::new();

        while self.outcomes.len() < total {
            if self.clock.wall_elapsed() > self.max_wall {
                return Err(RuntimeError::WallClockBudgetExceeded {
                    budget: self.max_wall,
                    completed: self.outcomes.len(),
                    total,
                });
            }

            // Admit every request whose arrival time has passed.
            let now = self.clock.now();
            while next_arrival < total && requests[next_arrival].arrival_time <= now {
                let request = requests[next_arrival];
                next_arrival += 1;
                if !self.try_dispatch(request)? {
                    deferred.push_back(request);
                }
            }
            // Retry requests that could not be scheduled earlier (all
            // candidates masked by the KV high-water mark).
            for _ in 0..deferred.len() {
                let request = deferred.pop_front().expect("bounded by len");
                if !self.try_dispatch(request)? {
                    deferred.push_back(request);
                }
            }
            if !deferred.is_empty() && self.in_flight.is_empty() {
                return Err(RuntimeError::Stalled {
                    pending: deferred.len() + (total - next_arrival),
                    completed: self.outcomes.len(),
                });
            }

            // Wait for worker events on the channel's waker, with a deadline
            // at whichever comes first: the next arrival, the next policy
            // tick or the wall budget.  No polling interval — a completion
            // wakes this the instant the fabric delivers it.
            let mut deadline = self.clock.instant_at_wall(self.max_wall);
            if next_arrival < total {
                deadline = deadline.min(self.clock.instant_at(requests[next_arrival].arrival_time));
            }
            if let Some(at) = self.next_policy_deadline() {
                deadline = deadline.min(at);
            }
            let received =
                minirt::time::timeout_at(deadline + DEADLINE_SLACK, self.inbound.recv()).await;
            if let Ok(result) = received {
                match result {
                    Ok(msg) => {
                        self.handle_inbound(msg)?;
                    }
                    Err(_) => return Err(RuntimeError::Disconnected("network fabric")),
                }
            }
            while let Ok(msg) = self.inbound.try_recv() {
                self.handle_inbound(msg)?;
            }

            // The feedback half of the loop: observe the workers, consult
            // the policy, re-plan and hand over.
            self.maybe_replan();
        }
        Ok(std::mem::take(&mut self.outcomes))
    }

    /// The live session loop: requests, placement deltas and drain/finish
    /// commands arrive over `control`; completions stream out over
    /// `completions` as they happen.
    ///
    /// Requests are admitted when their `arrival_time` (virtual seconds)
    /// passes, exactly as in the batch path, so replaying a workload through
    /// submit-all-then-drain exercises the same admission mechanics as
    /// [`Coordinator::run`].  The wall-clock budget is enforced only while a
    /// drain or finish is pending — an idle session may live indefinitely,
    /// parked on its inbound channel's waker at zero cost.
    pub(crate) async fn run_live(
        &mut self,
        control: Receiver<SessionControl>,
        completions: Sender<RequestOutcome>,
    ) -> Result<Vec<RequestOutcome>, RuntimeError> {
        self.completions = Some(completions);
        let mut pending: VecDeque<Request> = VecDeque::new();
        let mut deferred: VecDeque<Request> = VecDeque::new();
        let mut drain_acks: Vec<Sender<()>> = Vec::new();
        let mut finishing = false;
        let mut submitted = 0usize;
        // Wall-clock mark of when the current drain began; the budget bounds
        // each drain, not the session's lifetime.
        let mut drain_started: Option<Duration> = None;

        loop {
            // 1. Drain the control channel.
            loop {
                match control.try_recv() {
                    Ok(SessionControl::Submit(request)) => {
                        submitted += 1;
                        pending.push_back(request);
                    }
                    Ok(SessionControl::ApplyDelta(delta)) => {
                        let now = self.clock.now();
                        let observed = self.control.fleet.observations().clone();
                        self.apply_replan(&delta, &observed, ReplanReason::Manual, now);
                    }
                    Ok(SessionControl::Retire(node, model)) => {
                        self.request_retirement(node, model);
                    }
                    Ok(SessionControl::Drain(ack)) => drain_acks.push(ack),
                    Ok(SessionControl::Finish) => finishing = true,
                    Err(TryRecvError::Empty) => break,
                    // The session handle was dropped: finish cleanly.
                    Err(TryRecvError::Disconnected) => {
                        finishing = true;
                        break;
                    }
                }
            }
            let draining = finishing || !drain_acks.is_empty();

            // 2. The wall budget guards each drain (measured from when the
            // drain began), never idle session time.
            if draining {
                let started = *drain_started.get_or_insert_with(|| self.clock.wall_elapsed());
                if self.clock.wall_elapsed().saturating_sub(started) > self.max_wall {
                    return Err(RuntimeError::WallClockBudgetExceeded {
                        budget: self.max_wall,
                        completed: self.outcomes.len(),
                        total: submitted,
                    });
                }
            } else {
                drain_started = None;
            }

            // 3. Admit every request whose arrival time has passed, in
            // submission order.
            let now = self.clock.now();
            for _ in 0..pending.len() {
                let request = pending.pop_front().expect("bounded by len");
                if request.arrival_time <= now {
                    if !self.try_dispatch(request)? {
                        deferred.push_back(request);
                    }
                } else {
                    pending.push_back(request);
                }
            }
            // 4. Retry requests every candidate masked out earlier.
            for _ in 0..deferred.len() {
                let request = deferred.pop_front().expect("bounded by len");
                if !self.try_dispatch(request)? {
                    deferred.push_back(request);
                }
            }
            if draining && !deferred.is_empty() && self.in_flight.is_empty() {
                return Err(RuntimeError::Stalled {
                    pending: deferred.len() + pending.len(),
                    completed: self.outcomes.len(),
                });
            }

            // 5. Acknowledge drains once everything in sight completed —
            // including any KV hand-over still in flight (its frozen workers
            // resume before the drain resolves).
            if draining
                && pending.is_empty()
                && deferred.is_empty()
                && self.in_flight.is_empty()
                && self.pending_migrations.is_empty()
            {
                for ack in drain_acks.drain(..) {
                    let _ = ack.send(());
                }
                if finishing {
                    break;
                }
            }

            // 6. Wait for worker events on the channel's waker.  A control
            // message wakes this wait immediately (the session pings the
            // inbound channel after queueing one); deadlines exist only to
            // pace deferred arrivals, policy ticks and the drain budget —
            // a fully idle session waits with *no* deadline at all.
            let next_arrival = pending
                .iter()
                .map(|r| r.arrival_time)
                .fold(f64::INFINITY, f64::min);
            let mut deadline: Option<Instant> = None;
            if next_arrival.is_finite() {
                deadline = Some(self.clock.instant_at(next_arrival));
            }
            if let Some(at) = self.next_policy_deadline() {
                deadline = Some(deadline.map_or(at, |d| d.min(at)));
            }
            if let Some(started) = drain_started {
                let at = self.clock.instant_at_wall(started + self.max_wall);
                deadline = Some(deadline.map_or(at, |d| d.min(at)));
            }
            let received = match deadline {
                Some(at) => minirt::time::timeout_at(at + DEADLINE_SLACK, self.inbound.recv())
                    .await
                    .ok(),
                None => Some(self.inbound.recv().await),
            };
            if let Some(result) = received {
                match result {
                    Ok(msg) => self.handle_inbound(msg)?,
                    Err(_) => return Err(RuntimeError::Disconnected("network fabric")),
                }
            }
            while let Ok(msg) = self.inbound.try_recv() {
                self.handle_inbound(msg)?;
            }

            // 7. Observe, consult the policy, re-plan, hand over.
            self.maybe_replan();
        }
        Ok(std::mem::take(&mut self.outcomes))
    }

    /// When the next observation-window check is due, if a policy is
    /// configured — the wake-up deadline for the waker-based waits.
    fn next_policy_deadline(&self) -> Option<Instant> {
        let policy = self.control.policy?;
        Some(
            self.clock
                .instant_at(self.control.last_check + policy.check_interval_secs),
        )
    }

    /// One observation-window check of the online re-planning loop.  Reads
    /// every live worker's shared statistics into a [`NodeObservations`]
    /// snapshot (speed factor = predicted / actual busy seconds over the
    /// window); when the policy fires, applies [`FleetTopology::replan`] and
    /// swaps the affected models' schedulers and KV-estimator capacities.
    /// In-flight pipelines are untouched — they drain over their old routes.
    fn maybe_replan(&mut self) {
        let Some(policy) = self.control.policy else {
            return;
        };
        let now = self.clock.now();
        let window = now - self.control.last_check;
        if window < policy.check_interval_secs {
            return;
        }
        self.control.last_check = now;

        let mut observed = NodeObservations::new();
        for ((node, model), stats) in self.registry.live_stats_snapshot() {
            self.control.windows.measure(
                &mut observed,
                node,
                model,
                EngineCounters {
                    nominal_busy_secs: stats.nominal_busy_secs,
                    busy_secs: stats.busy_secs,
                    tokens: stats.prompt_tokens + stats.decode_tokens,
                },
                window,
                self.control.fleet.observations(),
            );
        }

        if let Some((node, model, speed)) = policy.should_replan(
            &observed,
            self.control.fleet.observations(),
            now,
            self.control.last_replan,
        ) {
            let applied = self.apply_replan(
                &PlacementDelta::new(),
                &observed,
                ReplanReason::ThroughputGap { node, model, speed },
                now,
            );
            if applied {
                self.control.last_replan = Some(now);
            }
        }
    }

    /// Applies one re-plan to the standing fleet: re-derives the plan, swaps
    /// the affected models' schedulers and KV budgets for *new* requests
    /// (drain-then-switch), spawns workers for (node, model) tenancies the
    /// delta added, and queues drain-aware retirement for ones it dropped.
    /// Returns whether the re-plan was applied; an infeasible re-plan leaves
    /// the current plan serving.
    fn apply_replan(
        &mut self,
        delta: &PlacementDelta,
        observed: &NodeObservations,
        reason: ReplanReason,
        now: f64,
    ) -> bool {
        let outcome = match self.control.fleet.replan(delta, observed) {
            Ok(outcome) => outcome,
            Err(_) => return false,
        };
        let mut new_schedulers: Vec<(ModelId, Box<dyn Scheduler>)> = Vec::new();
        for &model in &outcome.affected {
            let topology = self
                .control
                .fleet
                .model(model)
                .expect("affected model exists");
            // Hand-over step 1: build the new IWRR weights for new requests.
            // A model whose re-planned flow is zero keeps its old scheduler
            // (serving degraded beats serving nothing).  Installation is
            // deferred past any KV transfer the delta owes this model
            // (freeze → transfer → re-route → resume).
            if let Ok(scheduler) = IwrrScheduler::from_topology(topology) {
                new_schedulers.push((model, Box::new(scheduler)));
            }
            // Pipelines of the old plan are stale prefix homes: forget them.
            // In-flight references stay balanced through their own release
            // path; only future routing is affected.
            self.prefix_routers[model.index()].clear();
            // Hand-over step 2: re-derived KV budgets, and dynamic
            // membership — a tenancy the delta added gets a live worker on
            // the spot, routable through the fabric immediately (a migration
            // destination must exist before the pages can land).  New
            // workers execute at the analytic contention split; measured
            // speed factors re-price planning, not execution.
            let planned: Vec<(NodeId, String, usize, f64)> = topology
                .nodes()
                .map(|n| (n.node, n.name.clone(), n.layers.len(), n.kv_capacity_tokens))
                .collect();
            let contention = self.control.fleet.contention_profile(model);
            let mut planned_nodes: HashSet<NodeId> = HashSet::new();
            for (node, name, layers, kv_capacity_tokens) in planned {
                planned_nodes.insert(node);
                self.estimators[model.index()].set_capacity(node, kv_capacity_tokens);
                self.pending_retire.remove(&(node, model));
                self.spawner
                    .spawn(&contention, node, model, &name, layers, kv_capacity_tokens);
            }
            // Hand-over step 3: pairs the plan no longer includes keep
            // serving their in-flight pipelines and are detached once those
            // drain; new requests already steer around them.
            for key in self.registry.live_keys_for_model(model) {
                if !planned_nodes.contains(&key.0) {
                    self.pending_retire.insert(key);
                }
            }
        }
        // Hand-over step 4: initiate each migration's KV transfer — freeze
        // the *migrated layer range* on both ends (work on other layers
        // keeps executing; overlapping hand-overs stack their ranges on the
        // worker), then ask the source to extract its pool through the
        // fabric as a pipelined chunk stream (the pages queue behind — and
        // interleave with — activation traffic on the `from → to` link).
        // `KvInstalled` re-routes and resumes.
        let mut migrating: HashSet<ModelId> = HashSet::new();
        for &migration in &outcome.migrations {
            let KvMigration {
                model,
                from,
                to,
                layers,
            } = migration;
            let Some(source) = self.registry.route((from, model)) else {
                continue;
            };
            self.freeze_endpoint((from, model), layers);
            self.freeze_endpoint((to, model), layers);
            let kv_bytes_per_token_per_layer = self.control.fleet.profiles()[model.index()]
                .model()
                .kv_bytes_per_token_per_layer();
            let _ = source.send(RuntimeMsg::KvExtract {
                to,
                layers,
                kv_bytes_per_token_per_layer,
            });
            self.pending_migrations.push((migration, now));
            migrating.insert(model);
        }
        // Re-route: models with a transfer in flight get their scheduler on
        // `KvInstalled`; everyone else switches immediately.
        for (model, scheduler) in new_schedulers {
            if migrating.contains(&model) {
                self.deferred_swaps.insert(model.index(), scheduler);
            } else {
                self.schedulers[model.index()] = scheduler;
            }
        }
        self.sweep_retirements();
        self.control.replans.push(ReplanRecord {
            at: now,
            reason,
            affected: outcome.affected,
            planned_flow: self.control.fleet.total_flow_value(),
        });
        true
    }

    /// Queues the retirement of one worker, refusing pairs the active plan
    /// still schedules onto (retiring those would strand new pipelines).
    fn request_retirement(&mut self, node: NodeId, model: ModelId) {
        let still_planned = self
            .control
            .fleet
            .model(model)
            .is_some_and(|t| t.node(node).is_some());
        if !still_planned && self.registry.is_live((node, model)) {
            self.pending_retire.insert((node, model));
            self.sweep_retirements();
        }
    }

    /// Detaches every pending-retire worker whose in-flight pipelines have
    /// all drained (drain-then-switch: the worker keeps executing the routes
    /// it was already part of, and disappears only when they finish).
    fn sweep_retirements(&mut self) {
        if self.pending_retire.is_empty() {
            return;
        }
        let busy: HashSet<WorkerKey> = self
            .in_flight
            .values()
            .flat_map(|flight| {
                let model = flight.pipeline.model;
                flight
                    .pipeline
                    .stages
                    .iter()
                    .map(move |stage| (stage.node, model))
            })
            .collect();
        let ready: Vec<WorkerKey> = self
            .pending_retire
            .iter()
            .copied()
            .filter(|key| !busy.contains(key))
            .collect();
        for key in ready {
            self.pending_retire.remove(&key);
            self.registry.detach(key);
        }
    }

    /// Tries to admit one request.  Returns `Ok(false)` if every candidate is
    /// currently masked out and the request should be retried later.
    fn try_dispatch(&mut self, request: Request) -> Result<bool, RuntimeError> {
        let model = request.model;
        let num_models = self.schedulers.len();
        if model.index() >= num_models {
            return Err(RuntimeError::Scheduling(HelixError::UnknownModel {
                model,
                num_models,
            }));
        }
        let view = CoordinatorView {
            model,
            estimator: &self.estimators[model.index()],
            registry: &self.registry,
        };
        // Cache-aware routing: a prefix-tagged request goes to the pipeline
        // already holding its prefix when that pipeline has KV headroom; a
        // saturated home degrades to plain IWRR with sharing disabled.
        let mut prefix_work: Option<PrefixWork> = None;
        let mut routed: Option<RequestPipeline> = None;
        let mut bypassed = false;
        if let Some((pid, ptokens)) = request.shared_prefix() {
            match self.prefix_routers[model.index()].route(pid, ptokens, &view) {
                PrefixRoute::Hit {
                    pipeline,
                    shared_tokens,
                } => {
                    prefix_work = Some(PrefixWork {
                        id: pid,
                        tokens: shared_tokens,
                        hit: true,
                    });
                    routed = Some(pipeline);
                }
                PrefixRoute::Miss => {
                    prefix_work = Some(PrefixWork {
                        id: pid,
                        tokens: ptokens,
                        hit: false,
                    });
                }
                PrefixRoute::Bypass => bypassed = true,
            }
        }
        let scheduled = match routed {
            Some(pipeline) => Ok(pipeline),
            None => self.schedulers[model.index()].schedule(&view),
        };
        let pipeline = match scheduled {
            Ok(mut pipeline) => {
                pipeline.model = model;
                Arc::new(pipeline)
            }
            // A hit never lands here (route() pre-checks headroom and its
            // reference is only taken on Hit), so deferral leaks nothing.
            Err(HelixError::NoCandidateAvailable { .. }) => return Ok(false),
            Err(e) => return Err(e.into()),
        };
        match prefix_work {
            // A miss materialises the prefix: the scheduled pipeline becomes
            // its home for later sharers.
            Some(p) if !p.hit => {
                self.prefix_routers[model.index()].adopt(p.id, p.tokens, &pipeline)
            }
            None if bypassed => self.prefix_routers[model.index()].record_bypass(),
            _ => {}
        }
        // The per-request estimate covers only the unshared suffix; the
        // shared range is attached (refcounted, counted once per node) so the
        // estimator mirrors the workers' refcounted pool entries.
        let shared_tokens = prefix_work
            .map(|p| p.tokens.min(request.prompt_tokens))
            .unwrap_or(0);
        for stage in &pipeline.stages {
            self.estimators[model.index()].on_scheduled(
                stage.node,
                request.id,
                request.prompt_tokens - shared_tokens,
            );
            if let Some(p) = prefix_work {
                self.estimators[model.index()].attach_shared(stage.node, p.id, p.tokens);
            }
        }
        // A cache hit skips prefilling the shared range (that is the compute
        // saving); at least one token still flows through the pipeline to
        // produce the first output token.
        let prefill_tokens = match prefix_work {
            Some(p) if p.hit => request.prompt_tokens.saturating_sub(p.tokens).max(1),
            _ => request.prompt_tokens.max(1),
        };
        let first = pipeline.stages[0].node;
        self.send(Envelope {
            from: None,
            to: Some(first),
            model,
            bytes: TOKEN_WIRE_BYTES * prefill_tokens as f64,
            msg: RuntimeMsg::Work(StageWork {
                request: request.id,
                phase: Phase::Prompt,
                tokens: prefill_tokens,
                stage_index: 0,
                pipeline: Arc::clone(&pipeline),
                prefix: prefix_work,
            }),
        })?;
        self.in_flight.insert(
            request.id,
            InFlight {
                request,
                pipeline,
                first_token_at: None,
                decode_remaining: 0,
                prefix: prefix_work,
            },
        );
        Ok(true)
    }

    fn handle_inbound(&mut self, msg: CoordinatorMsg) -> Result<(), RuntimeError> {
        match msg {
            CoordinatorMsg::Runtime(msg) => self.handle(msg),
            // The next loop iteration drains the control channel.
            CoordinatorMsg::Wake => Ok(()),
        }
    }

    fn handle(&mut self, msg: RuntimeMsg) -> Result<(), RuntimeError> {
        let RuntimeMsg::IterationDone {
            request,
            phase,
            emitted_at,
        } = msg
        else {
            if let RuntimeMsg::KvInstalled {
                model,
                from,
                to,
                layers,
                tokens,
                pages,
                bytes,
            } = msg
            {
                self.finish_migration(model, from, to, layers, tokens, pages, bytes);
            }
            // Work/Release/Shutdown are worker-bound; nothing else to do.
            return Ok(());
        };
        let Some(flight) = self.in_flight.get_mut(&request) else {
            return Ok(());
        };
        let finished = match phase {
            Phase::Prompt => {
                flight.first_token_at = Some(emitted_at);
                flight.decode_remaining = flight.request.output_tokens.saturating_sub(1);
                flight.decode_remaining == 0
            }
            Phase::Decode => {
                flight.decode_remaining = flight.decode_remaining.saturating_sub(1);
                flight.decode_remaining == 0
            }
        };
        if finished {
            self.finish(request, emitted_at)
        } else {
            let pipeline = Arc::clone(&flight.pipeline);
            let first = pipeline.stages[0].node;
            let model = pipeline.model;
            self.send(Envelope {
                from: None,
                to: Some(first),
                model,
                bytes: TOKEN_WIRE_BYTES,
                msg: RuntimeMsg::Work(StageWork {
                    request,
                    phase: Phase::Decode,
                    tokens: 1,
                    stage_index: 0,
                    pipeline,
                    prefix: None,
                }),
            })
        }
    }

    /// Freezes one hand-over's layer range on one endpoint.  The worker
    /// stacks ranges, so overlapping hand-overs sharing an endpoint each
    /// freeze (and later thaw) their own range independently — and work on
    /// layers outside every frozen range keeps executing throughout.
    fn freeze_endpoint(&mut self, key: WorkerKey, layers: LayerRange) {
        if let Some(tx) = self.registry.route(key) {
            let _ = tx.send(RuntimeMsg::Freeze(layers));
        }
    }

    /// Thaws one hand-over's layer range on one endpoint (its transfer
    /// landed).
    fn thaw_endpoint(&mut self, key: WorkerKey, layers: LayerRange) {
        if let Some(tx) = self.registry.route(key) {
            let _ = tx.send(RuntimeMsg::Resume(layers));
        }
    }

    /// Completes one KV hand-over: records the transfer, installs the
    /// deferred scheduler once the model's last pending transfer landed
    /// (re-route), and thaws the migrated layer range on both ends (an
    /// endpoint with another hand-over still in flight keeps that other
    /// range frozen).
    #[allow(clippy::too_many_arguments)]
    fn finish_migration(
        &mut self,
        model: ModelId,
        from: NodeId,
        to: NodeId,
        layers: LayerRange,
        tokens: u64,
        pages: u64,
        bytes: f64,
    ) {
        let now = self.clock.now();
        let migration = KvMigration {
            model,
            from,
            to,
            layers,
        };
        // Resolve the exact pending entry this `KvInstalled` acknowledges
        // (a migration is unique by (model, from, to, layers) at any time:
        // resolution would reject re-moving layers the source gave up).
        let Some(position) = self
            .pending_migrations
            .iter()
            .position(|&(pending, _)| pending == migration)
        else {
            return;
        };
        let (_, started) = self.pending_migrations.remove(position);
        self.kv_transfers.push(KvTransferRecord {
            at: now,
            migration,
            tokens: tokens as f64,
            pages,
            bytes,
            transfer_secs: (now - started).max(0.0),
        });
        if !self
            .pending_migrations
            .iter()
            .any(|&(pending, _)| pending.model == model)
        {
            if let Some(scheduler) = self.deferred_swaps.remove(&model.index()) {
                self.schedulers[model.index()] = scheduler;
            }
        }
        self.thaw_endpoint((from, model), layers);
        self.thaw_endpoint((to, model), layers);
    }

    /// Completes a request: records its outcome, updates the estimator and
    /// frees its KV pages on every node of its pipeline.
    fn finish(&mut self, request: RequestId, completed_at: f64) -> Result<(), RuntimeError> {
        let Some(flight) = self.in_flight.remove(&request) else {
            return Ok(());
        };
        let model = flight.pipeline.model;
        for stage in &flight.pipeline.stages {
            self.estimators[model.index()].on_finished(
                stage.node,
                request,
                flight.request.output_tokens,
            );
            if let Some(p) = flight.prefix {
                self.estimators[model.index()].release_shared(stage.node, p.id);
            }
        }
        if let Some(p) = flight.prefix {
            self.prefix_routers[model.index()].release(p.id);
        }
        for stage in &flight.pipeline.stages {
            self.send(Envelope {
                from: None,
                to: Some(stage.node),
                model,
                bytes: TOKEN_WIRE_BYTES,
                msg: RuntimeMsg::Release(request),
            })?;
        }
        let outcome = RequestOutcome {
            id: request,
            model,
            prompt_tokens: flight.request.prompt_tokens,
            output_tokens: flight.request.output_tokens,
            arrival: flight.request.arrival_time,
            first_token_at: flight.first_token_at.unwrap_or(completed_at),
            completed_at,
            pipeline_depth: flight.pipeline.stages.len(),
        };
        if let Some(tx) = &self.completions {
            let _ = tx.send(outcome);
        }
        self.outcomes.push(outcome);
        // A completed pipeline may free a pending-retire worker.
        self.sweep_retirements();
        Ok(())
    }

    fn send(&self, envelope: Envelope) -> Result<(), RuntimeError> {
        self.fabric
            .send(envelope)
            .map_err(|_| RuntimeError::Disconnected("network fabric"))
    }
}
