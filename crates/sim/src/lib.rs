//! Discrete-event simulator for distributed LLM serving over heterogeneous
//! GPUs and networks.
//!
//! The paper's evaluation relies on a 14k-LoC Python simulator validated to
//! within 5% of the real prototype (§6.1); the geo-distributed and
//! high-heterogeneity experiments (Figs. 7–8) and parts of the deep dives run
//! entirely in simulation.  This crate is the Rust counterpart: it replays a
//! workload against a cluster profile, a model placement and a scheduler, and
//! reports the same metrics the paper reports — decode throughput, prompt
//! latency and decode latency.
//!
//! The simulated mechanics mirror the prototype described in §5 and §6.1:
//!
//! * the coordinator assigns each arriving request a per-request pipeline by
//!   calling the configured [`Scheduler`](helix_core::Scheduler);
//! * every compute node runs best-effort dynamic batching: a batch starts as
//!   soon as the node is idle and includes everything that arrived while the
//!   previous batch was executing;
//! * prompt and decode phases have different per-token costs (prompt is
//!   compute-bound, decode memory-bound), with all costs coming from the
//!   shared [`helix_core::exec_model`] — the same model the prototype
//!   runtime executes against, so the two can never drift;
//! * network links are FIFO queues with finite bandwidth and latency, so slow
//!   links can and do congest (§6.7's case study);
//! * each node's KV cache is finite; exceeding it forces (simulated)
//!   offloading which slows the node down drastically (§5.2);
//! * decode iterations for a request reuse the pipeline it was assigned on
//!   arrival, exactly as in the paper's runtime.
//!
//! # Example
//!
//! ```rust
//! use helix_cluster::{ClusterProfile, ClusterSpec, ModelConfig};
//! use helix_core::{heuristics, IwrrScheduler, Topology};
//! use helix_sim::{ClusterSimulator, SimulationConfig};
//! use helix_workload::{ArrivalPattern, Workload};
//!
//! let profile = ClusterProfile::analytic(
//!     ClusterSpec::solver_quality_10(),
//!     ModelConfig::llama_30b(),
//! );
//! let placement = heuristics::petals_placement(&profile).unwrap();
//! // One planning artifact feeds the scheduler and the simulator alike.
//! let topology = Topology::plan(&profile, &placement, true).unwrap();
//! let scheduler = IwrrScheduler::from_topology(&topology).unwrap();
//! let workload = Workload::azure_like(50, 1).with_arrivals(ArrivalPattern::Offline, 2);
//! let mut sim = ClusterSimulator::new(&topology, Box::new(scheduler));
//! let metrics = sim.run(&workload, SimulationConfig::offline(60.0));
//! assert!(metrics.decode_throughput() > 0.0);
//! ```

mod engine;
mod event;
mod metrics;
mod network;
mod session;
mod simulator;

pub use engine::NodeEngine;
pub use event::{Event, EventQueue, PerturbationEvent, SimTime};
pub use metrics::{IntervalMetrics, LatencyStats, LinkStats, Metrics};
pub use network::LinkQueue;
pub use session::SimSession;
pub use simulator::{
    ClusterSimulator, CompletionRecord, FleetMetrics, FleetRunReport, SimulationConfig,
};
