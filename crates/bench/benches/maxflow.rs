//! Criterion micro-benchmarks for the max-flow algorithms on cluster-shaped
//! graphs (the inner loop of placement evaluation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use helix_cluster::{ClusterProfile, ClusterSpec, ModelConfig};
use helix_core::{heuristics, FlowGraphBuilder};
use helix_maxflow::{FlowNetwork, MaxFlowAlgorithm};
use std::hint::black_box;

/// A layered random-ish graph similar in shape to Helix cluster graphs.
fn layered_graph(
    width: usize,
    depth: usize,
) -> (FlowNetwork, helix_maxflow::NodeId, helix_maxflow::NodeId) {
    let mut net = FlowNetwork::new();
    let s = net.add_node("s");
    let t = net.add_node("t");
    let mut prev = vec![s];
    for d in 0..depth {
        let layer: Vec<_> = (0..width)
            .map(|i| net.add_node(format!("n{d}_{i}")))
            .collect();
        for (i, &a) in prev.iter().enumerate() {
            for (j, &b) in layer.iter().enumerate() {
                let cap = ((i * 7 + j * 13 + d * 3) % 23 + 1) as f64;
                net.add_edge(a, b, cap);
            }
        }
        prev = layer;
    }
    for (i, &a) in prev.iter().enumerate() {
        net.add_edge(a, t, (i % 11 + 5) as f64);
    }
    (net, s, t)
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxflow_layered");
    for &(width, depth) in &[(6usize, 4usize), (12, 6), (20, 8)] {
        let (net, s, t) = layered_graph(width, depth);
        for alg in [
            MaxFlowAlgorithm::PushRelabel,
            MaxFlowAlgorithm::Dinic,
            MaxFlowAlgorithm::EdmondsKarp,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{alg:?}"), format!("{width}x{depth}")),
                &(&net, s, t),
                |b, (net, s, t)| b.iter(|| black_box(net.max_flow_with(*s, *t, alg).value)),
            );
        }
    }
    group.finish();
}

fn bench_placement_evaluation(c: &mut Criterion) {
    let profile =
        ClusterProfile::analytic(ClusterSpec::single_cluster_24(), ModelConfig::llama2_70b());
    let placement = heuristics::petals_placement(&profile).unwrap();
    let builder = FlowGraphBuilder::new(&profile);
    c.bench_function("placement_flow_eval_24_nodes", |b| {
        b.iter(|| {
            let graph = builder.build(black_box(&placement)).unwrap();
            black_box(graph.max_flow().value)
        })
    });
}

criterion_group!(benches, bench_algorithms, bench_placement_evaluation);
criterion_main!(benches);
