//! Flow-guided simulated-annealing placement refinement.
//!
//! For large clusters the exact MILP of §4.4 becomes expensive; the paper
//! handles this with heuristic warm starts, pruning and generous time
//! budgets on Gurobi.  This module provides the practical large-cluster path
//! of our reproduction: a simulated-annealing search whose objective is the
//! *exact same quantity* the MILP maximises — the max flow of the placement's
//! graph abstraction — evaluated directly with the preflow-push solver.
//! Starting from the heuristic placements and locally perturbing layer
//! ranges, it reliably reaches placements close to the throughput upper
//! bound of §4.5.

use crate::error::HelixError;
use crate::flow_graph::FlowGraphBuilder;
use crate::placement::incremental::IncrementalFlowEvaluator;
use crate::placement::{heuristics, LayerRange, ModelPlacement};
use helix_cluster::{ClusterProfile, NodeId};
use helix_maxflow::MaxFlowAlgorithm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for the annealing search.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealingOptions {
    /// Number of proposed moves.
    pub iterations: usize,
    /// Initial acceptance temperature, as a fraction of the throughput upper
    /// bound (higher accepts more regressions early on).
    pub initial_temperature: f64,
    /// Multiplicative cooling factor applied every iteration.
    pub cooling: f64,
    /// RNG seed (searches are deterministic given the seed).
    pub seed: u64,
    /// Whether connection validity allows partial inference.
    pub partial_inference: bool,
    /// Optional cluster pruning degree used when evaluating placements.
    pub prune_degree: Option<usize>,
    /// Evaluate moves incrementally on a standing warm-started flow network
    /// (the default) instead of rebuilding and re-solving the graph from
    /// scratch per iteration.  Both paths evaluate the identical objective;
    /// see [`IncrementalFlowEvaluator`] for why the values agree.
    pub warm_start: bool,
}

impl Default for AnnealingOptions {
    fn default() -> Self {
        AnnealingOptions {
            iterations: 4000,
            initial_temperature: 0.05,
            cooling: 0.999,
            seed: 0x48454C49,
            partial_inference: true,
            prune_degree: None,
            warm_start: true,
        }
    }
}

/// Simulated-annealing placement planner guided by max-flow evaluation.
///
/// # Example
///
/// ```rust
/// use helix_cluster::{ClusterProfile, ClusterSpec, ModelConfig};
/// use helix_core::{AnnealingOptions, FlowAnnealingPlanner};
///
/// let profile = ClusterProfile::analytic(
///     ClusterSpec::solver_quality_10(),
///     ModelConfig::llama_30b(),
/// );
/// let planner = FlowAnnealingPlanner::new(&profile)
///     .with_options(AnnealingOptions { iterations: 500, ..Default::default() });
/// let (placement, throughput) = planner.solve().unwrap();
/// assert!(throughput > 0.0);
/// # let _ = placement;
/// ```
#[derive(Debug, Clone)]
pub struct FlowAnnealingPlanner<'a> {
    profile: &'a ClusterProfile,
    options: AnnealingOptions,
}

impl<'a> FlowAnnealingPlanner<'a> {
    /// Creates a planner with default options.
    pub fn new(profile: &'a ClusterProfile) -> Self {
        FlowAnnealingPlanner {
            profile,
            options: AnnealingOptions::default(),
        }
    }

    /// Replaces the options.
    pub fn with_options(mut self, options: AnnealingOptions) -> Self {
        self.options = options;
        self
    }

    /// The current options.
    pub fn options(&self) -> &AnnealingOptions {
        &self.options
    }

    /// Evaluates the serving throughput (max flow) of a placement under this
    /// planner's connection settings; invalid placements score 0.
    pub fn evaluate(&self, placement: &ModelPlacement) -> f64 {
        let mut builder =
            FlowGraphBuilder::new(self.profile).partial_inference(self.options.partial_inference);
        if let Some(d) = self.options.prune_degree {
            builder = builder.prune_to_degree(d);
        }
        builder
            .build(placement)
            .map(|g| g.max_flow().value)
            .unwrap_or(0.0)
    }

    /// Runs the search starting from the built-in heuristics.
    ///
    /// # Errors
    ///
    /// Returns [`HelixError::NoPlacementFound`] if no heuristic produces a
    /// feasible starting point (e.g. the cluster cannot hold the model).
    pub fn solve(&self) -> Result<(ModelPlacement, f64), HelixError> {
        let starts: Vec<ModelPlacement> = [
            heuristics::swarm_placement(self.profile),
            heuristics::petals_placement(self.profile),
            heuristics::separate_pipelines_placement(self.profile),
            heuristics::separate_pipelines_plus_placement(self.profile),
        ]
        .into_iter()
        .flatten()
        .collect();
        self.solve_from(&starts)
    }

    /// Runs the search starting from the given placements.
    ///
    /// # Errors
    ///
    /// Returns [`HelixError::NoPlacementFound`] if `starts` is empty or no
    /// start is feasible.
    pub fn solve_from(
        &self,
        starts: &[ModelPlacement],
    ) -> Result<(ModelPlacement, f64), HelixError> {
        let mut best: Option<(ModelPlacement, f64)> = None;
        for s in starts {
            let v = self.evaluate(s);
            if v > 0.0 && best.as_ref().is_none_or(|(_, bv)| v > *bv) {
                best = Some((s.clone(), v));
            }
        }
        let (current, current_value) = best.ok_or(HelixError::NoPlacementFound)?;
        if self.options.warm_start {
            self.anneal_warm(current, current_value)
        } else {
            self.anneal_cold(current, current_value)
        }
    }

    /// The cold annealing loop: every candidate is evaluated by rebuilding
    /// the flow graph and solving max flow from scratch.  Kept as the
    /// reference implementation (and for the cold-vs-warm benchmark).
    fn anneal_cold(
        &self,
        mut current: ModelPlacement,
        mut current_value: f64,
    ) -> Result<(ModelPlacement, f64), HelixError> {
        let (mut best_placement, mut best_value) = (current.clone(), current_value);
        let upper = self.profile.throughput_upper_bound().max(1e-9);
        let mut temperature = self.options.initial_temperature * upper;
        let mut rng = StdRng::seed_from_u64(self.options.seed);

        for _ in 0..self.options.iterations {
            let Some((node, range)) = self.propose(&current, &mut rng) else {
                temperature *= self.options.cooling;
                continue;
            };
            let mut candidate = current.clone();
            candidate.assign(node, range);
            let value = self.evaluate(&candidate);
            if self.accept(value, current_value, temperature, &mut rng) {
                current = candidate;
                current_value = value;
                if value > best_value {
                    best_value = value;
                    best_placement = current.clone();
                    // Early exit once we are essentially at the upper bound.
                    if best_value >= 0.995 * upper {
                        break;
                    }
                }
            }
            temperature *= self.options.cooling;
        }
        Ok((best_placement, best_value))
    }

    /// The warm annealing loop: one standing flow network absorbs each
    /// single-node move via capacity updates and a warm re-solve; rejected
    /// moves are rolled back the same way.  The returned value is the cold
    /// re-evaluation of the best placement, so reported numbers always come
    /// from the canonical path.
    fn anneal_warm(
        &self,
        start: ModelPlacement,
        _start_value: f64,
    ) -> Result<(ModelPlacement, f64), HelixError> {
        // Dinic augments from the standing flow without re-saturating the
        // source (push-relabel would re-push every source edge's residual and
        // drain it back each solve, wasting the warm start).
        let mut evaluator = IncrementalFlowEvaluator::new(
            self.profile,
            &start,
            self.options.partial_inference,
            self.options.prune_degree,
            MaxFlowAlgorithm::Dinic,
        )?;
        let mut current_value = evaluator.value();
        // The evaluator's own placement is the single authoritative copy of
        // the current state; only the best-so-far needs a snapshot.
        let (mut best_placement, mut best_value) = (start, current_value);
        let upper = self.profile.throughput_upper_bound().max(1e-9);
        let mut temperature = self.options.initial_temperature * upper;
        let mut rng = StdRng::seed_from_u64(self.options.seed);

        for _ in 0..self.options.iterations {
            let Some((node, range)) = self.propose(evaluator.placement(), &mut rng) else {
                temperature *= self.options.cooling;
                continue;
            };
            let previous = evaluator.placement().range(node);
            let value = evaluator.assign(node, range);
            if self.accept(value, current_value, temperature, &mut rng) {
                current_value = value;
                if value > best_value {
                    best_value = value;
                    best_placement = evaluator.placement().clone();
                    // Early exit once we are essentially at the upper bound.
                    if best_value >= 0.995 * upper {
                        break;
                    }
                }
            } else {
                evaluator.restore(node, previous);
            }
            temperature *= self.options.cooling;
        }
        // Report the canonical (cold) evaluation of the winner.
        let value = self.evaluate(&best_placement);
        Ok((best_placement, value))
    }

    fn accept(&self, value: f64, current_value: f64, temperature: f64, rng: &mut StdRng) -> bool {
        let metropolis = value >= current_value || {
            let delta = current_value - value;
            temperature > 1e-12 && rng.gen::<f64>() < (-delta / temperature).exp()
        };
        metropolis && value > 0.0
    }

    /// Proposes a random single-node move: `(node, new range)`, or `None`
    /// when the drawn node cannot hold layers or the move template does not
    /// apply.
    fn propose(
        &self,
        placement: &ModelPlacement,
        rng: &mut StdRng,
    ) -> Option<(NodeId, LayerRange)> {
        let profile = self.profile;
        let num_layers = profile.model().num_layers;
        let nodes: Vec<NodeId> = profile.cluster().node_ids().collect();
        let node = nodes[rng.gen_range(0..nodes.len())];
        let max_layers = profile.node_profile(node).max_layers.min(num_layers);
        if max_layers == 0 {
            return None;
        }
        let current = placement.range(node);
        match rng.gen_range(0..4u8) {
            // Resize: change the number of layers held, keeping the start.
            0 => {
                let range = current.unwrap_or(LayerRange::new(0, 1));
                let delta: i64 = rng.gen_range(-3..=3);
                let new_len = (range.len() as i64 + delta).clamp(1, max_layers as i64) as usize;
                let start = range.start.min(num_layers - new_len);
                Some((node, LayerRange::new(start, start + new_len)))
            }
            // Shift: move the range earlier/later.
            1 => {
                let range = current.unwrap_or(LayerRange::new(0, max_layers.min(num_layers)));
                let len = range.len();
                let shift: i64 = rng.gen_range(-4..=4);
                let start =
                    (range.start as i64 + shift).clamp(0, (num_layers - len) as i64) as usize;
                Some((node, LayerRange::new(start, start + len)))
            }
            // Re-anchor: continue right after another node's range.
            2 => {
                let other = nodes[rng.gen_range(0..nodes.len())];
                let other_range = placement.range(other)?;
                if other_range.end < num_layers {
                    let len = max_layers.min(num_layers - other_range.end);
                    Some((
                        node,
                        LayerRange::new(other_range.end, other_range.end + len),
                    ))
                } else {
                    // Other node ends the model: mirror its range instead.
                    let len = max_layers.min(other_range.len());
                    Some((
                        node,
                        LayerRange::new(other_range.end - len, other_range.end),
                    ))
                }
            }
            // Replicate: copy another node's range (shrunk to fit VRAM).
            _ => {
                let other = nodes[rng.gen_range(0..nodes.len())];
                let other_range = placement.range(other)?;
                let len = max_layers.min(other_range.len());
                Some((
                    node,
                    LayerRange::new(other_range.start, other_range.start + len),
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_cluster::{ClusterSpec, ModelConfig};

    fn quick_options() -> AnnealingOptions {
        AnnealingOptions {
            iterations: 300,
            ..Default::default()
        }
    }

    #[test]
    fn annealing_improves_or_matches_heuristics() {
        let profile =
            ClusterProfile::analytic(ClusterSpec::solver_quality_10(), ModelConfig::llama_30b());
        let planner = FlowAnnealingPlanner::new(&profile).with_options(quick_options());
        let swarm = heuristics::swarm_placement(&profile).unwrap();
        let swarm_value = planner.evaluate(&swarm);
        let (best, value) = planner.solve().unwrap();
        best.validate(&profile).unwrap();
        assert!(value >= swarm_value - 1e-9);
        assert!(value <= profile.throughput_upper_bound() * 1.0001);
    }

    #[test]
    fn annealing_is_deterministic_for_a_seed() {
        let profile =
            ClusterProfile::analytic(ClusterSpec::solver_quality_10(), ModelConfig::llama_30b());
        let planner = FlowAnnealingPlanner::new(&profile).with_options(quick_options());
        let (_, v1) = planner.solve().unwrap();
        let (_, v2) = planner.solve().unwrap();
        assert_eq!(v1, v2);
    }

    #[test]
    fn evaluate_returns_zero_for_invalid_placement() {
        let profile =
            ClusterProfile::analytic(ClusterSpec::solver_quality_10(), ModelConfig::llama_30b());
        let planner = FlowAnnealingPlanner::new(&profile);
        let empty = ModelPlacement::empty(profile.cluster().num_nodes());
        assert_eq!(planner.evaluate(&empty), 0.0);
    }

    #[test]
    fn solve_from_empty_starts_errors() {
        let profile =
            ClusterProfile::analytic(ClusterSpec::solver_quality_10(), ModelConfig::llama_30b());
        let planner = FlowAnnealingPlanner::new(&profile);
        assert!(matches!(
            planner.solve_from(&[]),
            Err(HelixError::NoPlacementFound)
        ));
    }

    #[test]
    fn warm_start_is_the_default_and_matches_cold_on_the_solver_quality_cluster() {
        let profile =
            ClusterProfile::analytic(ClusterSpec::solver_quality_10(), ModelConfig::llama_30b());
        assert!(
            AnnealingOptions::default().warm_start,
            "warm start must be the default"
        );
        let warm = FlowAnnealingPlanner::new(&profile).with_options(AnnealingOptions {
            iterations: 400,
            ..Default::default()
        });
        let cold = FlowAnnealingPlanner::new(&profile).with_options(AnnealingOptions {
            iterations: 400,
            warm_start: false,
            ..Default::default()
        });
        let (warm_placement, warm_value) = warm.solve().unwrap();
        let (cold_placement, cold_value) = cold.solve().unwrap();
        warm_placement.validate(&profile).unwrap();
        cold_placement.validate(&profile).unwrap();
        // The warm path reports its placement's value from the canonical
        // cold evaluation: the two evaluation surfaces agree within FLOW_EPS
        // on the same placement (the warm evaluator solves the identical
        // objective on the identical candidate edge set).  The two *searches*
        // may legitimately land on different local optima — near-tie accept
        // decisions amplify — so search outcomes are compared for quality,
        // not equality.
        let eps = helix_maxflow::FLOW_EPS * (1.0 + warm_value.abs());
        assert!(
            (warm.evaluate(&warm_placement) - warm_value).abs() <= eps,
            "reported warm value diverges from the cold evaluation of its placement"
        );
        assert!((cold.evaluate(&cold_placement) - cold_value).abs() <= eps);
        // Neither search loses to the best heuristic start, and the warm
        // default is at least as good as the cold search here.
        let heuristic_best = [
            heuristics::swarm_placement(&profile).unwrap(),
            heuristics::petals_placement(&profile).unwrap(),
        ]
        .iter()
        .map(|p| warm.evaluate(p))
        .fold(0.0_f64, f64::max);
        assert!(
            warm_value >= heuristic_best - 1e-9,
            "warm {warm_value} vs heuristics {heuristic_best}"
        );
        assert!(cold_value >= heuristic_best - 1e-9);
        assert!(
            warm_value >= cold_value * 0.95,
            "warm {warm_value} vs cold search {cold_value}"
        );
    }

    #[test]
    fn warm_start_evaluations_match_cold_per_placement() {
        // Follow the warm path's accepted placements and re-evaluate each
        // with the cold builder: the two evaluation surfaces must agree on
        // every placement, not just the final one.
        let profile =
            ClusterProfile::analytic(ClusterSpec::solver_quality_10(), ModelConfig::llama_30b());
        let planner = FlowAnnealingPlanner::new(&profile);
        let start = heuristics::swarm_placement(&profile).unwrap();
        let mut evaluator = crate::placement::incremental::IncrementalFlowEvaluator::new(
            &profile,
            &start,
            true,
            None,
            helix_maxflow::MaxFlowAlgorithm::PushRelabel,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut placement = start;
        let mut checked = 0;
        for _ in 0..120 {
            let Some((node, range)) = planner.propose(&placement, &mut rng) else {
                continue;
            };
            placement.assign(node, range);
            let warm = evaluator.assign(node, range);
            let cold = planner.evaluate(&placement);
            let eps = helix_maxflow::FLOW_EPS * (1.0 + cold.abs());
            assert!((warm - cold).abs() <= eps, "warm {warm} vs cold {cold}");
            checked += 1;
        }
        assert!(checked > 50, "exercised {checked} moves");
    }

    #[test]
    fn annealing_handles_geo_distributed_cluster() {
        let profile =
            ClusterProfile::analytic(ClusterSpec::geo_distributed_24(), ModelConfig::llama2_70b());
        let planner = FlowAnnealingPlanner::new(&profile).with_options(AnnealingOptions {
            iterations: 200,
            ..Default::default()
        });
        let (placement, value) = planner.solve().unwrap();
        placement.validate(&profile).unwrap();
        assert!(value > 0.0);
    }
}
