//! Table 1: minimum numbers of GPUs required to hold each LLM when half of
//! the GPU memory stores model parameters.
//!
//! ```text
//! cargo run --release -p helix-bench --bin table1_min_gpus
//! ```

use helix_bench::{ExperimentReport, ExperimentScale};
use helix_cluster::ModelConfig;

fn main() {
    let models = [
        ("LLaMA-2 70B", ModelConfig::llama2_70b(), (12, 7, 4)),
        ("GPT-3 175B", ModelConfig::gpt3_175b(), (30, 18, 9)),
        ("Grok-1 314B", ModelConfig::grok1_314b(), (53, 32, 16)),
        ("LLaMA-3 405B", ModelConfig::llama3_405b(), (68, 41, 21)),
    ];
    println!("=== Table 1: minimum GPUs to hold the model (half VRAM for weights) ===");
    println!(
        "{:<14} {:>14} {:>10} {:>10} {:>10}   (paper: L4 / A100 / H100)",
        "model", "params (B)", "L4", "A100", "H100"
    );
    let mut rows = Vec::new();
    for (name, model, paper) in models {
        let l4 = model.min_gpus(24.0, 0.5);
        let a100 = model.min_gpus(40.0, 0.5);
        let h100 = model.min_gpus(80.0, 0.5);
        println!(
            "{:<14} {:>14.1} {:>10} {:>10} {:>10}   ({} / {} / {})",
            name,
            model.total_params() / 1e9,
            l4,
            a100,
            h100,
            paper.0,
            paper.1,
            paper.2
        );
        rows.push(serde_json::json!({
            "model": name,
            "params_billion": model.total_params() / 1e9,
            "l4": l4, "a100": a100, "h100": h100,
            "paper": {"l4": paper.0, "a100": paper.1, "h100": paper.2},
        }));
    }
    let report = ExperimentReport::new(
        "table1_min_gpus",
        "Table 1",
        ExperimentScale::Quick,
        serde_json::json!({ "rows": rows }),
    );
    if let Ok(path) = report.write() {
        println!("\nwrote {}", path.display());
    }
}
