//! Latency and scaling of the async data plane: submit → completion round
//! trips through a live `ServingSession` whose workers are tasks on the
//! single-threaded `minirt` executor, measured at 24, 96 and 500 nodes.
//!
//! The interesting axis is *node count*: the thread-per-worker design paid
//! one OS thread per (node, model) engine, so fleets past a few dozen nodes
//! meant hundreds of threads before the first token.  The task-per-engine
//! executor keeps the data plane on one thread regardless of fleet size;
//! these benchmarks pin down what that costs (or saves) in end-to-end
//! submit → completion latency as the fleet grows.  The 24-node numbers are
//! directly comparable to the threaded-baseline figures recorded in
//! `BENCH_session.json`.
//!
//! Run with `cargo bench -p helix-bench --bench async_runtime`; results are
//! recorded in `BENCH_async.json` at the repository root.

use criterion::{criterion_group, criterion_main, Criterion};
use helix_cluster::{ClusterBuilder, ClusterProfile, ClusterSpec, GpuType, ModelConfig, Region};
use helix_core::{heuristics, Topology};
use helix_runtime::{ExecutionKind, RuntimeConfig, ServingBuilder, ServingSession};
use helix_workload::Request;
use std::hint::black_box;
use std::time::Duration;

/// Single-region fleets of increasing size, all three GPU generations.
fn cluster(nodes: usize) -> ClusterSpec {
    match nodes {
        24 => ClusterSpec::single_cluster_24(),
        96 => ClusterBuilder::new("async-bench-96")
            .intra_region(10_000.0, 1.0)
            .add_nodes(GpuType::A100_40, 16, 1, Region(0))
            .add_nodes(GpuType::L4, 32, 1, Region(0))
            .add_nodes(GpuType::T4, 48, 1, Region(0))
            .build(),
        500 => ClusterBuilder::new("async-bench-500")
            .intra_region(10_000.0, 1.0)
            .add_nodes(GpuType::A100_40, 100, 1, Region(0))
            .add_nodes(GpuType::L4, 150, 1, Region(0))
            .add_nodes(GpuType::T4, 250, 1, Region(0))
            .build(),
        other => panic!("no bench cluster of {other} nodes"),
    }
}

fn topology(nodes: usize) -> Topology {
    let profile = ClusterProfile::analytic(cluster(nodes), ModelConfig::llama_30b());
    let placement = heuristics::swarm_placement(&profile).unwrap();
    Topology::plan(&profile, &placement, true).unwrap()
}

fn config() -> RuntimeConfig {
    RuntimeConfig {
        wall_per_virtual: 0.0001,
        execution: ExecutionKind::Instant,
        // The standing session outlives many samples; never trip the budget.
        max_wall: Duration::from_secs(3600),
        ..RuntimeConfig::default()
    }
}

fn session(topology: &Topology) -> ServingSession {
    ServingBuilder::new()
        .topology(topology)
        .config(config())
        .build()
        .unwrap()
}

fn request(id: u64) -> Request {
    Request {
        id,
        prompt_tokens: 64,
        output_tokens: 4,
        arrival_time: 0.0,
        ..Request::default()
    }
}

fn bench_async_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("async_runtime");
    group.sample_size(10);

    for nodes in [24usize, 96, 500] {
        let topology = topology(nodes);
        let mut live = session(&topology);
        let mut next_id = 0u64;

        // One full round trip: submit over the control channel → wake ping →
        // coordinator schedules → fabric delivers the prompt + 3 decode
        // iterations over the pipeline → the completion wakes the waiting
        // caller.  Every hop is waker-driven; no polling interval is paid.
        group.bench_function(format!("submit_to_completion/nodes_{nodes}"), |b| {
            b.iter(|| {
                let ticket = live.submit(request(next_id));
                next_id += 1;
                black_box(live.wait_completion(ticket).unwrap().completed_at)
            })
        });

        // Twenty requests in flight at once: the amortised per-request cost
        // (divide by 20) when the executor interleaves pipeline passes of
        // different requests on its one thread.
        group.bench_function(format!("pipelined_burst_of_20/nodes_{nodes}"), |b| {
            b.iter(|| {
                let tickets: Vec<_> = (0..20)
                    .map(|_| {
                        let ticket = live.submit(request(next_id));
                        next_id += 1;
                        ticket
                    })
                    .collect();
                live.drain().unwrap();
                for ticket in tickets {
                    black_box(live.wait_completion(ticket).unwrap());
                }
            })
        });

        let report = live.finish().unwrap();
        assert_eq!(report.completed() as u64, next_id);
    }
    group.finish();
}

criterion_group!(benches, bench_async_runtime);
criterion_main!(benches);
