//! Offline stub of the `parking_lot` API surface this workspace uses.
//!
//! Backed by `std::sync::Mutex`; poisoning is swallowed (parking_lot mutexes
//! do not poison).  See `vendor/README.md` for why this stub exists.

use std::fmt;

/// A mutual-exclusion lock with parking_lot's non-poisoning `lock()` API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.  Unlike
    /// `std::sync::Mutex`, a panic while holding the lock does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
