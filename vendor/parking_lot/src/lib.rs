//! Offline stub of the `parking_lot` API surface this workspace uses.
//!
//! Backed by `std::sync::Mutex`; poisoning is swallowed (parking_lot mutexes
//! do not poison).  See `vendor/README.md` for why this stub exists.

use std::fmt;

/// A mutual-exclusion lock with parking_lot's non-poisoning `lock()` API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.  Unlike
    /// `std::sync::Mutex`, a panic while holding the lock does not poison it.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock with parking_lot's non-poisoning `read()`/`write()`
/// API.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.  Unlike
    /// `std::sync::RwLock`, a panic while holding the lock does not poison it.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires the exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_reads_share_and_writes_exclude() {
        let l = RwLock::new(1);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 2);
        }
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
        assert_eq!(l.into_inner(), 42);
    }
}
