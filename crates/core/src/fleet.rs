//! Multi-model fleets: several models sharing one heterogeneous cluster.
//!
//! The paper plans and schedules a **single** model; this module generalises
//! the planning→scheduling pipeline to N models co-located on shared GPUs:
//!
//! * [`FleetPlacement`] — one [`ModelPlacement`] per model, with fleet-level
//!   validation that the combined weight bytes fit every node's VRAM budget.
//! * [`FleetTopology`] — the shared-node accounting plus one per-model
//!   [`Topology`] planned on a *capacity-split* view of the cluster: a node
//!   hosting several models contributes a compute share (proportional to the
//!   FLOPs of the layers each model placed there) and a KV share
//!   (proportional to each model's KV bytes per token) to each of them.
//!   A node hosting a single model keeps its numbers **bit-identical** to the
//!   single-model profile, so an N=1 fleet reproduces the existing pipeline
//!   exactly.
//! * [`FleetScheduler`] — per-model schedulers (Helix IWRR by default, each
//!   with its own max-flow weights) behind one `schedule(model, state)` entry
//!   point; returned pipelines are tagged with their [`ModelId`].
//! * [`FleetAnnealingPlanner`] — a joint simulated-annealing search over all
//!   models at once.  Each model keeps a warm-started
//!   [`IncrementalFlowEvaluator`], and besides the usual single-node layer
//!   moves the search proposes **cross-model moves** that hand a node (and a
//!   layer range) from one model to another — both sides re-solve warm from
//!   their standing residual networks, so fleet planning costs little more
//!   than N independent single-model searches.
//!
//! Link capacities are *not* split between models: the planner's disjoint
//! partitions never share a node→node link, and coordinator links are orders
//! of magnitude above compute capacity.  Node compute and KV capacity are
//! strictly partitioned.

use crate::error::HelixError;
use crate::flow_graph::{Endpoint, FlowGraphBuilder};
use crate::placement::incremental::IncrementalFlowEvaluator;
use crate::placement::{LayerRange, ModelPlacement};
use crate::replan::{NodeObservations, PlacementDelta, ReplanOutcome};
use crate::scheduling::iwrr::IwrrScheduler;
use crate::scheduling::prefix::PrefixRouter;
use crate::scheduling::{ClusterState, RequestPipeline, Scheduler, SchedulerKind};
use crate::topology::Topology;
use helix_cluster::{
    ClusterProfile, ClusterSpec, ModelConfig, ModelId, NodeId, MAX_WEIGHT_VRAM_FRACTION,
};
use helix_maxflow::MaxFlowAlgorithm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Builds the per-model [`ClusterProfile`]s of a fleet: one analytic profile
/// per model, all over the same cluster.
pub fn fleet_profiles(cluster: &ClusterSpec, models: &[ModelConfig]) -> Vec<ClusterProfile> {
    models
        .iter()
        .map(|m| ClusterProfile::analytic(cluster.clone(), m.clone()))
        .collect()
}

/// One layer-range placement per model of the fleet.
///
/// # Example
///
/// ```rust
/// use helix_cluster::{ClusterSpec, ModelConfig, ModelId};
/// use helix_core::fleet::{fleet_profiles, FleetPlacement};
/// use helix_core::heuristics;
///
/// let profiles = fleet_profiles(
///     &ClusterSpec::solver_quality_10(),
///     &[ModelConfig::llama_30b()],
/// );
/// let placement = heuristics::swarm_placement(&profiles[0]).unwrap();
/// let fleet = FleetPlacement::single(placement);
/// assert_eq!(fleet.num_models(), 1);
/// assert!(fleet.validate(&profiles).is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPlacement {
    placements: Vec<ModelPlacement>,
}

impl FleetPlacement {
    /// Builds a fleet placement from one placement per model.
    ///
    /// # Panics
    ///
    /// Panics if `placements` is empty.
    pub fn new(placements: Vec<ModelPlacement>) -> Self {
        assert!(!placements.is_empty(), "a fleet serves at least one model");
        FleetPlacement { placements }
    }

    /// Wraps a single-model placement as a one-model fleet.
    pub fn single(placement: ModelPlacement) -> Self {
        FleetPlacement {
            placements: vec![placement],
        }
    }

    /// Number of models in the fleet.
    pub fn num_models(&self) -> usize {
        self.placements.len()
    }

    /// The placement of one model.
    pub fn placement(&self, model: ModelId) -> Option<&ModelPlacement> {
        self.placements.get(model.index())
    }

    /// All per-model placements, indexed by [`ModelId`].
    pub fn placements(&self) -> &[ModelPlacement] {
        &self.placements
    }

    /// The models holding at least one layer on `node`.
    pub fn models_on(&self, node: NodeId) -> Vec<ModelId> {
        self.placements
            .iter()
            .enumerate()
            .filter(|(_, p)| p.range(node).is_some())
            .map(|(m, _)| ModelId(m))
            .collect()
    }

    /// Validates every per-model placement against its profile and checks the
    /// fleet-level constraint: the combined weight bytes of all models on a
    /// node must fit the node's weight VRAM budget.
    ///
    /// # Errors
    ///
    /// Returns the first per-model validation error, or
    /// [`HelixError::FleetVramOverflow`] when co-located models over-commit a
    /// node's VRAM.
    pub fn validate(&self, profiles: &[ClusterProfile]) -> Result<(), HelixError> {
        assert_eq!(
            self.placements.len(),
            profiles.len(),
            "one profile per model"
        );
        for (placement, profile) in self.placements.iter().zip(profiles) {
            placement.validate(profile)?;
        }
        let cluster = profiles[0].cluster();
        for node in cluster.node_ids() {
            let needed: f64 = self
                .placements
                .iter()
                .zip(profiles)
                .filter_map(|(p, prof)| {
                    p.range(node)
                        .map(|r| r.len() as f64 * prof.model().layer_weight_bytes())
                })
                .sum();
            let budget = profiles[0].node_profile(node).vram_bytes * MAX_WEIGHT_VRAM_FRACTION;
            if needed > budget {
                return Err(HelixError::FleetVramOverflow {
                    node,
                    needed_bytes: needed,
                    budget_bytes: budget,
                });
            }
        }
        Ok(())
    }
}

/// One node's capacity split between the fleet's tenants: a compute share
/// and an optional VRAM override per model.
///
/// Compute shares are proportional to the FLOPs of the layers each model
/// placed on the node; KV shares to the KV bytes its cached tokens would
/// occupy.  Sole tenants get exactly `1.0` / the full free VRAM, which keeps
/// the N=1 fleet bit-identical to the single-model profile.  When a measured
/// [`NodeObservations`] entry exists for a (node, model) engine, the
/// analytic share is multiplied by the observed speed factor — planning then
/// prices the node as it actually performs, not as the data sheet promised.
fn node_capacity_split(
    profiles: &[ClusterProfile],
    placement: &FleetPlacement,
    observed: &NodeObservations,
    node: NodeId,
) -> Vec<(f64, Option<f64>)> {
    let num_models = profiles.len();
    let mut split: Vec<(f64, Option<f64>)> = vec![(1.0, None); num_models];
    let tenants: Vec<usize> = (0..num_models)
        .filter(|&m| placement.placements()[m].range(node).is_some())
        .collect();
    if tenants.len() >= 2 {
        let layers = |m: usize| placement.placements()[m].range(node).map_or(0, |r| r.len()) as f64;
        let flops_demand: Vec<f64> = tenants
            .iter()
            .map(|&m| layers(m) * profiles[m].model().layer_flops_per_token())
            .collect();
        let flops_total: f64 = flops_demand.iter().sum();
        let weight_bytes: Vec<f64> = tenants
            .iter()
            .map(|&m| layers(m) * profiles[m].model().layer_weight_bytes())
            .collect();
        let kv_demand: Vec<f64> = tenants
            .iter()
            .map(|&m| layers(m) * profiles[m].model().kv_bytes_per_token_per_layer())
            .collect();
        let kv_total: f64 = kv_demand.iter().sum();
        let vram = profiles[0].node_profile(node).vram_bytes;
        let free = (vram - weight_bytes.iter().sum::<f64>()).max(0.0);
        for (t, &m) in tenants.iter().enumerate() {
            split[m].0 = flops_demand[t] / flops_total.max(1e-12);
            let kv_share = kv_demand[t] / kv_total.max(1e-12);
            split[m].1 = Some(weight_bytes[t] + kv_share * free);
        }
    }
    for &m in &tenants {
        if let Some(speed) = observed.speed_factor(node, ModelId(m)) {
            split[m].0 *= speed;
        }
    }
    split
}

/// The node→node link flows of a planned topology, keyed by directed pair.
fn node_link_flows(topology: &Topology) -> BTreeMap<(NodeId, NodeId), f64> {
    topology
        .links()
        .iter()
        .filter_map(|l| match (l.from, l.to) {
            (Endpoint::Node(a), Endpoint::Node(b)) => Some(((a, b), l.flow)),
            _ => None,
        })
        .collect()
}

/// Splits every link that is valid under ≥2 models by the models' pass-1
/// flow shares, mirroring how node compute/KV are split.  Links valid under
/// a single model get no entry (their capacity stays bit-identical); a link
/// nobody routed flow over in pass 1 is split evenly among its tenants.
fn derive_link_shares(
    unsplit_link_flows: &[BTreeMap<(NodeId, NodeId), f64>],
) -> Vec<BTreeMap<(NodeId, NodeId), f64>> {
    let num_models = unsplit_link_flows.len();
    let mut shares: Vec<BTreeMap<(NodeId, NodeId), f64>> = vec![BTreeMap::new(); num_models];
    let mut tenants: BTreeMap<(NodeId, NodeId), Vec<usize>> = BTreeMap::new();
    for (m, flows) in unsplit_link_flows.iter().enumerate() {
        for &link in flows.keys() {
            tenants.entry(link).or_default().push(m);
        }
    }
    for (link, models) in tenants {
        if models.len() < 2 {
            continue;
        }
        let flows: Vec<f64> = models
            .iter()
            .map(|&m| unsplit_link_flows[m][&link])
            .collect();
        let total: f64 = flows.iter().sum();
        for (i, &m) in models.iter().enumerate() {
            let share = if total > 0.0 {
                flows[i] / total
            } else {
                1.0 / models.len() as f64
            };
            shares[m].insert(link, share);
        }
    }
    shares
}

/// The multi-model planning artifact: shared-node accounting plus one
/// [`Topology`] per model, each planned on its capacity-split profile.
///
/// Beyond the one-shot [`FleetTopology::plan`], the artifact is **mutable**:
/// [`FleetTopology::replan`] closes the online loop by applying a
/// [`PlacementDelta`] and a fresh [`NodeObservations`] snapshot, re-deriving
/// compute/KV shares only for the touched nodes and re-solving only the
/// affected models — each on a standing warm-started
/// [`IncrementalFlowEvaluator`], followed by a deterministic materialisation
/// that is property-tested bit-identical to a from-scratch
/// [`FleetTopology::plan`] of the mutated placement.
#[derive(Debug, Clone)]
pub struct FleetTopology {
    /// Base (unscaled) per-model profiles; scaling is re-derived on re-plan.
    profiles: Vec<ClusterProfile>,
    placement: FleetPlacement,
    partial_inference: bool,
    /// The observation snapshot the current shares were derived from.
    observations: NodeObservations,
    topologies: Vec<Topology>,
    /// `compute_shares[model][node]`: this model's fraction of the node's
    /// compute (1.0 for sole tenants and for nodes the model does not use),
    /// multiplied by the observed speed factor when one is recorded.
    compute_shares: Vec<Vec<f64>>,
    /// `vram_overrides[model][node]`: the VRAM slice backing this model's KV
    /// arithmetic on shared nodes (`None` = full node VRAM).
    vram_overrides: Vec<Vec<Option<f64>>>,
    /// Pass-1 (unsplit-link) node→node flows per model, the inputs to the
    /// cross-model link split.
    unsplit_link_flows: Vec<BTreeMap<(NodeId, NodeId), f64>>,
    /// Per-model shares of links valid under ≥2 models (empty for a model
    /// whose links are all sole-tenant).
    link_shares: Vec<BTreeMap<(NodeId, NodeId), f64>>,
    /// Standing per-model warm evaluators, built lazily on first re-plan.
    evaluators: Vec<Option<IncrementalFlowEvaluator>>,
}

impl FleetTopology {
    /// Plans the fleet: computes per-node compute/KV shares from the
    /// placements and solves one max flow per model on its share-scaled
    /// profile.
    ///
    /// # Errors
    ///
    /// Propagates fleet and per-model placement validation errors.
    pub fn plan(
        profiles: &[ClusterProfile],
        placement: &FleetPlacement,
        partial_inference: bool,
    ) -> Result<Self, HelixError> {
        Self::plan_observed(
            profiles,
            placement,
            partial_inference,
            &NodeObservations::new(),
        )
    }

    /// Like [`FleetTopology::plan`], but prices every observed (node, model)
    /// engine at its measured speed factor instead of the analytic share —
    /// the entry point online re-planning and observation-aware offline
    /// planning share.  An empty observation set reproduces
    /// [`FleetTopology::plan`] bit-identically.
    ///
    /// # Errors
    ///
    /// Propagates fleet and per-model placement validation errors.
    pub fn plan_observed(
        profiles: &[ClusterProfile],
        placement: &FleetPlacement,
        partial_inference: bool,
        observed: &NodeObservations,
    ) -> Result<Self, HelixError> {
        placement.validate(profiles)?;
        let cluster = profiles[0].cluster();
        let n = cluster.num_nodes();
        let num_models = profiles.len();

        let mut compute_shares = vec![vec![1.0f64; n]; num_models];
        let mut vram_overrides: Vec<Vec<Option<f64>>> = vec![vec![None; n]; num_models];
        for node in cluster.node_ids() {
            let split = node_capacity_split(profiles, placement, observed, node);
            for (m, (share, vram)) in split.into_iter().enumerate() {
                compute_shares[m][node.index()] = share;
                vram_overrides[m][node.index()] = vram;
            }
        }

        // Pass 1: per-model solves with full link capacities; their flows
        // decide how fleet-shared links are split.
        let mut pass1 = Vec::with_capacity(num_models);
        let mut unsplit_link_flows = Vec::with_capacity(num_models);
        for (m, profile) in profiles.iter().enumerate() {
            let scaled = profile.scaled(&compute_shares[m], &vram_overrides[m]);
            let topology = Topology::plan(&scaled, &placement.placements()[m], partial_inference)?;
            unsplit_link_flows.push(node_link_flows(&topology));
            pass1.push((topology, scaled));
        }
        let link_shares = derive_link_shares(&unsplit_link_flows);

        // Pass 2: models routing over fleet-shared links re-solve with their
        // split capacities; everyone else keeps the pass-1 topology.
        let mut topologies = Vec::with_capacity(num_models);
        for (m, (topology, scaled)) in pass1.into_iter().enumerate() {
            if link_shares[m].is_empty() {
                topologies.push(topology);
            } else {
                topologies.push(Topology::plan_with_link_shares(
                    &scaled,
                    &placement.placements()[m],
                    partial_inference,
                    &link_shares[m],
                )?);
            }
        }

        Ok(FleetTopology {
            profiles: profiles.to_vec(),
            placement: placement.clone(),
            partial_inference,
            observations: observed.clone(),
            topologies,
            compute_shares,
            vram_overrides,
            unsplit_link_flows,
            link_shares,
            evaluators: vec![None; num_models],
        })
    }

    /// Wraps an already-planned single-model [`Topology`] as a one-model
    /// fleet (the trivial N=1 case; nothing is re-planned).
    pub fn single(topology: Topology) -> Self {
        let n = topology.profile().cluster().num_nodes();
        let unsplit = node_link_flows(&topology);
        FleetTopology {
            profiles: vec![topology.profile().clone()],
            placement: FleetPlacement::single(topology.placement().clone()),
            partial_inference: topology.partial_inference(),
            observations: NodeObservations::new(),
            topologies: vec![topology],
            compute_shares: vec![vec![1.0; n]],
            vram_overrides: vec![vec![None; n]],
            unsplit_link_flows: vec![unsplit],
            link_shares: vec![BTreeMap::new()],
            evaluators: vec![None],
        }
    }

    /// Applies a placement delta plus a fresh observation snapshot to the
    /// standing fleet plan: re-derives compute/KV shares **only for the
    /// nodes the delta or the observation change touches**, warm re-solves
    /// the affected models' standing [`IncrementalFlowEvaluator`]s, and
    /// re-materialises only those models' topologies (through the same
    /// deterministic code path as [`FleetTopology::plan_observed`], so the
    /// result is bit-identical to a from-scratch plan of the mutated
    /// placement under the same observations).  Unaffected models' planned
    /// topologies, IWRR weights and link splits are left untouched.
    ///
    /// `observed` is a full snapshot: pairs present in the previous snapshot
    /// but absent here revert to their analytic shares.
    ///
    /// A delta carrying [`KvMigration`](crate::replan::KvMigration)s is first
    /// resolved against the current placement
    /// ([`PlacementDelta::resolve`]); the applied migrations are echoed in
    /// the outcome so the execution surface can move the KV pages — planning
    /// itself moves no state.
    ///
    /// # Errors
    ///
    /// Returns [`HelixError::UnknownModel`] for a delta naming a model the
    /// fleet does not serve and propagates validation/planning errors for
    /// the mutated placement.  On error the fleet plan is left unchanged.
    pub fn replan(
        &mut self,
        delta: &PlacementDelta,
        observed: &NodeObservations,
    ) -> Result<ReplanOutcome, HelixError> {
        let num_models = self.profiles.len();
        for model in delta.models() {
            if model.index() >= num_models {
                return Err(HelixError::UnknownModel { model, num_models });
            }
        }

        // 1. Resolve migrations against the current placement into explicit
        // changes, then mutate and validate (on a copy; commit later).
        let changes = delta.resolve(&self.placement)?;
        let mut new_placements = self.placement.placements().to_vec();
        for &(model, node, range) in &changes {
            match range {
                Some(r) => new_placements[model.index()].assign(node, r),
                None => new_placements[model.index()].clear(node),
            }
        }
        let new_placement = FleetPlacement::new(new_placements);
        new_placement.validate(&self.profiles)?;

        // 2. Touched nodes: everything the delta moves plus every node whose
        // effective observation changed against the stored snapshot.
        let cluster = self.profiles[0].cluster().clone();
        let mut touched = delta.touched_nodes();
        for node in cluster.node_ids() {
            if touched.contains(&node) {
                continue;
            }
            let changed = (0..num_models).any(|m| {
                observed.speed_factor(node, ModelId(m))
                    != self.observations.speed_factor(node, ModelId(m))
            });
            if changed {
                touched.push(node);
            }
        }
        touched.sort();

        // 3. Affected models: any tenant (old or new) of a touched node,
        // plus every model the delta names.
        let mut affected: Vec<usize> = delta.models().iter().map(|m| m.index()).collect();
        for &node in &touched {
            for m in 0..num_models {
                if self.placement.placements()[m].range(node).is_some()
                    || new_placement.placements()[m].range(node).is_some()
                {
                    affected.push(m);
                }
            }
        }
        affected.sort();
        affected.dedup();
        if affected.is_empty() {
            self.placement = new_placement;
            self.observations = observed.clone();
            return Ok(ReplanOutcome {
                affected: Vec::new(),
                warm_flow_values: Vec::new(),
                migrations: Vec::new(),
            });
        }

        // 4. Re-derive shares for the touched nodes only.
        let mut compute_shares = self.compute_shares.clone();
        let mut vram_overrides = self.vram_overrides.clone();
        for &node in &touched {
            let split = node_capacity_split(&self.profiles, &new_placement, observed, node);
            for (m, (share, vram)) in split.into_iter().enumerate() {
                compute_shares[m][node.index()] = share;
                vram_overrides[m][node.index()] = vram;
            }
        }

        // 5. Pass 1 for the affected models (fallible; nothing committed yet).
        let mut scaled_profiles: BTreeMap<usize, ClusterProfile> = BTreeMap::new();
        let mut pass1: BTreeMap<usize, Topology> = BTreeMap::new();
        let mut unsplit = self.unsplit_link_flows.clone();
        for &m in &affected {
            let scaled = self.profiles[m].scaled(&compute_shares[m], &vram_overrides[m]);
            let topology = Topology::plan(
                &scaled,
                &new_placement.placements()[m],
                self.partial_inference,
            )?;
            unsplit[m] = node_link_flows(&topology);
            pass1.insert(m, topology);
            scaled_profiles.insert(m, scaled);
        }

        // 6. Re-derive the cross-model link split.  A model whose link
        // shares moved is coupled into the affected set even if none of its
        // own nodes were touched.
        let link_shares = derive_link_shares(&unsplit);
        let mut final_affected = affected;
        for (m, shares) in link_shares.iter().enumerate() {
            if *shares != self.link_shares[m] && !final_affected.contains(&m) {
                final_affected.push(m);
            }
        }
        final_affected.sort();

        // 7. Materialise the affected models' final topologies (fallible).
        let mut new_topologies: BTreeMap<usize, Topology> = BTreeMap::new();
        for &m in &final_affected {
            let scaled = match scaled_profiles.get(&m) {
                Some(s) => s.clone(),
                None => {
                    let s = self.profiles[m].scaled(&compute_shares[m], &vram_overrides[m]);
                    scaled_profiles.insert(m, s.clone());
                    s
                }
            };
            let topology = if link_shares[m].is_empty() {
                match pass1.remove(&m) {
                    Some(t) => t,
                    None => Topology::plan(
                        &scaled,
                        &new_placement.placements()[m],
                        self.partial_inference,
                    )?,
                }
            } else {
                Topology::plan_with_link_shares(
                    &scaled,
                    &new_placement.placements()[m],
                    self.partial_inference,
                    &link_shares[m],
                )?
            };
            new_topologies.insert(m, topology);
        }

        // 8. Commit: warm re-solve each affected model's standing evaluator
        // (built on first use), then swap in the new planning facts.
        let mut warm_flow_values = Vec::with_capacity(final_affected.len());
        for &m in &final_affected {
            let scaled = scaled_profiles[&m].clone();
            let changes: Vec<(NodeId, Option<LayerRange>)> = changes
                .iter()
                .filter(|&&(model, _, _)| model.index() == m)
                .map(|&(_, node, range)| (node, range))
                .collect();
            let warm = match &mut self.evaluators[m] {
                Some(evaluator) => evaluator.rebase(scaled, &changes, &touched),
                None => {
                    let evaluator = IncrementalFlowEvaluator::new(
                        &scaled,
                        &new_placement.placements()[m],
                        self.partial_inference,
                        None,
                        MaxFlowAlgorithm::Dinic,
                    )?;
                    let value = evaluator.value();
                    self.evaluators[m] = Some(evaluator);
                    value
                }
            };
            warm_flow_values.push(warm);
        }
        for (m, topology) in new_topologies {
            self.topologies[m] = topology;
        }
        self.compute_shares = compute_shares;
        self.vram_overrides = vram_overrides;
        self.unsplit_link_flows = unsplit;
        self.link_shares = link_shares;
        self.placement = new_placement;
        self.observations = observed.clone();
        Ok(ReplanOutcome {
            affected: final_affected.into_iter().map(ModelId).collect(),
            warm_flow_values,
            migrations: delta.migrations().to_vec(),
        })
    }

    /// Number of models in the fleet.
    pub fn num_models(&self) -> usize {
        self.topologies.len()
    }

    /// The planned topology of one model.
    pub fn model(&self, model: ModelId) -> Option<&Topology> {
        self.topologies.get(model.index())
    }

    /// All per-model topologies, indexed by [`ModelId`].
    pub fn topologies(&self) -> &[Topology] {
        &self.topologies
    }

    /// The fleet placement the current plan realises.
    pub fn placement(&self) -> &FleetPlacement {
        &self.placement
    }

    /// The base (unscaled) per-model profiles the fleet plans against.
    pub fn profiles(&self) -> &[ClusterProfile] {
        &self.profiles
    }

    /// Whether connection validity allows partial inference.
    pub fn partial_inference(&self) -> bool {
        self.partial_inference
    }

    /// The observation snapshot the current shares were derived from.
    pub fn observations(&self) -> &NodeObservations {
        &self.observations
    }

    /// One model's profile under the **analytic** contention split of the
    /// current placement: compute/KV shares re-derived as if no observation
    /// existed.  This is the physical capacity split execution surfaces run
    /// engines at — a measured speed factor belongs to planning (pricing the
    /// node), not to execution (it would double-count the slowdown the
    /// measurement already reflects).
    pub fn contention_profile(&self, model: ModelId) -> ClusterProfile {
        let m = model.index();
        let cluster = self.profiles[0].cluster();
        let n = cluster.num_nodes();
        let mut shares = vec![1.0f64; n];
        let mut overrides: Vec<Option<f64>> = vec![None; n];
        let empty = NodeObservations::new();
        for node in cluster.node_ids() {
            let split = node_capacity_split(&self.profiles, &self.placement, &empty, node);
            shares[node.index()] = split[m].0;
            overrides[node.index()] = split[m].1;
        }
        self.profiles[m].scaled(&shares, &overrides)
    }

    /// This model's fraction of `node`'s compute (1.0 when it is the sole
    /// tenant or does not use the node), including any observed speed factor.
    pub fn compute_share(&self, model: ModelId, node: NodeId) -> f64 {
        self.compute_shares
            .get(model.index())
            .and_then(|s| s.get(node.index()))
            .copied()
            .unwrap_or(1.0)
    }

    /// This model's share of the directed link `from → to` (1.0 when the
    /// link is not shared with another model).
    pub fn link_share(&self, model: ModelId, from: NodeId, to: NodeId) -> f64 {
        self.link_shares
            .get(model.index())
            .and_then(|s| s.get(&(from, to)))
            .copied()
            .unwrap_or(1.0)
    }

    /// Warm re-solves performed by one model's standing evaluator (`None`
    /// until the first [`FleetTopology::replan`] touches the model).
    pub fn standing_warm_solves(&self, model: ModelId) -> Option<u64> {
        self.evaluators
            .get(model.index())
            .and_then(|e| e.as_ref())
            .map(IncrementalFlowEvaluator::warm_solves)
    }

    /// Sum of the per-model max-flow throughputs (tokens/s).
    pub fn total_flow_value(&self) -> f64 {
        self.topologies.iter().map(Topology::flow_value).sum()
    }
}

/// Per-model schedulers behind one `schedule(model, state)` entry point.
pub struct FleetScheduler {
    schedulers: Vec<Box<dyn Scheduler>>,
}

impl FleetScheduler {
    /// Builds one Helix IWRR scheduler per model from the fleet topology.
    ///
    /// # Errors
    ///
    /// Propagates the zero-flow error of any model's scheduler.
    pub fn iwrr(fleet: &FleetTopology) -> Result<Self, HelixError> {
        let schedulers = fleet
            .topologies()
            .iter()
            .map(|t| IwrrScheduler::from_topology(t).map(|s| Box::new(s) as Box<dyn Scheduler>))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FleetScheduler { schedulers })
    }

    /// Builds the fleet scheduler from explicit per-model schedulers.
    ///
    /// # Panics
    ///
    /// Panics if `schedulers` is empty.
    pub fn new(schedulers: Vec<Box<dyn Scheduler>>) -> Self {
        assert!(!schedulers.is_empty(), "a fleet serves at least one model");
        FleetScheduler { schedulers }
    }

    /// Number of models the scheduler serves.
    pub fn num_models(&self) -> usize {
        self.schedulers.len()
    }

    /// Unwraps the per-model schedulers (consumed by execution surfaces that
    /// drive one scheduler per model).
    pub fn into_parts(self) -> Vec<Box<dyn Scheduler>> {
        self.schedulers
    }

    /// One cache-aware [`PrefixRouter`] per model, to be layered on top of
    /// the base per-model schedulers (consult the router first; fall back to
    /// the base policy on a miss or bypass).
    pub fn prefix_routers(&self) -> Vec<PrefixRouter> {
        (0..self.schedulers.len())
            .map(|_| PrefixRouter::new())
            .collect()
    }

    /// The scheduling policy used for one model.
    pub fn kind(&self, model: ModelId) -> Option<SchedulerKind> {
        self.schedulers.get(model.index()).map(|s| s.kind())
    }

    /// Produces a pipeline for the next request of `model`, tagged with the
    /// model id.
    ///
    /// # Errors
    ///
    /// Returns [`HelixError::UnknownModel`] for an out-of-range model and
    /// propagates the underlying scheduler's errors.
    pub fn schedule(
        &mut self,
        model: ModelId,
        state: &dyn ClusterState,
    ) -> Result<RequestPipeline, HelixError> {
        let num_models = self.schedulers.len();
        let scheduler = self
            .schedulers
            .get_mut(model.index())
            .ok_or(HelixError::UnknownModel { model, num_models })?;
        let mut pipeline = scheduler.schedule(state)?;
        pipeline.model = model;
        Ok(pipeline)
    }
}

/// Options for the joint fleet annealing search.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetAnnealingOptions {
    /// Number of proposed moves across the whole fleet.
    pub iterations: usize,
    /// Initial acceptance temperature as a fraction of the initial
    /// (normalised) objective.
    pub initial_temperature: f64,
    /// Multiplicative cooling factor applied every iteration.
    pub cooling: f64,
    /// RNG seed (searches are deterministic given the seed).
    pub seed: u64,
    /// Whether connection validity allows partial inference.
    pub partial_inference: bool,
    /// Optional cluster pruning degree for the flow evaluations.
    pub prune_degree: Option<usize>,
    /// Probability that a proposal moves a node *between* models instead of
    /// adjusting a layer range within one model.
    pub cross_model_fraction: f64,
    /// Per-model traffic weights; `None` weighs every model equally.  The
    /// objective maximised is `Σ weight_m · flow_m / upper_bound_m`.
    pub weights: Option<Vec<f64>>,
}

impl Default for FleetAnnealingOptions {
    fn default() -> Self {
        FleetAnnealingOptions {
            iterations: 4000,
            initial_temperature: 0.05,
            cooling: 0.999,
            seed: 0x48454C49,
            partial_inference: true,
            prune_degree: None,
            cross_model_fraction: 0.25,
            weights: None,
        }
    }
}

/// Joint simulated-annealing placement search for a multi-model fleet.
///
/// Every model keeps a warm-started [`IncrementalFlowEvaluator`]; intra-model
/// moves re-solve one model's standing network and cross-model moves re-solve
/// the two networks a node migrates between.  The search keeps node ownership
/// disjoint (each node serves at most one model), so per-node compute/KV
/// shares stay at 1.0 throughout and the evaluators' base profiles remain
/// valid for every intermediate state.
///
/// # Example
///
/// ```rust
/// use helix_cluster::{ClusterSpec, ModelConfig};
/// use helix_core::fleet::{fleet_profiles, FleetAnnealingOptions, FleetAnnealingPlanner};
///
/// let profiles = fleet_profiles(
///     &ClusterSpec::single_cluster_24(),
///     &[ModelConfig::llama_30b(), ModelConfig::llama_13b()],
/// );
/// let planner = FleetAnnealingPlanner::new(&profiles).with_options(FleetAnnealingOptions {
///     iterations: 300,
///     ..Default::default()
/// });
/// let (placement, flows) = planner.solve().unwrap();
/// assert_eq!(flows.len(), 2);
/// assert!(flows.iter().all(|&f| f > 0.0));
/// # let _ = placement;
/// ```
#[derive(Debug, Clone)]
pub struct FleetAnnealingPlanner<'a> {
    profiles: &'a [ClusterProfile],
    options: FleetAnnealingOptions,
    observations: Option<&'a NodeObservations>,
}

impl<'a> FleetAnnealingPlanner<'a> {
    /// Creates a planner over one profile per model (all sharing a cluster).
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty.
    pub fn new(profiles: &'a [ClusterProfile]) -> Self {
        assert!(!profiles.is_empty(), "a fleet serves at least one model");
        FleetAnnealingPlanner {
            profiles,
            options: FleetAnnealingOptions::default(),
            observations: None,
        }
    }

    /// Replaces the options.
    pub fn with_options(mut self, options: FleetAnnealingOptions) -> Self {
        self.options = options;
        self
    }

    /// Scores placements against measured per-(node, model) speed factors
    /// instead of the analytic profile alone — the same measured-share code
    /// path [`FleetTopology::plan_observed`] uses, so offline planning and
    /// online re-planning cannot diverge.  The planner keeps node ownership
    /// disjoint, so an observed speed factor applies to the node's full
    /// capacity for whichever model owns it.
    pub fn with_observations(mut self, observations: &'a NodeObservations) -> Self {
        self.observations = Some(observations);
        self
    }

    /// The per-model profiles re-priced by the observed speed factors, or
    /// `None` when no observation is recorded (the analytic path).
    fn observed_profiles(&self) -> Option<Vec<ClusterProfile>> {
        let observed = self.observations.filter(|o| !o.is_empty())?;
        let n = self.profiles[0].cluster().num_nodes();
        Some(
            self.profiles
                .iter()
                .enumerate()
                .map(|(m, profile)| {
                    let shares: Vec<f64> = (0..n)
                        .map(|i| observed.speed_factor(NodeId(i), ModelId(m)).unwrap_or(1.0))
                        .collect();
                    profile.scaled(&shares, &vec![None; n])
                })
                .collect(),
        )
    }

    /// A copy of this planner working on re-priced profiles (used to route
    /// observation-aware calls through the analytic code path unchanged).
    fn repriced<'b>(&self, profiles: &'b [ClusterProfile]) -> FleetAnnealingPlanner<'b> {
        FleetAnnealingPlanner {
            profiles,
            options: self.options.clone(),
            observations: None,
        }
    }

    /// Evaluates the per-model max-flow throughputs of a fleet placement
    /// with a cold solve per model (under the observed speed factors, when
    /// set); invalid per-model placements score 0.
    pub fn evaluate(&self, placement: &FleetPlacement) -> Vec<f64> {
        if let Some(profiles) = self.observed_profiles() {
            return self.repriced(&profiles).evaluate(placement);
        }
        placement
            .placements()
            .iter()
            .zip(self.profiles)
            .map(|(p, profile)| {
                let mut builder = FlowGraphBuilder::new(profile)
                    .partial_inference(self.options.partial_inference);
                if let Some(d) = self.options.prune_degree {
                    builder = builder.prune_to_degree(d);
                }
                builder.build(p).map(|g| g.max_flow().value).unwrap_or(0.0)
            })
            .collect()
    }

    fn weight(&self, model: usize) -> f64 {
        self.options
            .weights
            .as_ref()
            .and_then(|w| w.get(model))
            .copied()
            .unwrap_or(1.0)
    }

    /// Runs the search: greedy node partition, per-model greedy seeds, then
    /// joint annealing with warm-started intra- and cross-model moves.
    /// Returns the best placement and its cold-evaluated per-model flows.
    /// With observations set, the whole search (seeds, evaluators, upper
    /// bounds and final scoring) runs on the measured-speed profiles.
    ///
    /// # Errors
    ///
    /// Returns [`HelixError::NoPlacementFound`] if the cluster cannot hold
    /// every model at once or no feasible partition is found.
    pub fn solve(&self) -> Result<(FleetPlacement, Vec<f64>), HelixError> {
        if let Some(profiles) = self.observed_profiles() {
            return self.repriced(&profiles).solve();
        }
        let num_models = self.profiles.len();
        if num_models == 1 {
            // Trivial fleet: the single-model annealer is the canonical path.
            let single = crate::placement::refine::FlowAnnealingPlanner::new(&self.profiles[0])
                .with_options(crate::placement::refine::AnnealingOptions {
                    iterations: self.options.iterations,
                    initial_temperature: self.options.initial_temperature,
                    cooling: self.options.cooling,
                    seed: self.options.seed,
                    partial_inference: self.options.partial_inference,
                    prune_degree: self.options.prune_degree,
                    warm_start: true,
                });
            let (placement, value) = single.solve()?;
            return Ok((FleetPlacement::single(placement), vec![value]));
        }

        let cluster = self.profiles[0].cluster();
        let n = cluster.num_nodes();
        let mut owner = self.partition_nodes()?;

        // Seed each model with a Petals-style greedy placement on its nodes.
        let mut seeds = Vec::with_capacity(num_models);
        for (m, profile) in self.profiles.iter().enumerate() {
            let nodes: Vec<NodeId> = cluster
                .node_ids()
                .filter(|id| owner[id.index()] == Some(m))
                .collect();
            let placement = crate::placement::heuristics::petals_over(profile, &nodes);
            if !placement.has_complete_pipeline(profile.model().num_layers) {
                return Err(HelixError::NoPlacementFound);
            }
            seeds.push(placement);
        }

        let mut evaluators = seeds
            .iter()
            .zip(self.profiles)
            .map(|(seed, profile)| {
                IncrementalFlowEvaluator::new(
                    profile,
                    seed,
                    self.options.partial_inference,
                    self.options.prune_degree,
                    MaxFlowAlgorithm::Dinic,
                )
            })
            .collect::<Result<Vec<_>, _>>()?;

        let uppers: Vec<f64> = self
            .profiles
            .iter()
            .map(|p| p.throughput_upper_bound().max(1e-9))
            .collect();
        let objective = |values: &[f64]| -> f64 {
            values
                .iter()
                .enumerate()
                .map(|(m, &v)| self.weight(m) * v / uppers[m])
                .sum()
        };
        let mut values: Vec<f64> = evaluators.iter().map(|e| e.value()).collect();
        let mut current_obj = objective(&values);
        let mut best_obj = f64::NEG_INFINITY;
        let mut best: Vec<ModelPlacement> = seeds.clone();
        if values.iter().all(|&v| v > 0.0) {
            best_obj = current_obj;
            best = evaluators.iter().map(|e| e.placement().clone()).collect();
        }

        let mut temperature = self.options.initial_temperature * current_obj.abs().max(1e-9);
        let mut rng = StdRng::seed_from_u64(self.options.seed);
        let nodes: Vec<NodeId> = cluster.node_ids().collect();

        for _ in 0..self.options.iterations {
            temperature *= self.options.cooling;
            let cross = rng.gen::<f64>() < self.options.cross_model_fraction;
            let node = nodes[rng.gen_range(0..n)];
            let from_owner = owner[node.index()];

            if cross {
                // Hand `node` to a different model with a fresh range.
                let Some(a) = from_owner else { continue };
                let b = rng.gen_range(0..num_models);
                if b == a {
                    continue;
                }
                let Some(range) =
                    propose_range(&self.profiles[b], evaluators[b].placement(), node, &mut rng)
                else {
                    continue;
                };
                let prev_a = evaluators[a].placement().range(node);
                let va = evaluators[a].restore(node, None);
                let vb = evaluators[b].assign(node, range);
                let mut new_values = values.clone();
                new_values[a] = va;
                new_values[b] = vb;
                let new_obj = objective(&new_values);
                if self.accept(new_obj, current_obj, temperature, &mut rng)
                    && new_values.iter().all(|&v| v > 0.0)
                {
                    owner[node.index()] = Some(b);
                    values = new_values;
                    current_obj = new_obj;
                    if current_obj > best_obj {
                        best_obj = current_obj;
                        best = evaluators.iter().map(|e| e.placement().clone()).collect();
                    }
                } else {
                    evaluators[b].restore(node, None);
                    evaluators[a].restore(node, prev_a);
                }
            } else {
                // Adjust a layer range within the owning model, or claim a
                // free node for a random model.
                let m = match from_owner {
                    Some(m) => m,
                    None => rng.gen_range(0..num_models),
                };
                let Some(range) =
                    propose_range(&self.profiles[m], evaluators[m].placement(), node, &mut rng)
                else {
                    continue;
                };
                let prev = evaluators[m].placement().range(node);
                let vm = evaluators[m].assign(node, range);
                let mut new_values = values.clone();
                new_values[m] = vm;
                let new_obj = objective(&new_values);
                if self.accept(new_obj, current_obj, temperature, &mut rng)
                    && new_values.iter().all(|&v| v > 0.0)
                {
                    owner[node.index()] = Some(m);
                    values = new_values;
                    current_obj = new_obj;
                    if current_obj > best_obj {
                        best_obj = current_obj;
                        best = evaluators.iter().map(|e| e.placement().clone()).collect();
                    }
                } else {
                    evaluators[m].restore(node, prev);
                }
            }
        }

        if best_obj <= f64::NEG_INFINITY {
            return Err(HelixError::NoPlacementFound);
        }
        let placement = FleetPlacement::new(best);
        let flows = self.evaluate(&placement);
        if flows.iter().any(|&f| f <= 0.0) {
            return Err(HelixError::NoPlacementFound);
        }
        Ok((placement, flows))
    }

    /// Greedily assigns nodes (descending FLOPs) to the model with the lowest
    /// assigned-compute-to-demand ratio, then repairs infeasible partitions
    /// by stealing nodes from over-provisioned models.
    fn partition_nodes(&self) -> Result<Vec<Option<usize>>, HelixError> {
        let cluster = self.profiles[0].cluster();
        let num_models = self.profiles.len();
        let mut ids: Vec<NodeId> = cluster.node_ids().collect();
        ids.sort_by(|&a, &b| {
            let fa = cluster.node(a).total_fp16_flops();
            let fb = cluster.node(b).total_fp16_flops();
            fb.partial_cmp(&fa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        // Demand of a model: weighted total FLOPs to push one token through it.
        let demand: Vec<f64> = (0..num_models)
            .map(|m| {
                let model = self.profiles[m].model();
                (self.weight(m) * model.num_layers as f64 * model.layer_flops_per_token()).max(1e-9)
            })
            .collect();
        let mut assigned = vec![0.0f64; num_models];
        let mut owner: Vec<Option<usize>> = vec![None; cluster.num_nodes()];
        for &id in &ids {
            let flops = cluster.node(id).total_fp16_flops();
            let m = (0..num_models)
                .min_by(|&x, &y| {
                    (assigned[x] / demand[x])
                        .partial_cmp(&(assigned[y] / demand[y]))
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("at least one model");
            owner[id.index()] = Some(m);
            assigned[m] += flops;
        }
        // Repair: every model must be able to hold a full replica on its nodes.
        for _ in 0..cluster.num_nodes() {
            let subset = |m: usize| -> Vec<NodeId> {
                cluster
                    .node_ids()
                    .filter(|id| owner[id.index()] == Some(m))
                    .collect()
            };
            let Some(starved) =
                (0..num_models).find(|&m| !self.profiles[m].can_hold_model(&subset(m)))
            else {
                return Ok(owner);
            };
            // Steal the largest node from the most over-provisioned model
            // that stays feasible without it.
            let donor = (0..num_models)
                .filter(|&m| m != starved)
                .filter_map(|m| {
                    let nodes = subset(m);
                    nodes
                        .iter()
                        .map(|&id| {
                            let rest: Vec<NodeId> =
                                nodes.iter().copied().filter(|&x| x != id).collect();
                            (m, id, self.profiles[m].can_hold_model(&rest))
                        })
                        .filter(|&(_, _, feasible)| feasible)
                        .max_by(|a, b| {
                            cluster
                                .node(a.1)
                                .total_fp16_flops()
                                .partial_cmp(&cluster.node(b.1).total_fp16_flops())
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                })
                .max_by(|a, b| {
                    (assigned[a.0] / demand[a.0])
                        .partial_cmp(&(assigned[b.0] / demand[b.0]))
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            let Some((m, id, _)) = donor else {
                return Err(HelixError::NoPlacementFound);
            };
            let flops = cluster.node(id).total_fp16_flops();
            assigned[m] -= flops;
            assigned[starved] += flops;
            owner[id.index()] = Some(starved);
        }
        Err(HelixError::NoPlacementFound)
    }

    fn accept(&self, value: f64, current: f64, temperature: f64, rng: &mut StdRng) -> bool {
        value >= current || {
            let delta = current - value;
            temperature > 1e-12 && rng.gen::<f64>() < (-delta / temperature).exp()
        }
    }
}

/// Proposes a layer range for `node` under `profile`, mirroring the move
/// templates of [`FlowAnnealingPlanner::propose`] (resize/shift when the node
/// already holds layers, anchor-after or replicate another node otherwise).
///
/// Deliberately *not* shared with the single-model planner: that one draws
/// its own node and consumes its RNG in a different order, so merging the two
/// would change the seeded search trajectories of existing runs.  Keep the
/// magic constants (resize ±3, shift ±4) in sync with
/// `placement::refine::FlowAnnealingPlanner::propose` when tuning either.
///
/// [`FlowAnnealingPlanner::propose`]: crate::FlowAnnealingPlanner
pub(crate) fn propose_range(
    profile: &ClusterProfile,
    placement: &ModelPlacement,
    node: NodeId,
    rng: &mut StdRng,
) -> Option<LayerRange> {
    let num_layers = profile.model().num_layers;
    let max_layers = profile.node_profile(node).max_layers.min(num_layers);
    if max_layers == 0 {
        return None;
    }
    let current = placement.range(node);
    match rng.gen_range(0..4u8) {
        // Resize around the current start.
        0 => {
            let range = current.unwrap_or(LayerRange::new(0, 1));
            let delta: i64 = rng.gen_range(-3..=3);
            let new_len = (range.len() as i64 + delta).clamp(1, max_layers as i64) as usize;
            let start = range.start.min(num_layers - new_len);
            Some(LayerRange::new(start, start + new_len))
        }
        // Shift the current range.
        1 => {
            let range = current.unwrap_or(LayerRange::new(0, max_layers));
            let len = range.len().min(max_layers);
            let shift: i64 = rng.gen_range(-4..=4);
            let start = (range.start as i64 + shift).clamp(0, (num_layers - len) as i64) as usize;
            Some(LayerRange::new(start, start + len))
        }
        // Anchor right after a random assigned node of this model.
        2 => {
            let assigned: Vec<(NodeId, LayerRange)> = placement.iter().collect();
            if assigned.is_empty() {
                return Some(LayerRange::new(0, max_layers));
            }
            let (_, other) = assigned[rng.gen_range(0..assigned.len())];
            if other.end < num_layers {
                let len = max_layers.min(num_layers - other.end);
                Some(LayerRange::new(other.end, other.end + len))
            } else {
                let len = max_layers.min(other.len());
                Some(LayerRange::new(other.end - len, other.end))
            }
        }
        // Replicate a random assigned node's range (shrunk to fit).
        _ => {
            let assigned: Vec<(NodeId, LayerRange)> = placement.iter().collect();
            if assigned.is_empty() {
                return Some(LayerRange::new(0, max_layers));
            }
            let (_, other) = assigned[rng.gen_range(0..assigned.len())];
            let len = max_layers.min(other.len());
            Some(LayerRange::new(other.start, other.start + len))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::heuristics;
    use crate::scheduling::IdleClusterState;
    use helix_cluster::ClusterSpec;

    fn two_model_profiles() -> Vec<ClusterProfile> {
        fleet_profiles(
            &ClusterSpec::single_cluster_24(),
            &[ModelConfig::llama_30b(), ModelConfig::llama_13b()],
        )
    }

    fn quick_options() -> FleetAnnealingOptions {
        FleetAnnealingOptions {
            iterations: 400,
            ..Default::default()
        }
    }

    #[test]
    fn two_model_fleet_plans_end_to_end() {
        let profiles = two_model_profiles();
        let planner = FleetAnnealingPlanner::new(&profiles).with_options(quick_options());
        let (placement, flows) = planner.solve().unwrap();
        assert_eq!(placement.num_models(), 2);
        assert!(flows.iter().all(|&f| f > 0.0), "flows {flows:?}");
        placement.validate(&profiles).unwrap();
        let fleet = FleetTopology::plan(&profiles, &placement, true).unwrap();
        assert_eq!(fleet.num_models(), 2);
        assert!(fleet.total_flow_value() > 0.0);
        // The planner partitions nodes, so every share is exactly 1.0.
        for m in 0..2 {
            for node in profiles[0].cluster().node_ids() {
                assert_eq!(fleet.compute_share(ModelId(m), node), 1.0);
            }
        }
        // Per-model schedulers produce pipelines tagged with their model.
        let mut scheduler = FleetScheduler::iwrr(&fleet).unwrap();
        assert_eq!(scheduler.num_models(), 2);
        let state = IdleClusterState;
        for (m, profile) in profiles.iter().enumerate() {
            let pipeline = scheduler.schedule(ModelId(m), &state).unwrap();
            assert_eq!(pipeline.model, ModelId(m));
            assert!(pipeline.covers_model(profile.model().num_layers));
            // Every stage runs on a node owned by this model.
            for stage in &pipeline.stages {
                assert!(placement.placements()[m].range(stage.node).is_some());
            }
        }
        assert_eq!(scheduler.kind(ModelId(0)), Some(SchedulerKind::HelixIwrr));
        assert_eq!(scheduler.kind(ModelId(7)), None);
    }

    #[test]
    fn fleet_planner_is_deterministic_per_seed() {
        let profiles = two_model_profiles();
        let planner = FleetAnnealingPlanner::new(&profiles).with_options(quick_options());
        let (p1, f1) = planner.solve().unwrap();
        let (p2, f2) = planner.solve().unwrap();
        assert_eq!(p1, p2);
        assert_eq!(f1, f2);
    }

    #[test]
    fn single_model_fleet_delegates_to_the_single_model_planner() {
        let profiles = fleet_profiles(
            &ClusterSpec::solver_quality_10(),
            &[ModelConfig::llama_30b()],
        );
        let options = quick_options();
        let planner = FleetAnnealingPlanner::new(&profiles).with_options(options.clone());
        let (placement, flows) = planner.solve().unwrap();
        let single = crate::placement::refine::FlowAnnealingPlanner::new(&profiles[0])
            .with_options(crate::placement::refine::AnnealingOptions {
                iterations: options.iterations,
                initial_temperature: options.initial_temperature,
                cooling: options.cooling,
                seed: options.seed,
                partial_inference: options.partial_inference,
                prune_degree: options.prune_degree,
                warm_start: true,
            });
        let (expected_placement, expected_value) = single.solve().unwrap();
        assert_eq!(placement.placements()[0], expected_placement);
        assert_eq!(flows, vec![expected_value]);
    }

    #[test]
    fn overlapping_tenants_split_compute_and_kv() {
        // Two identical models sharing every node 50/50.
        let cluster = ClusterSpec::solver_quality_10();
        let profiles = fleet_profiles(
            &cluster,
            &[ModelConfig::llama_13b(), ModelConfig::llama_13b()],
        );
        // A half-size chain placement both models share node-for-node.
        let mut placement = ModelPlacement::empty(cluster.num_nodes());
        let num_layers = profiles[0].model().num_layers;
        let mut start = 0usize;
        for id in cluster.node_ids() {
            if start >= num_layers {
                break;
            }
            let take = (profiles[0].node_profile(id).max_layers / 2).min(num_layers - start);
            if take == 0 {
                continue;
            }
            placement.assign(id, LayerRange::new(start, start + take));
            start += take;
        }
        assert!(
            placement.has_complete_pipeline(num_layers),
            "test placement does not cover the model"
        );
        let fleet_placement = FleetPlacement::new(vec![placement.clone(), placement.clone()]);
        fleet_placement.validate(&profiles).unwrap();
        let fleet = FleetTopology::plan(&profiles, &fleet_placement, true).unwrap();
        let solo = Topology::plan(&profiles[0], &placement, true).unwrap();
        for m in 0..2 {
            let topo = fleet.model(ModelId(m)).unwrap();
            // Equal tenants halve each node's capacity exactly.
            for node in topo.nodes() {
                let solo_node = solo.node(node.node).unwrap();
                assert!((node.capacity - solo_node.capacity * 0.5).abs() < 1e-9);
                assert!(node.kv_capacity_tokens < solo_node.kv_capacity_tokens);
                assert_eq!(fleet.compute_share(ModelId(m), node.node), 0.5);
            }
            assert!(topo.flow_value() > 0.0);
            assert!(topo.flow_value() < solo.flow_value());
        }
    }

    /// A half-size chain placement both models of `profiles` can share
    /// node-for-node (each node keeps half its weight budget free).
    fn half_chain_placement(profiles: &[ClusterProfile]) -> ModelPlacement {
        let cluster = profiles[0].cluster();
        let mut placement = ModelPlacement::empty(cluster.num_nodes());
        let num_layers = profiles[0].model().num_layers;
        let mut start = 0usize;
        for id in cluster.node_ids() {
            if start >= num_layers {
                break;
            }
            let take = (profiles[0].node_profile(id).max_layers / 2).min(num_layers - start);
            if take == 0 {
                continue;
            }
            placement.assign(id, LayerRange::new(start, start + take));
            start += take;
        }
        assert!(placement.has_complete_pipeline(num_layers));
        placement
    }

    #[test]
    fn shared_links_are_split_by_flow_shares_and_sole_tenant_links_are_not() {
        let cluster = ClusterSpec::solver_quality_10();
        let profiles = fleet_profiles(
            &cluster,
            &[ModelConfig::llama_13b(), ModelConfig::llama_13b()],
        );
        let placement = half_chain_placement(&profiles);
        let fleet_placement = FleetPlacement::new(vec![placement.clone(), placement.clone()]);
        let fleet = FleetTopology::plan(&profiles, &fleet_placement, true).unwrap();
        // Two identical tenants share every surviving link 50/50 (identical
        // pass-1 solves ⇒ identical flows ⇒ equal shares).
        let shared: Vec<(NodeId, NodeId)> = fleet
            .model(ModelId(0))
            .unwrap()
            .links()
            .iter()
            .filter_map(|l| match (l.from, l.to) {
                (Endpoint::Node(a), Endpoint::Node(b)) => Some((a, b)),
                _ => None,
            })
            .collect();
        assert!(!shared.is_empty(), "the chain uses node→node links");
        for (a, b) in &shared {
            let s0 = fleet.link_share(ModelId(0), *a, *b);
            let s1 = fleet.link_share(ModelId(1), *a, *b);
            assert!(
                (s0 + s1 - 1.0).abs() < 1e-9,
                "link {a:?}→{b:?} shares {s0}+{s1} must cover the link"
            );
            assert_eq!(s0, s1, "identical tenants split evenly");
        }
        // Splitting shared links can only reduce (or keep) each model's flow
        // versus the optimistic shared-capacity plan.
        let solo = Topology::plan(&profiles[0], &placement, true).unwrap();
        assert!(fleet.model(ModelId(0)).unwrap().flow_value() < solo.flow_value());

        // A disjoint two-model fleet has no shared link: every share is 1.0
        // and the planned topologies are bit-identical to the unsplit path.
        let profiles24 = two_model_profiles();
        let planner = FleetAnnealingPlanner::new(&profiles24).with_options(quick_options());
        let (disjoint, _) = planner.solve().unwrap();
        let fleet24 = FleetTopology::plan(&profiles24, &disjoint, true).unwrap();
        for m in 0..2 {
            for a in profiles24[0].cluster().node_ids() {
                for b in profiles24[0].cluster().node_ids() {
                    assert_eq!(fleet24.link_share(ModelId(m), a, b), 1.0);
                }
            }
        }
    }

    #[test]
    fn replan_with_observations_reprices_only_the_touched_model() {
        let profiles = two_model_profiles();
        let planner = FleetAnnealingPlanner::new(&profiles).with_options(quick_options());
        let (placement, _) = planner.solve().unwrap();
        let mut fleet = FleetTopology::plan(&profiles, &placement, true).unwrap();
        let before: Vec<f64> = fleet
            .topologies()
            .iter()
            .map(Topology::flow_value)
            .collect();

        // Slow one of model 0's nodes to half speed.
        let slow = placement.placements()[0].iter().next().unwrap().0;
        let mut observed = NodeObservations::new();
        observed.record(slow, ModelId(0), 100.0, 0.5, 0.9);
        let outcome = fleet.replan(&PlacementDelta::new(), &observed).unwrap();
        assert_eq!(outcome.affected, vec![ModelId(0)]);
        assert_eq!(outcome.warm_flow_values.len(), 1);
        assert_eq!(fleet.compute_share(ModelId(0), slow), 0.5);
        assert!(fleet.model(ModelId(0)).unwrap().flow_value() <= before[0]);
        // Model 1 is untouched: its topology was not re-solved.
        assert_eq!(fleet.model(ModelId(1)).unwrap().flow_value(), before[1]);
        assert!(fleet.standing_warm_solves(ModelId(0)).is_some());
        assert_eq!(fleet.standing_warm_solves(ModelId(1)), None);

        // The warm value tracks the materialised topology's value.
        let warm = outcome.warm_flow_values[0];
        let cold = fleet.model(ModelId(0)).unwrap().flow_value();
        assert!(
            (warm - cold).abs() <= helix_maxflow::FLOW_EPS * (1.0 + cold),
            "warm {warm} vs cold {cold}"
        );

        // Bit-identical to a from-scratch plan under the same observations.
        let scratch = FleetTopology::plan_observed(&profiles, &placement, true, &observed).unwrap();
        for m in 0..2 {
            assert_eq!(
                fleet.model(ModelId(m)).unwrap().flow_value(),
                scratch.model(ModelId(m)).unwrap().flow_value()
            );
        }

        // Clearing the observation re-prices the node back to full speed.
        let outcome = fleet
            .replan(&PlacementDelta::new(), &NodeObservations::new())
            .unwrap();
        assert_eq!(outcome.affected, vec![ModelId(0)]);
        assert_eq!(fleet.compute_share(ModelId(0), slow), 1.0);
        assert_eq!(fleet.model(ModelId(0)).unwrap().flow_value(), before[0]);
    }

    #[test]
    fn replan_rejects_unknown_models_and_invalid_placements_without_mutating() {
        let profiles = two_model_profiles();
        let planner = FleetAnnealingPlanner::new(&profiles).with_options(quick_options());
        let (placement, _) = planner.solve().unwrap();
        let mut fleet = FleetTopology::plan(&profiles, &placement, true).unwrap();
        let before: Vec<f64> = fleet
            .topologies()
            .iter()
            .map(Topology::flow_value)
            .collect();

        let bad_model = PlacementDelta::new().remove(ModelId(9), NodeId(0));
        assert!(matches!(
            fleet.replan(&bad_model, &NodeObservations::new()),
            Err(HelixError::UnknownModel { .. })
        ));

        // Dropping every node of model 0 leaves no complete pipeline.
        let mut wipe = PlacementDelta::new();
        for (node, _) in placement.placements()[0].iter() {
            wipe = wipe.remove(ModelId(0), node);
        }
        assert!(fleet.replan(&wipe, &NodeObservations::new()).is_err());
        let after: Vec<f64> = fleet
            .topologies()
            .iter()
            .map(Topology::flow_value)
            .collect();
        assert_eq!(before, after, "failed re-plans leave the plan unchanged");
    }

    #[test]
    fn planner_observations_reprice_the_search() {
        let profiles = two_model_profiles();
        let planner = FleetAnnealingPlanner::new(&profiles).with_options(quick_options());
        let (placement, analytic_flows) = planner.solve().unwrap();

        // Evaluating the same placement under a slowdown can only lose
        // throughput, and evaluating under no observations is unchanged.
        let slow = placement.placements()[0].iter().next().unwrap().0;
        let mut observed = NodeObservations::new();
        observed.record(slow, ModelId(0), 100.0, 0.25, 0.9);
        let degraded = FleetAnnealingPlanner::new(&profiles)
            .with_options(quick_options())
            .with_observations(&observed)
            .evaluate(&placement);
        assert!(degraded[0] <= analytic_flows[0]);
        let empty = NodeObservations::new();
        let unchanged = FleetAnnealingPlanner::new(&profiles)
            .with_options(quick_options())
            .with_observations(&empty)
            .solve()
            .unwrap();
        assert_eq!(unchanged.0, placement);
        assert_eq!(unchanged.1, analytic_flows);

        // A full observed solve still finds a feasible fleet placement.
        let (observed_placement, observed_flows) = FleetAnnealingPlanner::new(&profiles)
            .with_options(quick_options())
            .with_observations(&observed)
            .solve()
            .unwrap();
        observed_placement.validate(&profiles).unwrap();
        assert!(observed_flows.iter().all(|&f| f > 0.0));
    }

    #[test]
    fn fleet_vram_overflow_is_rejected() {
        let cluster = ClusterSpec::solver_quality_10();
        let profiles = fleet_profiles(
            &cluster,
            &[ModelConfig::llama_30b(), ModelConfig::llama_30b()],
        );
        // Both models max out every node: individually valid, jointly too fat.
        let placement = heuristics::petals_placement(&profiles[0]).unwrap();
        let fleet = FleetPlacement::new(vec![placement.clone(), placement]);
        assert!(matches!(
            fleet.validate(&profiles),
            Err(HelixError::FleetVramOverflow { .. })
        ));
    }

    #[test]
    fn unknown_model_is_reported() {
        let profiles = fleet_profiles(
            &ClusterSpec::solver_quality_10(),
            &[ModelConfig::llama_30b()],
        );
        let placement = heuristics::petals_placement(&profiles[0]).unwrap();
        let fleet =
            FleetTopology::plan(&profiles, &FleetPlacement::single(placement), true).unwrap();
        let mut scheduler = FleetScheduler::iwrr(&fleet).unwrap();
        let err = scheduler
            .schedule(ModelId(3), &IdleClusterState)
            .unwrap_err();
        assert!(matches!(err, HelixError::UnknownModel { .. }));
        assert!(err.to_string().contains("model3"));
    }
}
