//! Figure 10: request-scheduling deep dive — offline serving of LLaMA 70B on
//! the Helix placement, comparing the IWRR scheduler against Swarm, random
//! and shortest-queue-first scheduling, plus the congestion case study on the
//! geo-distributed cluster (Fig. 10b).
//!
//! ```text
//! cargo run --release -p helix-bench --bin fig10_scheduling_deepdive [--full] [--case-study]
//! ```

use helix_bench::{run_with_scheduler, ExperimentReport, ExperimentScale};
use helix_cluster::{ClusterProfile, ClusterSpec, ModelConfig, NodeId};
use helix_core::{AnnealingOptions, FlowAnnealingPlanner, SchedulerKind};

fn main() {
    let scale = ExperimentScale::from_args();
    let case_study = std::env::args().any(|a| a == "--case-study");
    let mut data = Vec::new();
    for (cluster_name, cluster, kinds) in [
        (
            "single cluster",
            ClusterSpec::single_cluster_24(),
            vec![
                SchedulerKind::HelixIwrr,
                SchedulerKind::Swarm,
                SchedulerKind::Random,
            ],
        ),
        (
            "geo-distributed",
            ClusterSpec::geo_distributed_24(),
            vec![
                SchedulerKind::HelixIwrr,
                SchedulerKind::Swarm,
                SchedulerKind::Random,
                SchedulerKind::ShortestQueue,
            ],
        ),
    ] {
        let profile = ClusterProfile::analytic(cluster, ModelConfig::llama2_70b());
        // All schedulers run on the placement found by Helix (paper isolates scheduling).
        let (placement, _) = FlowAnnealingPlanner::new(&profile)
            .with_options(AnnealingOptions {
                iterations: scale.planner_iterations(),
                ..Default::default()
            })
            .solve()
            .expect("helix placement");
        println!("\n=== Figure 10a: scheduling deep dive, LLaMA 70B, {cluster_name} ===");
        println!(
            "{:<16} {:>14} {:>14} {:>18}",
            "scheduler", "sim tokens/s", "prompt avg s", "worst link wait s"
        );
        for kind in kinds {
            let Some((metrics, _)) = run_with_scheduler(&profile, &placement, kind, scale, 101)
            else {
                continue;
            };
            let worst = metrics
                .most_congested_links(1)
                .first()
                .map(|l| l.mean_queue_delay)
                .unwrap_or(0.0);
            println!(
                "{:<16} {:>14.1} {:>14.2} {:>18.3}",
                kind.to_string(),
                metrics.decode_throughput(),
                metrics.avg_prompt_latency(),
                worst
            );
            if case_study && cluster_name == "geo-distributed" {
                println!("  most congested links under {kind}:");
                for l in metrics.most_congested_links(3) {
                    let fmt = |e: Option<NodeId>| match e {
                        None => "coordinator".to_string(),
                        Some(n) => profile.cluster().node(n).name.clone(),
                    };
                    println!(
                        "    {:<12} -> {:<12} mean wait {:.3}s max {:.3}s ({} transfers)",
                        fmt(l.from),
                        fmt(l.to),
                        l.mean_queue_delay,
                        l.max_queue_delay,
                        l.transfers
                    );
                }
            }
            data.push(serde_json::json!({
                "cluster": cluster_name,
                "scheduler": kind.to_string(),
                "decode_throughput": metrics.decode_throughput(),
                "prompt_latency_mean": metrics.avg_prompt_latency(),
                "decode_latency_mean": metrics.avg_decode_latency(),
                "worst_link_mean_wait": worst,
            }));
        }
    }
    let report = ExperimentReport::new(
        "fig10_scheduling_deepdive",
        "Figure 10",
        scale,
        serde_json::json!({ "rows": data }),
    );
    if let Ok(path) = report.write() {
        println!("\nwrote {}", path.display());
    }
}
