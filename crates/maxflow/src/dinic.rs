//! Dinic's blocking-flow maximum-flow algorithm.
//!
//! Used as an independent cross-check of the preflow-push implementation and
//! as the default algorithm for very sparse graphs where its `O(E * V^2)`
//! bound with unit-ish capacities behaves well.

use crate::graph::{ArenaEdge, FlowNetwork, FlowResult, NodeId, UndoJournal};
use crate::FLOW_EPS;
use std::collections::VecDeque;

/// Computes the maximum flow on `network` from `source` to `sink` with
/// Dinic's algorithm.
///
/// # Panics
///
/// Panics if `source == sink` or either node is not part of `network`.
pub fn dinic(network: &FlowNetwork, source: NodeId, sink: NodeId) -> FlowResult {
    network.max_flow_with(source, sink, crate::MaxFlowAlgorithm::Dinic)
}

/// Core Dinic routine operating on the shared arena representation.
///
/// Warm re-solves over standing networks (see
/// `FlowNetwork::resolve_from_residual`) keep invalid connections as edges of
/// capacity zero, so those networks are dominated by permanently dead edge
/// pairs (`residual + reverse residual == 0`, which no push can ever change).
/// A flat CSR adjacency over the *live* pairs is built once per solve and
/// every BFS round and DFS walk scans only it — isolated rejected-move
/// evaluations on sparse placements stop paying for dead edges.
pub(crate) fn run(
    edges: &mut [ArenaEdge],
    adjacency: &[Vec<usize>],
    n: usize,
    source: usize,
    sink: usize,
    journal: &mut UndoJournal,
) -> f64 {
    // CSR of live edges: an edge pair is dead for the whole solve when both
    // residuals are (numerically) zero — pushes conserve the pair total.
    let mut live_start = Vec::with_capacity(n + 1);
    let mut live: Vec<usize> = Vec::new();
    live_start.push(0);
    for adj in adjacency.iter() {
        for &eid in adj {
            if edges[eid].residual > FLOW_EPS || edges[eid ^ 1].residual > FLOW_EPS {
                live.push(eid);
            }
        }
        live_start.push(live.len());
    }

    let mut total = 0.0f64;
    let mut level = vec![-1i32; n];
    let mut iter = vec![0usize; n];

    loop {
        // BFS over live edges to build the level graph.
        for l in level.iter_mut() {
            *l = -1;
        }
        level[source] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            for &eid in &live[live_start[u]..live_start[u + 1]] {
                let v = edges[eid].to;
                if level[v] < 0 && edges[eid].residual > FLOW_EPS {
                    level[v] = level[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        if level[sink] < 0 {
            break;
        }
        for it in iter.iter_mut() {
            *it = 0;
        }
        // Repeatedly find augmenting paths in the level graph (blocking flow).
        loop {
            let pushed = dfs(
                edges,
                &live,
                &live_start,
                &level,
                &mut iter,
                source,
                sink,
                f64::INFINITY,
                journal,
            );
            if pushed <= FLOW_EPS {
                break;
            }
            total += pushed;
        }
    }
    total
}

/// Iterative DFS would avoid recursion depth issues, but Helix graphs are at
/// most a few hundred nodes deep, so a recursive implementation is clearer.
#[allow(clippy::too_many_arguments)]
fn dfs(
    edges: &mut [ArenaEdge],
    live: &[usize],
    live_start: &[usize],
    level: &[i32],
    iter: &mut [usize],
    u: usize,
    sink: usize,
    limit: f64,
    journal: &mut UndoJournal,
) -> f64 {
    if u == sink {
        return limit;
    }
    let row = &live[live_start[u]..live_start[u + 1]];
    while iter[u] < row.len() {
        let eid = row[iter[u]];
        let v = edges[eid].to;
        if edges[eid].residual > FLOW_EPS && level[v] == level[u] + 1 {
            let pushed = dfs(
                edges,
                live,
                live_start,
                level,
                iter,
                v,
                sink,
                limit.min(edges[eid].residual),
                journal,
            );
            if pushed > FLOW_EPS {
                journal.touch_pair(eid, edges);
                edges[eid].residual -= pushed;
                edges[eid ^ 1].residual += pushed;
                return pushed;
            }
        }
        iter[u] += 1;
    }
    0.0
}

#[cfg(test)]
mod tests {
    use crate::{FlowNetwork, MaxFlowAlgorithm};

    #[test]
    fn classic_clrs_example() {
        // The flow network from CLRS figure 26.1 (max flow 23).
        let mut net = FlowNetwork::new();
        let s = net.add_node("s");
        let v1 = net.add_node("v1");
        let v2 = net.add_node("v2");
        let v3 = net.add_node("v3");
        let v4 = net.add_node("v4");
        let t = net.add_node("t");
        net.add_edge(s, v1, 16.0);
        net.add_edge(s, v2, 13.0);
        net.add_edge(v1, v3, 12.0);
        net.add_edge(v2, v1, 4.0);
        net.add_edge(v2, v4, 14.0);
        net.add_edge(v3, v2, 9.0);
        net.add_edge(v3, t, 20.0);
        net.add_edge(v4, v3, 7.0);
        net.add_edge(v4, t, 4.0);
        let r = net.max_flow_with(s, t, MaxFlowAlgorithm::Dinic);
        assert!((r.value - 23.0).abs() < 1e-9);
        net.validate_flow(&r.edge_flows, s, t).unwrap();
    }

    #[test]
    fn multi_path_network() {
        let mut net = FlowNetwork::new();
        let s = net.add_node("s");
        let t = net.add_node("t");
        let mids: Vec<_> = (0..10).map(|i| net.add_node(format!("m{i}"))).collect();
        for (i, &m) in mids.iter().enumerate() {
            net.add_edge(s, m, 1.0 + i as f64 * 0.1);
            net.add_edge(m, t, 2.0);
        }
        let expected: f64 = (0..10).map(|i| 1.0 + i as f64 * 0.1).sum();
        let r = net.max_flow_with(s, t, MaxFlowAlgorithm::Dinic);
        assert!((r.value - expected).abs() < 1e-9);
    }

    #[test]
    fn zero_when_sink_unreachable() {
        let mut net = FlowNetwork::new();
        let s = net.add_node("s");
        let a = net.add_node("a");
        let t = net.add_node("t");
        net.add_edge(t, a, 5.0);
        net.add_edge(a, s, 5.0);
        let r = net.max_flow_with(s, t, MaxFlowAlgorithm::Dinic);
        assert_eq!(r.value, 0.0);
    }
}
