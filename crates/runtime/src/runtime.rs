//! The serving runtime: wires the coordinator, the workers and the network
//! fabric together.
//!
//! Construction goes through [`ServingBuilder`](crate::ServingBuilder),
//! which wires a [`Wired`] data plane and returns a live
//! [`ServingSession`](crate::ServingSession).  (The legacy one-shot
//! `ServingRuntime` shim and its deprecated constructors were removed after
//! one release, as promised.)

use crate::clock::VirtualClock;
use crate::coordinator::{Coordinator, CoordinatorArtifacts, CoordinatorMsg, CoordinatorSpec};
use crate::error::RuntimeError;
use crate::fabric::{self, FabricSpec, LinkTrafficMap};
use crate::message::Envelope;
use crate::metrics::{LinkReport, NodeReport, RequestOutcome, RuntimeReport};
use crate::registry::{WorkerRegistry, WorkerSpawner};
use helix_cluster::ModelId;
use helix_core::exec_model::{DEFAULT_TOKENS_PER_PAGE, KV_OVERFLOW_PENALTY};
use helix_core::{FleetTopology, HelixError, KvCacheEstimator, ReplanPolicy, Scheduler};
use minirt::channel::{unbounded, Sender};
use std::sync::Arc;
use std::time::Duration;

/// Which execution model the workers use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionKind {
    /// Roofline cost model derived from the node profiles (the default).
    #[default]
    Analytic,
    /// Batches complete instantly; useful for functional tests.
    Instant,
}

/// Configuration of a serving run.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Wall-clock seconds per virtual second (smaller = faster run).
    pub wall_per_virtual: f64,
    /// KV page size in tokens.
    pub tokens_per_page: usize,
    /// Batch slow-down factor when a KV pool overflows.
    pub kv_overflow_penalty: f64,
    /// Hard wall-clock budget for one batch `serve` call; on the live session
    /// surface it bounds drains and completion waits, not idle time.
    pub max_wall: Duration,
    /// Worker execution model.
    pub execution: ExecutionKind,
    /// Initial average output length used by the KV estimator (§5.2); the
    /// Azure Conversation trace averages 232 output tokens.
    pub initial_avg_output_tokens: f64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            wall_per_virtual: 0.002,
            tokens_per_page: DEFAULT_TOKENS_PER_PAGE,
            kv_overflow_penalty: KV_OVERFLOW_PENALTY,
            max_wall: Duration::from_secs(120),
            execution: ExecutionKind::Analytic,
            initial_avg_output_tokens: 232.0,
        }
    }
}

impl RuntimeConfig {
    /// A configuration suited to fast functional tests: instant execution and
    /// an aggressive virtual-time speed-up.
    pub fn fast_test() -> Self {
        RuntimeConfig {
            wall_per_virtual: 0.0002,
            execution: ExecutionKind::Instant,
            max_wall: Duration::from_secs(30),
            ..RuntimeConfig::default()
        }
    }
}

/// The wired data plane of one serving system: the task executor, clock,
/// coordinator, worker registry, fabric and traffic counters.  The
/// [`ServingSession`](crate::ServingSession) front door drives one of these.
///
/// Workers and the fabric are *tasks* on `executor`, not threads: the batch
/// path drives the whole plane inline on the calling thread via `block_on`,
/// and the live path drives it on one dedicated data-plane thread — either
/// way the thread count is O(1) in the fleet size.
pub(crate) struct Wired {
    pub executor: minirt::Executor,
    pub clock: VirtualClock,
    /// Taken when the batch loop runs inline or the live loop takes the
    /// coordinator onto the data-plane thread.
    pub coordinator: Option<Coordinator>,
    pub registry: Arc<WorkerRegistry>,
    pub ingress_tx: Option<Sender<Envelope>>,
    /// Clone of the coordinator's inbound sender; the session pings it after
    /// queueing a control message so the coordinator reacts immediately.
    pub wake_tx: Sender<CoordinatorMsg>,
    pub traffic: LinkTrafficMap,
    pub max_wall: Duration,
}

impl Wired {
    /// Builds the full data plane for a planned fleet: one worker task per
    /// (assigned node, model) pair — each with its own partition of the
    /// node's KV pool — one KV estimator per model, the network fabric
    /// task, and a coordinator that routes every request to its model's
    /// scheduler.
    pub(crate) fn build(
        fleet: FleetTopology,
        schedulers: Vec<Box<dyn Scheduler>>,
        config: RuntimeConfig,
        policy: Option<ReplanPolicy>,
    ) -> Result<Self, RuntimeError> {
        if fleet.num_models() != schedulers.len() {
            return Err(RuntimeError::Scheduling(
                HelixError::SchedulerCountMismatch {
                    models: fleet.num_models(),
                    schedulers: schedulers.len(),
                },
            ));
        }
        for topology in fleet.topologies() {
            topology
                .placement()
                .validate(topology.profile())
                .map_err(RuntimeError::Scheduling)?;
        }
        let clock = VirtualClock::new(config.wall_per_virtual);
        // Link bandwidth/latency are model-independent; the fabric uses the
        // first model's profile.
        let profile_arc = Arc::new(fleet.topologies()[0].profile().clone());

        let executor = minirt::Executor::new();
        let registry = Arc::new(WorkerRegistry::new());
        let (ingress_tx, ingress_rx) = unbounded::<Envelope>();
        let (coordinator_tx, coordinator_rx) = unbounded();

        let traffic = fabric::spawn_fabric(
            &executor,
            FabricSpec {
                profile: profile_arc,
                clock,
                registry: Arc::clone(&registry),
                coordinator_tx: coordinator_tx.clone(),
            },
            ingress_rx,
        );

        let spawner = WorkerSpawner {
            executor: executor.clone(),
            clock,
            fabric: ingress_tx.clone(),
            execution: config.execution,
            tokens_per_page: config.tokens_per_page,
            kv_overflow_penalty: config.kv_overflow_penalty,
            registry: Arc::clone(&registry),
        };

        let mut estimators = Vec::with_capacity(fleet.num_models());
        for (m, topology) in fleet.topologies().iter().enumerate() {
            let model = ModelId(m);
            // Workers execute at the analytic contention split (identical to
            // the planning profile when the fleet was planned without
            // observations); measured speed factors re-price planning only.
            let contention = fleet.contention_profile(model);
            let mut estimator =
                KvCacheEstimator::new(topology.profile(), config.initial_avg_output_tokens);
            for planned in topology.nodes() {
                estimator.set_capacity(planned.node, planned.kv_capacity_tokens);
                spawner.spawn(
                    &contention,
                    planned.node,
                    model,
                    &planned.name,
                    planned.layers.len(),
                    planned.kv_capacity_tokens,
                );
            }
            estimators.push(estimator);
        }

        let coordinator = Coordinator::new(CoordinatorSpec {
            schedulers,
            estimators,
            clock,
            inbound: coordinator_rx,
            fabric: ingress_tx.clone(),
            registry: Arc::clone(&registry),
            spawner,
            max_wall: config.max_wall,
            fleet,
            policy,
        });

        Ok(Wired {
            executor,
            clock,
            coordinator: Some(coordinator),
            registry,
            ingress_tx: Some(ingress_tx),
            wake_tx: coordinator_tx,
            traffic,
            max_wall: config.max_wall,
        })
    }

    /// Shuts the whole data plane down (workers, fabric) and assembles the
    /// final report from the run's outcomes and the shared counters.  Every
    /// task is run to completion — even when the run ended in an error — by
    /// draining the executor on the calling thread: workers process their
    /// shutdowns and drop their fabric senders, the fabric flushes its
    /// in-flight deliveries and exits on ingress disconnect.
    pub(crate) fn shutdown_and_report(
        mut self,
        outcome: Result<Vec<RequestOutcome>, RuntimeError>,
        artifacts: CoordinatorArtifacts,
    ) -> Result<RuntimeReport, RuntimeError> {
        self.registry.shutdown_all();
        drop(self.coordinator.take());
        drop(self.ingress_tx.take());
        self.executor.drain();

        let outcomes = outcome?;
        let makespan = {
            let first_arrival = outcomes
                .iter()
                .map(|o| o.arrival)
                .fold(f64::INFINITY, f64::min);
            let first_arrival = if first_arrival.is_finite() {
                first_arrival
            } else {
                0.0
            };
            let last_completion = outcomes
                .iter()
                .map(|o| o.completed_at)
                .fold(0.0_f64, f64::max);
            (last_completion - first_arrival).max(0.0)
        };

        let nodes = self
            .registry
            .report_rows()
            .into_iter()
            .map(|((node, model), meta, stats)| NodeReport {
                node,
                model,
                name: meta.name,
                layers_held: meta.layers,
                busy_secs: stats.busy_secs,
                batches: stats.batches,
                prompt_tokens: stats.prompt_tokens,
                decode_tokens: stats.decode_tokens,
                kv_peak_utilization: stats.kv_peak_utilization,
                kv_rejections: stats.kv_rejections,
            })
            .collect();

        let mut links: Vec<LinkReport> = self
            .traffic
            .lock()
            .iter()
            .map(|(&(from, to), traffic)| LinkReport::new(from, to, traffic))
            .collect();
        links.sort_by_key(|l| (l.from, l.to));

        Ok(RuntimeReport {
            outcomes,
            makespan,
            wall_seconds: self.clock.wall_elapsed().as_secs_f64(),
            nodes,
            links,
            replans: artifacts.replans,
            kv_transfers: artifacts.kv_transfers,
            prefix: artifacts.prefix,
            failovers: artifacts.failovers,
            replication: artifacts.replication,
        })
    }
}
