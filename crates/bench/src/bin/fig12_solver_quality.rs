//! Figure 12: quality of the best incumbent and best bound found by the MILP
//! solver as a function of solving time, for LLaMA 30B on a 4×L4 + 6×T4
//! cluster.  High-quality solutions appear early; proving optimality takes
//! much longer — justifying early stopping.
//!
//! ```text
//! cargo run --release -p helix-bench --bin fig12_solver_quality [--full]
//! ```

use helix_bench::{ExperimentReport, ExperimentScale};
use helix_cluster::{ClusterProfile, ClusterSpec, ModelConfig};
use helix_core::MilpPlacementPlanner;
use std::time::Duration;

fn main() {
    let scale = ExperimentScale::from_args();
    let budget = match scale {
        ExperimentScale::Quick => Duration::from_secs(60),
        ExperimentScale::Full => Duration::from_secs(900),
    };
    let profile =
        ClusterProfile::analytic(ClusterSpec::solver_quality_10(), ModelConfig::llama_30b());
    println!("=== Figure 12: incumbent / bound vs MILP solving time ===");
    println!("cluster: 4xL4 + 6xT4, model LLaMA 30B, budget {:?}", budget);
    println!(
        "throughput upper bound: {:.0} tokens/s",
        profile.throughput_upper_bound()
    );

    // Disable the early stop so the solver keeps tightening the bound.
    let mut options = MilpPlacementPlanner::new(&profile)
        .prune_to_degree(6)
        .time_limit(budget)
        .record_events()
        .options()
        .clone();
    options.early_stop_fraction = None;
    let mut planner = MilpPlacementPlanner::with_options(&profile, options).record_events();
    match planner.solve() {
        Ok((_, report)) => {
            println!(
                "\n{:>10} {:>12} {:>14} {:>14}",
                "time (s)", "nodes", "incumbent t/s", "best bound t/s"
            );
            for e in &report.events {
                println!(
                    "{:>10.2} {:>12} {:>14} {:>14.0}",
                    e.elapsed_seconds,
                    e.nodes_explored,
                    e.incumbent
                        .map(|v| format!("{v:.0}"))
                        .unwrap_or_else(|| "-".into()),
                    e.best_bound
                );
            }
            println!(
                "\nfinal objective {:.0} tokens/s, bound {:.0}, gap {:.1}%, {} nodes in {:.1}s",
                report.objective_tokens_per_sec,
                report.best_bound,
                (report.best_bound - report.objective_tokens_per_sec)
                    / report.objective_tokens_per_sec.max(1.0)
                    * 100.0,
                report.nodes_explored,
                report.solve_seconds
            );
            let out = ExperimentReport::new(
                "fig12_solver_quality",
                "Figure 12",
                scale,
                serde_json::json!({
                    "events": report.events,
                    "objective": report.objective_tokens_per_sec,
                    "best_bound": report.best_bound,
                    "upper_bound": profile.throughput_upper_bound(),
                }),
            );
            if let Ok(path) = out.write() {
                println!("wrote {}", path.display());
            }
        }
        Err(e) => println!("solver failed: {e}"),
    }
}
