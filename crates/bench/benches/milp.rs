//! Criterion micro-benchmarks for the LP/MILP solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use helix_milp::{solve_lp, MilpSolver, Model, ObjectiveSense, Sense, VarType};
use std::hint::black_box;

/// A knapsack MILP with `n` binary items.
fn knapsack(n: usize) -> Model {
    let mut m = Model::new(ObjectiveSense::Maximize);
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_binary(format!("x{i}"), 5.0 + (i % 7) as f64))
        .collect();
    let weights: Vec<_> = vars
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, 2.0 + (i % 5) as f64))
        .collect();
    let cap: f64 = weights.iter().map(|(_, w)| w).sum::<f64>() * 0.4;
    m.add_constraint("cap", weights, Sense::Le, cap);
    m
}

/// A transportation LP with `n` sources and `n` sinks.
fn transportation(n: usize) -> Model {
    let mut m = Model::new(ObjectiveSense::Minimize);
    let mut vars = vec![vec![]; n];
    for (i, row) in vars.iter_mut().enumerate() {
        for j in 0..n {
            let cost = ((i * 13 + j * 7) % 10 + 1) as f64;
            row.push(m.add_var(
                format!("x{i}_{j}"),
                VarType::Continuous,
                0.0,
                f64::INFINITY,
                cost,
            ));
        }
    }
    for (i, row) in vars.iter().enumerate() {
        let terms: Vec<_> = row.iter().map(|&v| (v, 1.0)).collect();
        m.add_constraint(
            format!("supply{i}"),
            terms,
            Sense::Le,
            10.0 + (i % 3) as f64,
        );
    }
    for j in 0..n {
        let terms: Vec<_> = vars.iter().map(|row| (row[j], 1.0)).collect();
        m.add_constraint(format!("demand{j}"), terms, Sense::Ge, 5.0 + (j % 4) as f64);
    }
    m
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_transportation");
    for n in [5usize, 10, 15] {
        let model = transportation(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &model, |b, m| {
            b.iter(|| black_box(solve_lp(m).unwrap()))
        });
    }
    group.finish();
}

fn bench_milp(c: &mut Criterion) {
    let mut group = c.benchmark_group("milp_knapsack");
    group.sample_size(10);
    for n in [8usize, 12, 16] {
        let model = knapsack(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &model, |b, m| {
            b.iter(|| black_box(MilpSolver::new().solve(m).unwrap().objective))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lp, bench_milp);
criterion_main!(benches);
