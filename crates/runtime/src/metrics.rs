//! Metrics reported by the prototype runtime.
//!
//! The report mirrors the metrics of the paper's evaluation (§6.2): decode
//! throughput for offline serving, and prompt/decode latency for online
//! serving, plus per-node utilisation and per-link traffic used by the
//! placement and scheduling case studies (Figs. 9b and 10b).

use crate::fabric::LinkTraffic;
use helix_cluster::{ModelId, NodeId};
use helix_core::{FailoverRecord, KvTransferRecord, PrefixStats, ReplanRecord, ReplicationStats};
use helix_workload::RequestId;
use serde::Serialize;

/// Summary statistics of a latency sample set, in virtual seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Largest sample.
    pub max: f64,
}

impl LatencySummary {
    /// Summarises a slice of latency samples.  Returns all zeros for an empty
    /// slice.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let percentile = |q: f64| {
            let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
            sorted[idx.min(sorted.len() - 1)]
        };
        LatencySummary {
            count: sorted.len(),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50: percentile(0.50),
            p95: percentile(0.95),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// The lifecycle record of one completed request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RequestOutcome {
    /// Request id.
    pub id: RequestId,
    /// The fleet model the request targeted.
    pub model: ModelId,
    /// Prompt length in tokens.
    pub prompt_tokens: usize,
    /// Output length in tokens.
    pub output_tokens: usize,
    /// Arrival time (virtual seconds).
    pub arrival: f64,
    /// Time the first output token was produced (end of the prompt phase).
    pub first_token_at: f64,
    /// Time the final output token was produced.
    pub completed_at: f64,
    /// Number of stages in the request's pipeline.
    pub pipeline_depth: usize,
}

impl RequestOutcome {
    /// Prompt latency: arrival to first token (the paper's "prompt latency").
    pub fn prompt_latency(&self) -> f64 {
        (self.first_token_at - self.arrival).max(0.0)
    }

    /// Mean decode latency per generated token after the first.
    pub fn decode_latency_per_token(&self) -> f64 {
        let decode_tokens = self.output_tokens.saturating_sub(1);
        if decode_tokens == 0 {
            return 0.0;
        }
        (self.completed_at - self.first_token_at).max(0.0) / decode_tokens as f64
    }
}

/// Per-node execution summary.
#[derive(Debug, Clone, Serialize)]
pub struct NodeReport {
    /// The compute node.
    pub node: NodeId,
    /// The fleet model this worker served (shared nodes report one entry per
    /// model).
    pub model: ModelId,
    /// Human-readable node name.
    pub name: String,
    /// Layers the node held for this model.
    pub layers_held: usize,
    /// Virtual seconds spent executing batches.
    pub busy_secs: f64,
    /// Batches executed.
    pub batches: u64,
    /// Prompt tokens processed.
    pub prompt_tokens: u64,
    /// Decode tokens processed.
    pub decode_tokens: u64,
    /// Highest KV-pool utilisation observed.
    pub kv_peak_utilization: f64,
    /// KV allocations rejected because the pool was full.
    pub kv_rejections: u64,
}

impl NodeReport {
    /// Fraction of the run the node spent busy.
    pub fn utilization(&self, makespan: f64) -> f64 {
        if makespan <= 0.0 {
            0.0
        } else {
            (self.busy_secs / makespan).min(1.0)
        }
    }
}

/// Per-link traffic summary (`None` endpoints denote the coordinator).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LinkReport {
    /// Sending endpoint.
    pub from: Option<NodeId>,
    /// Receiving endpoint.
    pub to: Option<NodeId>,
    /// Messages delivered.
    pub messages: u64,
    /// Payload bytes delivered.
    pub bytes: f64,
    /// Mean queueing delay per message (seconds).
    pub mean_queue_delay: f64,
    /// Largest queueing delay observed (seconds).
    pub max_queue_delay: f64,
}

impl LinkReport {
    pub(crate) fn new(from: Option<NodeId>, to: Option<NodeId>, traffic: &LinkTraffic) -> Self {
        LinkReport {
            from,
            to,
            messages: traffic.messages,
            bytes: traffic.bytes,
            mean_queue_delay: traffic.mean_queue_delay(),
            max_queue_delay: traffic.max_queue_delay,
        }
    }
}

/// The full report of one serving run.
#[derive(Debug, Clone, Serialize)]
pub struct RuntimeReport {
    /// Per-request lifecycle records, in completion order.
    pub outcomes: Vec<RequestOutcome>,
    /// Virtual time between the first arrival and the last completion.
    pub makespan: f64,
    /// Wall-clock seconds the run took.
    pub wall_seconds: f64,
    /// Per-node execution summaries.
    pub nodes: Vec<NodeReport>,
    /// Per-link traffic summaries.
    pub links: Vec<LinkReport>,
    /// Every online re-plan the coordinator applied, in order (empty for a
    /// statically planned run).
    pub replans: Vec<ReplanRecord>,
    /// Every KV hand-over a partial-layer migration performed, in completion
    /// order (freeze → transfer → re-route → resume, per transfer).
    pub kv_transfers: Vec<KvTransferRecord>,
    /// Prefix-sharing counters summed over all models (all zeros when no
    /// request carries a prefix tag).
    pub prefix: PrefixStats,
    /// One record per node fail-over the run handled: which in-flight
    /// requests promoted onto replicas, which aborted, and the token loss
    /// each path recomputed.
    pub failovers: Vec<FailoverRecord>,
    /// Replica traffic the run's replication policy trickled to standbys
    /// (all zeros when replication is disabled).
    pub replication: ReplicationStats,
}

impl RuntimeReport {
    /// Number of requests that completed.
    pub fn completed(&self) -> usize {
        self.outcomes.len()
    }

    /// Total decode tokens generated.
    pub fn decode_tokens(&self) -> u64 {
        self.outcomes.iter().map(|o| o.output_tokens as u64).sum()
    }

    /// Decode throughput in tokens per virtual second (the paper's offline
    /// serving metric).
    pub fn decode_throughput(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.decode_tokens() as f64 / self.makespan
    }

    /// Prompt latency summary across completed requests.
    pub fn prompt_latency(&self) -> LatencySummary {
        let samples: Vec<f64> = self
            .outcomes
            .iter()
            .map(RequestOutcome::prompt_latency)
            .collect();
        LatencySummary::from_samples(&samples)
    }

    /// Per-token decode latency summary across completed requests.
    pub fn decode_latency(&self) -> LatencySummary {
        let samples: Vec<f64> = self
            .outcomes
            .iter()
            .map(RequestOutcome::decode_latency_per_token)
            .collect();
        LatencySummary::from_samples(&samples)
    }

    /// The outcomes of one model's requests.
    pub fn outcomes_for(&self, model: ModelId) -> Vec<&RequestOutcome> {
        self.outcomes.iter().filter(|o| o.model == model).collect()
    }

    /// Decode tokens one model generated.
    pub fn decode_tokens_for(&self, model: ModelId) -> u64 {
        self.outcomes
            .iter()
            .filter(|o| o.model == model)
            .map(|o| o.output_tokens as u64)
            .sum()
    }

    /// Decode throughput of one model over the fleet makespan (tokens per
    /// virtual second).
    pub fn decode_throughput_for(&self, model: ModelId) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.decode_tokens_for(model) as f64 / self.makespan
    }

    /// Prompt latency summary of one model's requests.
    pub fn prompt_latency_for(&self, model: ModelId) -> LatencySummary {
        let samples: Vec<f64> = self
            .outcomes
            .iter()
            .filter(|o| o.model == model)
            .map(RequestOutcome::prompt_latency)
            .collect();
        LatencySummary::from_samples(&samples)
    }

    /// Per-token decode latency summary of one model's requests.
    pub fn decode_latency_for(&self, model: ModelId) -> LatencySummary {
        let samples: Vec<f64> = self
            .outcomes
            .iter()
            .filter(|o| o.model == model)
            .map(RequestOutcome::decode_latency_per_token)
            .collect();
        LatencySummary::from_samples(&samples)
    }

    /// The `n` links with the largest mean queueing delay.
    pub fn most_congested_links(&self, n: usize) -> Vec<LinkReport> {
        let mut links = self.links.clone();
        links.sort_by(|a, b| {
            b.mean_queue_delay
                .partial_cmp(&a.mean_queue_delay)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        links.truncate(n);
        links
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(id: RequestId, arrival: f64, first: f64, done: f64, out: usize) -> RequestOutcome {
        RequestOutcome {
            id,
            model: ModelId(id as usize % 2),
            prompt_tokens: 100,
            output_tokens: out,
            arrival,
            first_token_at: first,
            completed_at: done,
            pipeline_depth: 3,
        }
    }

    #[test]
    fn latency_summary_percentiles() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencySummary::from_samples(&samples);
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.p50 - 50.0).abs() <= 1.0);
        assert!((s.p95 - 95.0).abs() <= 1.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(LatencySummary::from_samples(&[]), LatencySummary::default());
    }

    #[test]
    fn request_outcome_latencies() {
        let o = outcome(1, 10.0, 12.0, 22.0, 11);
        assert!((o.prompt_latency() - 2.0).abs() < 1e-9);
        assert!((o.decode_latency_per_token() - 1.0).abs() < 1e-9);
        let single = outcome(2, 0.0, 1.0, 1.0, 1);
        assert_eq!(single.decode_latency_per_token(), 0.0);
    }

    #[test]
    fn report_throughput_and_congestion_ranking() {
        let report = RuntimeReport {
            outcomes: vec![
                outcome(1, 0.0, 1.0, 10.0, 50),
                outcome(2, 0.0, 2.0, 10.0, 50),
            ],
            makespan: 10.0,
            wall_seconds: 0.1,
            kv_transfers: vec![],
            prefix: PrefixStats::default(),
            failovers: vec![],
            replication: ReplicationStats::default(),
            nodes: vec![],
            links: vec![
                LinkReport {
                    from: None,
                    to: Some(NodeId(0)),
                    messages: 10,
                    bytes: 40.0,
                    mean_queue_delay: 0.1,
                    max_queue_delay: 0.2,
                },
                LinkReport {
                    from: Some(NodeId(0)),
                    to: Some(NodeId(1)),
                    messages: 10,
                    bytes: 4e5,
                    mean_queue_delay: 3.0,
                    max_queue_delay: 9.0,
                },
            ],
            replans: vec![],
        };
        assert_eq!(report.completed(), 2);
        assert_eq!(report.decode_tokens(), 100);
        assert!((report.decode_throughput() - 10.0).abs() < 1e-9);
        assert!(report.prompt_latency().mean > 0.0);
        // Per-model breakdown: outcomes 1 and 2 target models 1 and 0.
        assert_eq!(report.outcomes_for(ModelId(1)).len(), 1);
        assert_eq!(report.decode_tokens_for(ModelId(0)), 50);
        assert!((report.decode_throughput_for(ModelId(0)) - 5.0).abs() < 1e-9);
        assert!(report.prompt_latency_for(ModelId(1)).mean > 0.0);
        assert_eq!(report.decode_latency_for(ModelId(7)).count, 0);
        let worst = report.most_congested_links(1);
        assert_eq!(worst.len(), 1);
        assert_eq!(worst[0].from, Some(NodeId(0)));
    }
}
