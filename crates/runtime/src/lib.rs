//! Async prototype serving runtime for Helix.
//!
//! The paper evaluates two artefacts: a prototype system (vLLM workers plus a
//! ZeroMQ control plane, §6.1) and a discrete-event simulator.  The
//! [`helix-sim`](https://docs.rs/helix-sim) crate reproduces the simulator;
//! this crate reproduces the *prototype's architecture* (Fig. 3) as a real
//! concurrent system of async tasks on a vendored single-threaded executor
//! (`minirt`):
//!
//! * a **coordinator task** that admits requests, asks the configured
//!   [`Scheduler`](helix_core::Scheduler) for a per-request pipeline, tracks
//!   decode iterations and releases KV cache when requests finish
//!   (§5.1–§5.2);
//! * one **worker task per (compute node, model) pair** running best-effort
//!   dynamic batching over the layers the placement assigned to it, with a
//!   paged KV-cache pool modelled after vLLM's PagedAttention block manager
//!   ([`PagedKvPool`]);
//! * a **network fabric task** that delivers messages with per-link
//!   bandwidth, latency and FIFO queueing taken from the cluster profile, so
//!   congestion on slow links emerges exactly as in the paper's Fig. 10b case
//!   study.
//!
//! Because workers are tasks rather than OS threads, the whole data plane —
//! even a 500-node fleet — runs on a bounded number of threads: inline on
//! the calling thread for batch runs, or on one `helix-dataplane` thread for
//! live sessions.  Every wait is waker-based (channel wakers and virtual-time
//! timers); nothing in the data plane polls on an interval.
//!
//! GPU kernels are replaced by a calibrated cost model ([`AnalyticExecution`])
//! — the same substitution the paper's own simulator makes — while every other
//! part of the system (tasks, channels, batching, paging, backpressure) is
//! real.  Time is virtualised by a [`VirtualClock`] so runs execute faster
//! than real time; all reported latencies and throughputs are in virtual
//! seconds and directly comparable with the simulator's output.
//!
//! The front door is session-oriented: a [`ServingBuilder`] unifies
//! single-model, multi-model and adaptive construction, and the
//! [`ServingSession`] it returns is a *live* handle — non-blocking
//! [`submit`](ServingSession::submit), streaming completions, mid-run speed
//! injection and placement deltas that can spawn workers for brand-new
//! (node, model) tenancies.  The legacy batch call survives as
//! [`ServingSession::serve`], which on a fresh session runs the identical
//! admission loop the old one-shot runtime ran (the deprecated
//! `ServingRuntime` shims were removed after one release).
//!
//! # Example: builder → session → report
//!
//! ```rust
//! use helix_cluster::{ClusterProfile, ClusterSpec, ModelConfig};
//! use helix_core::{heuristics, Topology};
//! use helix_runtime::{RuntimeConfig, ServingBuilder};
//! use helix_workload::Request;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let profile = ClusterProfile::analytic(
//!     ClusterSpec::solver_quality_10(),
//!     ModelConfig::llama_30b(),
//! );
//! let placement = heuristics::swarm_placement(&profile)?;
//! // One planning artifact feeds the scheduler and the runtime alike.
//! let topology = Topology::plan(&profile, &placement, true)?;
//!
//! // Builder: IWRR from the max-flow solution is the default scheduler.
//! let mut session = ServingBuilder::new()
//!     .topology(&topology)
//!     .config(RuntimeConfig::fast_test())
//!     .build()?;
//!
//! // Session: non-blocking submission, per-ticket completion.
//! let tickets: Vec<_> = (0..4)
//!     .map(|i| {
//!         session.submit(Request {
//!             id: i,
//!             prompt_tokens: 64,
//!             output_tokens: 4,
//!             arrival_time: 0.0,
//!             ..Request::default()
//!         })
//!     })
//!     .collect();
//! let first = session.wait_completion(tickets[0])?;
//! assert_eq!(first.output_tokens, 4);
//!
//! // Report: drain the rest and shut the data plane down.
//! session.drain()?;
//! let report = session.finish()?;
//! assert_eq!(report.completed(), 4);
//! assert!(report.decode_throughput() > 0.0);
//! # Ok(())
//! # }
//! ```

mod builder;
mod clock;
mod coordinator;
mod error;
mod exec;
mod fabric;
mod kv_pool;
mod message;
mod metrics;
mod registry;
mod runtime;
mod session;
mod worker;

pub use builder::ServingBuilder;
pub use clock::VirtualClock;
pub use error::RuntimeError;
pub use exec::{AnalyticExecution, ExecutionModel, InstantExecution};
pub use fabric::{LinkKey, LinkTraffic};
pub use kv_pool::{KvPoolError, PagedKvPool};
pub use message::{Envelope, Phase, PlanUpdate, RuntimeMsg, StageWork};
pub use metrics::{LatencySummary, LinkReport, NodeReport, RequestOutcome, RuntimeReport};
pub use runtime::{ExecutionKind, RuntimeConfig};
pub use session::ServingSession;
pub use worker::WorkerStats;

// The ticket type is defined next to `Request` so every serving surface
// (runtime and simulator) shares it; re-exported here for convenience.
pub use helix_workload::TicketId;
