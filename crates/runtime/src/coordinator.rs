//! The coordinator: request admission, per-request pipeline scheduling and
//! lifecycle tracking.
//!
//! This is the runtime counterpart of the coordinator in the paper's Fig. 3:
//! when a request arrives it asks the configured [`Scheduler`] for a
//! per-request pipeline, sends the request to the pipeline's first node, and
//! when the last node reports a finished iteration it either launches the
//! next decode iteration on the *same* pipeline or completes the request and
//! releases its KV cache everywhere (§5.1–§5.2).
//!
//! When built adaptively (`ServingRuntime::new_adaptive`), the coordinator
//! also runs the observe → re-derive → re-solve → hand-over loop: every
//! policy interval it reads the workers' shared statistics into
//! [`NodeObservations`], asks the shared [`ReplanPolicy`] whether the
//! measured speed factors warrant action, and applies
//! [`FleetTopology::replan`] **drain-then-switch** — the affected models'
//! schedulers and KV estimators are swapped for *new* requests while every
//! in-flight pipeline keeps the route it was assigned, so nothing is
//! dropped mid-generation.

use crate::clock::VirtualClock;
use crate::error::RuntimeError;
use crate::message::{Envelope, Phase, RuntimeMsg, StageWork};
use crate::metrics::RequestOutcome;
use crate::worker::SharedWorkerStats;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use helix_cluster::{ModelId, NodeId, TOKEN_WIRE_BYTES};
use helix_core::{
    ClusterState, EngineCounters, FleetTopology, HelixError, IwrrScheduler, KvCacheEstimator,
    NodeObservations, ObservationWindows, PlacementDelta, ReplanPolicy, ReplanReason, ReplanRecord,
    RequestPipeline, Scheduler,
};
use helix_workload::{Request, RequestId, Workload};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// Everything the coordinator needs to run.
pub(crate) struct CoordinatorSpec {
    /// One scheduling policy per model of the fleet (Helix IWRR or one of the
    /// baselines); single-model runs carry exactly one entry.
    pub schedulers: Vec<Box<dyn Scheduler>>,
    /// One KV-cache usage estimator per model (§5.2) — each model's slice of
    /// a shared node's KV pool is masked independently.
    pub estimators: Vec<KvCacheEstimator>,
    /// Shared virtual clock.
    pub clock: VirtualClock,
    /// Messages arriving from workers through the fabric.
    pub inbound: Receiver<RuntimeMsg>,
    /// Outgoing messages into the fabric.
    pub fabric: Sender<Envelope>,
    /// Live statistics shared by every (node, model) worker.
    pub worker_stats: HashMap<(NodeId, ModelId), SharedWorkerStats>,
    /// Wall-clock budget for the whole run.
    pub max_wall: Duration,
    /// Online re-planning state (None = the static plan serves the run).
    pub adaptive: Option<AdaptiveReplan>,
}

/// What an adaptive coordinator needs to close the feedback loop.
pub(crate) struct AdaptiveReplan {
    /// The standing fleet plan, mutated in place by re-plans.
    pub fleet: FleetTopology,
    /// When the loop fires (shared with the simulator's loop).
    pub policy: ReplanPolicy,
}

/// The adaptive coordinator's bookkeeping between observation windows.
struct AdaptiveState {
    fleet: FleetTopology,
    policy: ReplanPolicy,
    last_check: f64,
    last_replan: Option<f64>,
    /// The shared window accumulator (same measurement math as the sim).
    windows: ObservationWindows,
    replans: Vec<ReplanRecord>,
}

/// The coordinator's runtime view of the cluster for one model, used by that
/// model's scheduler.
///
/// Queue lengths and recent throughput come from the model's workers' shared
/// statistics (the runtime equivalent of the paper's runtime monitoring);
/// KV usage comes from the model's coordinator-side estimator, exactly as in
/// §5.2.
struct CoordinatorView<'a> {
    model: ModelId,
    estimator: &'a KvCacheEstimator,
    worker_stats: &'a HashMap<(NodeId, ModelId), SharedWorkerStats>,
}

impl ClusterState for CoordinatorView<'_> {
    fn queue_len(&self, node: NodeId) -> usize {
        self.worker_stats
            .get(&(node, self.model))
            .map(|s| s.lock().queue_len)
            .unwrap_or(0)
    }

    fn recent_throughput(&self, node: NodeId) -> f64 {
        self.worker_stats
            .get(&(node, self.model))
            .map(|s| s.lock().recent_throughput)
            .unwrap_or(0.0)
    }

    fn kv_used_tokens(&self, node: NodeId) -> f64 {
        self.estimator.estimated_tokens(node)
    }

    fn kv_capacity_tokens(&self, node: NodeId) -> f64 {
        self.estimator.capacity_tokens(node)
    }
}

/// The in-flight state of one admitted request.
struct InFlight {
    request: Request,
    pipeline: Arc<RequestPipeline>,
    first_token_at: Option<f64>,
    decode_remaining: usize,
}

pub(crate) struct Coordinator {
    schedulers: Vec<Box<dyn Scheduler>>,
    estimators: Vec<KvCacheEstimator>,
    clock: VirtualClock,
    inbound: Receiver<RuntimeMsg>,
    fabric: Sender<Envelope>,
    worker_stats: HashMap<(NodeId, ModelId), SharedWorkerStats>,
    max_wall: Duration,
    in_flight: HashMap<RequestId, InFlight>,
    outcomes: Vec<RequestOutcome>,
    adaptive: Option<AdaptiveState>,
}

impl Coordinator {
    pub(crate) fn new(spec: CoordinatorSpec) -> Self {
        assert_eq!(
            spec.schedulers.len(),
            spec.estimators.len(),
            "one estimator per model"
        );
        Coordinator {
            schedulers: spec.schedulers,
            estimators: spec.estimators,
            clock: spec.clock,
            inbound: spec.inbound,
            fabric: spec.fabric,
            worker_stats: spec.worker_stats,
            max_wall: spec.max_wall,
            in_flight: HashMap::new(),
            outcomes: Vec::new(),
            adaptive: spec.adaptive.map(|a| AdaptiveState {
                fleet: a.fleet,
                policy: a.policy,
                last_check: 0.0,
                last_replan: None,
                windows: ObservationWindows::new(),
                replans: Vec::new(),
            }),
        }
    }

    /// The re-plans the run applied (empty for a static coordinator).
    pub(crate) fn take_replans(&mut self) -> Vec<ReplanRecord> {
        self.adaptive
            .as_mut()
            .map(|a| std::mem::take(&mut a.replans))
            .unwrap_or_default()
    }

    /// Serves the whole workload, returning one outcome per request in
    /// completion order.
    pub(crate) fn run(&mut self, workload: &Workload) -> Result<Vec<RequestOutcome>, RuntimeError> {
        let requests: Vec<Request> = workload.requests().to_vec();
        let total = requests.len();
        let mut next_arrival = 0usize;
        let mut deferred: VecDeque<Request> = VecDeque::new();

        while self.outcomes.len() < total {
            if self.clock.wall_elapsed() > self.max_wall {
                return Err(RuntimeError::WallClockBudgetExceeded {
                    budget: self.max_wall,
                    completed: self.outcomes.len(),
                    total,
                });
            }

            // Admit every request whose arrival time has passed.
            let now = self.clock.now();
            while next_arrival < total && requests[next_arrival].arrival_time <= now {
                let request = requests[next_arrival];
                next_arrival += 1;
                if !self.try_dispatch(request)? {
                    deferred.push_back(request);
                }
            }
            // Retry requests that could not be scheduled earlier (all
            // candidates masked by the KV high-water mark).
            for _ in 0..deferred.len() {
                let request = deferred.pop_front().expect("bounded by len");
                if !self.try_dispatch(request)? {
                    deferred.push_back(request);
                }
            }
            if !deferred.is_empty() && self.in_flight.is_empty() {
                return Err(RuntimeError::Stalled {
                    pending: deferred.len() + (total - next_arrival),
                    completed: self.outcomes.len(),
                });
            }

            // Wait for worker events, but wake up in time for the next arrival.
            let timeout = if next_arrival < total {
                let until_arrival = requests[next_arrival].arrival_time - self.clock.now();
                self.clock.wall_duration(until_arrival.clamp(0.0, 1.0))
            } else {
                Duration::from_millis(10)
            };
            match self.inbound.recv_timeout(timeout) {
                Ok(msg) => self.handle(msg)?,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(RuntimeError::Disconnected("network fabric"));
                }
            }
            while let Ok(msg) = self.inbound.try_recv() {
                self.handle(msg)?;
            }

            // The feedback half of the loop: observe the workers, consult
            // the policy, re-plan and hand over.
            self.maybe_replan();
        }
        Ok(std::mem::take(&mut self.outcomes))
    }

    /// One observation-window check of the online re-planning loop.  Reads
    /// every worker's shared statistics into a [`NodeObservations`] snapshot
    /// (speed factor = predicted / actual busy seconds over the window);
    /// when the policy fires, applies [`FleetTopology::replan`] and swaps
    /// the affected models' schedulers and KV-estimator capacities.
    /// In-flight pipelines are untouched — they drain over their old routes.
    fn maybe_replan(&mut self) {
        let Some(mut state) = self.adaptive.take() else {
            return;
        };
        let now = self.clock.now();
        let window = now - state.last_check;
        if window < state.policy.check_interval_secs {
            self.adaptive = Some(state);
            return;
        }
        state.last_check = now;

        let mut observed = NodeObservations::new();
        for (&(node, model), shared) in &self.worker_stats {
            let stats = shared.lock().clone();
            state.windows.measure(
                &mut observed,
                node,
                model,
                EngineCounters {
                    nominal_busy_secs: stats.nominal_busy_secs,
                    busy_secs: stats.busy_secs,
                    tokens: stats.prompt_tokens + stats.decode_tokens,
                },
                window,
                state.fleet.observations(),
            );
        }

        if let Some((node, model, speed)) = state.policy.should_replan(
            &observed,
            state.fleet.observations(),
            now,
            state.last_replan,
        ) {
            if let Ok(outcome) = state.fleet.replan(&PlacementDelta::new(), &observed) {
                for &m in &outcome.affected {
                    let topology = state.fleet.model(m).expect("affected model exists");
                    // Drain-then-switch: only *new* requests see the new
                    // weights; a zero-flow re-plan keeps the old scheduler.
                    if let Ok(scheduler) = IwrrScheduler::from_topology(topology) {
                        self.schedulers[m.index()] = Box::new(scheduler);
                    }
                    for planned in topology.nodes() {
                        self.estimators[m.index()]
                            .set_capacity(planned.node, planned.kv_capacity_tokens);
                    }
                }
                state.last_replan = Some(now);
                state.replans.push(ReplanRecord {
                    at: now,
                    reason: ReplanReason::ThroughputGap { node, model, speed },
                    affected: outcome.affected,
                    planned_flow: state.fleet.total_flow_value(),
                });
            }
        }
        self.adaptive = Some(state);
    }

    /// Tries to admit one request.  Returns `Ok(false)` if every candidate is
    /// currently masked out and the request should be retried later.
    fn try_dispatch(&mut self, request: Request) -> Result<bool, RuntimeError> {
        let model = request.model;
        let num_models = self.schedulers.len();
        if model.index() >= num_models {
            return Err(RuntimeError::Scheduling(HelixError::UnknownModel {
                model,
                num_models,
            }));
        }
        let view = CoordinatorView {
            model,
            estimator: &self.estimators[model.index()],
            worker_stats: &self.worker_stats,
        };
        let pipeline = match self.schedulers[model.index()].schedule(&view) {
            Ok(mut pipeline) => {
                pipeline.model = model;
                Arc::new(pipeline)
            }
            Err(HelixError::NoCandidateAvailable { .. }) => return Ok(false),
            Err(e) => return Err(e.into()),
        };
        for stage in &pipeline.stages {
            self.estimators[model.index()].on_scheduled(
                stage.node,
                request.id,
                request.prompt_tokens,
            );
        }
        let first = pipeline.stages[0].node;
        self.send(Envelope {
            from: None,
            to: Some(first),
            model,
            bytes: TOKEN_WIRE_BYTES * request.prompt_tokens.max(1) as f64,
            msg: RuntimeMsg::Work(StageWork {
                request: request.id,
                phase: Phase::Prompt,
                tokens: request.prompt_tokens.max(1),
                stage_index: 0,
                pipeline: Arc::clone(&pipeline),
            }),
        })?;
        self.in_flight.insert(
            request.id,
            InFlight {
                request,
                pipeline,
                first_token_at: None,
                decode_remaining: 0,
            },
        );
        Ok(true)
    }

    fn handle(&mut self, msg: RuntimeMsg) -> Result<(), RuntimeError> {
        let RuntimeMsg::IterationDone {
            request,
            phase,
            emitted_at,
        } = msg
        else {
            // Work/Release/Shutdown are worker-bound; nothing to do here.
            return Ok(());
        };
        let Some(flight) = self.in_flight.get_mut(&request) else {
            return Ok(());
        };
        let finished = match phase {
            Phase::Prompt => {
                flight.first_token_at = Some(emitted_at);
                flight.decode_remaining = flight.request.output_tokens.saturating_sub(1);
                flight.decode_remaining == 0
            }
            Phase::Decode => {
                flight.decode_remaining = flight.decode_remaining.saturating_sub(1);
                flight.decode_remaining == 0
            }
        };
        if finished {
            self.finish(request, emitted_at)
        } else {
            let pipeline = Arc::clone(&flight.pipeline);
            let first = pipeline.stages[0].node;
            let model = pipeline.model;
            self.send(Envelope {
                from: None,
                to: Some(first),
                model,
                bytes: TOKEN_WIRE_BYTES,
                msg: RuntimeMsg::Work(StageWork {
                    request,
                    phase: Phase::Decode,
                    tokens: 1,
                    stage_index: 0,
                    pipeline,
                }),
            })
        }
    }

    /// Completes a request: records its outcome, updates the estimator and
    /// frees its KV pages on every node of its pipeline.
    fn finish(&mut self, request: RequestId, completed_at: f64) -> Result<(), RuntimeError> {
        let Some(flight) = self.in_flight.remove(&request) else {
            return Ok(());
        };
        let model = flight.pipeline.model;
        for stage in &flight.pipeline.stages {
            self.estimators[model.index()].on_finished(
                stage.node,
                request,
                flight.request.output_tokens,
            );
        }
        for stage in &flight.pipeline.stages {
            self.send(Envelope {
                from: None,
                to: Some(stage.node),
                model,
                bytes: TOKEN_WIRE_BYTES,
                msg: RuntimeMsg::Release(request),
            })?;
        }
        self.outcomes.push(RequestOutcome {
            id: request,
            model,
            prompt_tokens: flight.request.prompt_tokens,
            output_tokens: flight.request.output_tokens,
            arrival: flight.request.arrival_time,
            first_token_at: flight.first_token_at.unwrap_or(completed_at),
            completed_at,
            pipeline_depth: flight.pipeline.stages.len(),
        });
        Ok(())
    }

    fn send(&self, envelope: Envelope) -> Result<(), RuntimeError> {
        self.fabric
            .send(envelope)
            .map_err(|_| RuntimeError::Disconnected("network fabric"))
    }
}
