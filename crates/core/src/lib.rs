//! Helix core: max-flow model placement and per-request pipeline scheduling.
//!
//! This crate implements the paper's primary contribution (§4–§5):
//!
//! * [`ModelPlacement`] — an assignment of a contiguous layer range to every
//!   compute node, with validation.
//! * [`FlowGraphBuilder`] / [`PlacementFlowGraph`] — the graph abstraction of
//!   a cluster under a given placement (§4.3): every compute node becomes a
//!   `c_in → c_out` edge whose capacity is the node's token throughput, every
//!   valid network connection becomes an edge whose capacity is the link's
//!   token throughput, and the max flow from source to sink equals the
//!   cluster's maximum serving throughput.
//! * [`Topology`] — the typed planning artifact produced once from a
//!   placement (surviving connections, per-edge capacities, max-flow
//!   solution, per-node layer ranges) and consumed by the scheduler, the
//!   simulator and the prototype runtime alike.
//! * [`exec_model`] — the execution cost model (batching formula, prompt vs
//!   decode token costs, KV-overflow penalty) shared by the simulator and
//!   the runtime so the two can never drift apart.
//! * [`MilpPlacementPlanner`] — the MILP formulation of §4.4 (Tables 5–6)
//!   with optional partial inference, cluster pruning, heuristic warm starts
//!   and the early-stop upper bound of §4.5.
//! * [`heuristics`] — the baseline placement strategies the paper compares
//!   against: Swarm-style balanced stages, Petals-style greedy assignment and
//!   separate per-GPU-type pipelines, plus a flow-guided simulated-annealing
//!   refiner used for large clusters where exact MILP solving is impractical.
//! * [`PartitionedPlanner`] — the §4.5 scale-out path: partition very large
//!   clusters into region-respecting groups that each hold a model replica
//!   and plan every group independently.
//! * [`IwrrScheduler`] — the per-request pipeline scheduler of §5.1:
//!   interleaved weighted round-robin over the topology graph with weights
//!   taken from the max-flow solution, plus the KV-cache high-water masking
//!   of §5.2.
//! * [`fleet`] — the multi-model generalisation: [`FleetPlacement`] /
//!   [`FleetTopology`] split shared-node compute and KV capacity (and
//!   fleet-shared link capacity) between co-located models,
//!   [`FleetScheduler`] routes per-model IWRR pipelines and
//!   [`FleetAnnealingPlanner`] searches all models jointly (cross-model
//!   node moves over warm-started flow evaluators).  A one-model fleet is
//!   bit-identical to the single-model pipeline.
//! * [`replan`] — the feedback half of online re-planning: measured
//!   [`NodeObservations`] that override the analytic compute shares, sparse
//!   [`PlacementDelta`]s, and the [`ReplanPolicy`] both execution surfaces
//!   share.  [`FleetTopology::replan`] applies them by re-solving only the
//!   affected models, warm.
//! * [`scheduling`] — baseline schedulers (Swarm throughput-proportional,
//!   random, shortest-queue-first) used in the §6.7 scheduling deep dive.
//!
//! # Quick start
//!
//! ```rust
//! use helix_cluster::{ClusterProfile, ClusterSpec, ModelConfig};
//! use helix_core::{heuristics, IwrrScheduler, Topology};
//!
//! let profile = ClusterProfile::analytic(
//!     ClusterSpec::solver_quality_10(),
//!     ModelConfig::llama_30b(),
//! );
//! // A quick heuristic placement (the MILP planner would refine this).
//! let placement = heuristics::swarm_placement(&profile).unwrap();
//! // Plan once: the Topology holds the surviving connections, capacities
//! // and the max-flow solution, and every downstream surface consumes it.
//! let topology = Topology::plan(&profile, &placement, true).unwrap();
//! assert!(topology.flow_value() > 0.0);
//! let scheduler = IwrrScheduler::from_topology(&topology).unwrap();
//! assert!(scheduler.num_pipelines_possible() >= 1);
//! ```

pub mod error;
pub mod exec_model;
pub mod fleet;
pub mod flow_graph;
pub mod ha;
pub mod placement;
pub mod region;
pub mod replan;
pub mod scheduling;
pub mod topology;

pub use error::HelixError;
pub use exec_model::{ExecModel, Phase, WorkUnit};
pub use fleet::{
    fleet_profiles, FleetAnnealingOptions, FleetAnnealingPlanner, FleetPlacement, FleetScheduler,
    FleetTopology,
};
pub use flow_graph::{Endpoint, FlowGraphBuilder, PlacementFlowGraph};
pub use ha::{
    select_standby, FailoverRecord, NodeDirectory, ReplicaTracker, ReplicationPolicy,
    ReplicationStats, REPLICA_CHUNK_PAGES,
};
pub use placement::heuristics;
pub use placement::hierarchical::{
    HierarchicalFleetPlanner, HierarchicalOptions, HierarchicalPlan,
};
pub use placement::incremental::{IncrementalFlowEvaluator, RollbackStrategy};
pub use placement::milp::{MilpPlacementPlanner, MilpPlannerReport, PlannerOptions};
pub use placement::partition::{
    Partition, PartitionOptions, PartitionPlan, PartitionedPlanner, Pod, PodMap,
    PodPartitionOptions, PodPartitioner,
};
pub use placement::refine::{AnnealingOptions, FlowAnnealingPlanner};
pub use placement::{LayerRange, ModelPlacement};
pub use region::{
    InterRegionLink, MembershipOptions, RebalanceMove, RebalanceOptions, RegionDirectory,
    RegionHealth, RegionInfo, RegionLoad, RegionRebalancer, RegionRing, RegionTransferPricer,
    RegionTransferRecord, RingOptions,
};
pub use replan::{
    EngineCounters, KvMigration, KvTransferModel, KvTransferRecord, NodeObservation,
    NodeObservations, ObservationWindows, PlacementDelta, ReplanOutcome, ReplanPolicy,
    ReplanReason, ReplanRecord,
};
pub use scheduling::iwrr::IwrrScheduler;
pub use scheduling::kv_estimate::KvCacheEstimator;
pub use scheduling::prefix::{PrefixRoute, PrefixRouter, PrefixStats, PrefixWork};
pub use scheduling::{
    ClusterState, IdleClusterState, PipelineStage, RandomScheduler, RequestPipeline, Scheduler,
    SchedulerKind, ShortestQueueScheduler, SwarmScheduler, TopologyGraph,
};
pub use topology::{Topology, TopologyLink, TopologyNode};
