//! Offline stub of the `proptest` API surface this workspace uses.
//!
//! Random inputs are drawn from the vendored `rand` stub with a fixed seed
//! per test function, so runs are fully deterministic.  There is no
//! shrinking: a failing case panics with the case index and the assertion
//! message.  Supported strategies: integer/float ranges, `prop::bool::ANY`,
//! tuples of strategies and `prop::collection::vec`.  See `vendor/README.md`.

use rand::rngs::StdRng;
#[doc(hidden)]
pub use rand::rngs::StdRng as __StdRng;
#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

/// Error signalled by a failing `prop_assert!` inside a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl<T: Into<String>> From<T> for TestCaseError {
    fn from(message: T) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test function.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// A strategy producing a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy modules mirroring `proptest::prop`.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use super::super::Strategy;
        use rand::rngs::StdRng;

        /// Uniformly random booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniformly random booleans (mirrors `proptest::bool::ANY`).
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut StdRng) -> bool {
                rand::Rng::gen_bool(rng, 0.5)
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::StdRng;

        /// A strategy producing `Vec`s of values from an element strategy.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        /// Vectors with lengths drawn from `size` and elements from
        /// `element`.
        pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let len = if self.size.is_empty() {
                    self.size.start
                } else {
                    rand::Rng::gen_range(rng, self.size.clone())
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a proptest case, failing the case (not the
/// whole process) so the harness can report the case inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::from(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::from(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Skips the current case when the assumption does not hold (the stub
/// counts skipped cases as passes; there is no rejection budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "left = {:?}, right = {:?}", l, r);
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "left = {:?}, right = {:?}", l, r);
    }};
}

/// Declares deterministic property tests.
///
/// Each `#[test] fn name(arg in strategy, ...) { body }` item expands to a
/// normal test that draws `config.cases` random inputs (fixed seed) and runs
/// the body, panicking with the case index on the first failure.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                // Deterministic per-test seed derived from the test name.
                let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    seed ^= b as u64;
                    seed = seed.wrapping_mul(0x1000_0000_01b3);
                }
                for case in 0..config.cases {
                    let mut rng = <$crate::__StdRng as $crate::__SeedableRng>::seed_from_u64(
                        seed.wrapping_add(case as u64),
                    );
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    let result = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = result {
                        panic!("proptest case {case} of {} failed: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),*) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_vecs(n in 1usize..5, items in prop::collection::vec((0u64..6, prop::bool::ANY), 1..10)) {
            prop_assert!((1..5).contains(&n));
            prop_assert!(!items.is_empty() && items.len() < 10);
            for (v, _b) in items {
                prop_assert!(v < 6, "v = {v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "proptest case 0")]
    fn failing_case_panics_with_index() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn inner(x in 0usize..3) {
                prop_assert!(x > 100);
            }
        }
        inner();
    }
}
