//! Property-based tests for cluster profiling invariants.

use helix_cluster::{
    ClusterBuilder, ClusterProfile, ClusterSpec, GpuType, ModelConfig, NodeId, Region,
};
use proptest::prelude::*;

fn gpu_from_index(i: usize) -> GpuType {
    GpuType::ALL[i % GpuType::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Node throughput is non-increasing in the number of layers held, and
    /// zero outside the feasible range.
    #[test]
    fn throughput_monotone_in_layers(gpu_idx in 0usize..6, gpus_per_node in 1usize..5) {
        let cluster = ClusterBuilder::new("prop")
            .add_nodes(gpu_from_index(gpu_idx), 1, gpus_per_node, Region(0))
            .build();
        let profile = ClusterProfile::analytic(cluster, ModelConfig::llama_30b());
        let np = profile.node_profile(NodeId(0));
        prop_assert_eq!(np.throughput(0), 0.0);
        let mut prev = f64::INFINITY;
        for layers in 1..=np.max_layers_absolute {
            let t = np.throughput(layers);
            prop_assert!(t > 0.0);
            prop_assert!(t <= prev + 1e-9);
            prev = t;
        }
        prop_assert_eq!(np.throughput(np.max_layers_absolute + 1), 0.0);
    }

    /// More GPUs per node means at least as many layers and at least as much
    /// per-layer throughput.
    #[test]
    fn multi_gpu_nodes_dominate_single_gpu_nodes(gpu_idx in 0usize..6, extra in 1usize..4) {
        let gpu = gpu_from_index(gpu_idx);
        let cluster = ClusterBuilder::new("prop")
            .add_nodes(gpu, 1, 1, Region(0))
            .add_nodes(gpu, 1, 1 + extra, Region(0))
            .build();
        let profile = ClusterProfile::analytic(cluster, ModelConfig::llama2_70b());
        let single = profile.node_profile(NodeId(0));
        let multi = profile.node_profile(NodeId(1));
        prop_assert!(multi.max_layers >= single.max_layers);
        prop_assert!(multi.decode_tokens_per_layer_sec >= single.decode_tokens_per_layer_sec);
        prop_assert!(multi.vram_bytes > single.vram_bytes);
    }

    /// KV capacity decreases as a node holds more layers (weights crowd out
    /// cache and each token costs more per layer held).
    #[test]
    fn kv_capacity_decreases_with_layers(gpu_idx in 0usize..6) {
        let cluster = ClusterBuilder::new("prop")
            .add_nodes(gpu_from_index(gpu_idx), 1, 2, Region(0))
            .build();
        let profile = ClusterProfile::analytic(cluster, ModelConfig::llama_30b());
        let id = NodeId(0);
        let max = profile.node_profile(id).max_layers;
        prop_assume!(max >= 2);
        let mut prev = f64::INFINITY;
        for layers in 1..=max {
            let cap = profile.kv_capacity_tokens(id, layers);
            prop_assert!(cap >= 0.0);
            prop_assert!(cap <= prev + 1e-9);
            prev = cap;
        }
    }

    /// The throughput upper bound scales linearly with the number of nodes of
    /// the same type.
    #[test]
    fn upper_bound_scales_with_cluster_size(gpu_idx in 0usize..6, n in 1usize..8) {
        let gpu = gpu_from_index(gpu_idx);
        let one = ClusterProfile::analytic(
            ClusterBuilder::new("one").add_nodes(gpu, 1, 1, Region(0)).build(),
            ModelConfig::llama_30b(),
        );
        let many = ClusterProfile::analytic(
            ClusterBuilder::new("many").add_nodes(gpu, n, 1, Region(0)).build(),
            ModelConfig::llama_30b(),
        );
        let ratio = many.throughput_upper_bound() / one.throughput_upper_bound();
        prop_assert!((ratio - n as f64).abs() < 1e-6);
    }

    /// Links between endpoints in the same region always have at least the
    /// bandwidth of cross-region links in the paper's cluster builders.
    #[test]
    fn intra_region_links_are_never_slower(a in 0usize..24, b in 0usize..24) {
        prop_assume!(a != b);
        let cluster = ClusterSpec::geo_distributed_24();
        let la = cluster.link(Some(NodeId(a)), Some(NodeId(b)));
        let same_region = cluster.node(NodeId(a)).region == cluster.node(NodeId(b)).region;
        if same_region {
            prop_assert!(la.bandwidth_mbps >= cluster.inter_region_bandwidth_mbps);
            prop_assert!(la.latency_ms <= cluster.inter_region_latency_ms);
        } else {
            prop_assert_eq!(la.bandwidth_mbps, cluster.inter_region_bandwidth_mbps);
        }
    }

    /// Coordinator links carry small token payloads, so their token capacity
    /// is always at least the activation-link capacity for the same bandwidth.
    #[test]
    fn coordinator_links_have_higher_token_capacity(node in 0usize..10) {
        let profile = ClusterProfile::analytic(
            ClusterSpec::solver_quality_10(),
            ModelConfig::llama2_70b(),
        );
        prop_assume!(node < profile.cluster().num_nodes());
        let to_coord = profile.link_profile(Some(NodeId(node)), None);
        let other = (node + 1) % profile.cluster().num_nodes();
        let to_node = profile.link_profile(Some(NodeId(node)), Some(NodeId(other)));
        prop_assert!(to_coord.tokens_per_sec >= to_node.tokens_per_sec);
    }
}
