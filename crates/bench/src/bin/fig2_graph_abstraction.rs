//! Figure 2: graph abstraction of a 3-node cluster with a given model
//! placement; the max flow equals the maximum serving throughput.
//!
//! ```text
//! cargo run --release -p helix-bench --bin fig2_graph_abstraction
//! ```

use helix_bench::{ExperimentReport, ExperimentScale};
use helix_cluster::{ClusterProfile, ClusterSpec, ModelConfig, NodeId};
use helix_core::{Endpoint, FlowGraphBuilder, LayerRange, ModelPlacement};

fn main() {
    // The Fig. 2 example: a 3-layer model; the A100 holds layers 1-2, T4-1
    // replicates layer 1, T4-2 holds layer 3 (0-based: [0,2), [0,1), [2,3)).
    let mut model = ModelConfig::llama2_70b();
    model.num_layers = 3;
    let profile = ClusterProfile::analytic(ClusterSpec::fig2_example(), model);
    let mut placement = ModelPlacement::empty(3);
    placement.assign(NodeId(0), LayerRange::new(0, 2));
    placement.assign(NodeId(1), LayerRange::new(0, 1));
    placement.assign(NodeId(2), LayerRange::new(2, 3));

    let graph = FlowGraphBuilder::new(&profile).build(&placement).unwrap();
    let flow = graph.max_flow();

    println!("=== Figure 2: graph abstraction of the 3-node example cluster ===");
    println!("node capacities (tokens/s):");
    for id in profile.cluster().node_ids() {
        if let Some(cap) = graph.node_capacity(id) {
            println!(
                "  {:<8} holds {}  capacity {:>10.0}  flow {:>10.0}",
                profile.cluster().node(id).name,
                placement.range(id).unwrap(),
                cap,
                graph.node_flow(&flow, id).unwrap_or(0.0)
            );
        }
    }
    println!("network connections (tokens/s):");
    let mut conn_rows = Vec::new();
    let mut conns = graph.connections();
    conns.sort_by(|a, b| format!("{:?}{:?}", a.0, a.1).cmp(&format!("{:?}{:?}", b.0, b.1)));
    for (from, to, cap) in conns {
        let name = |e: Endpoint| match e {
            Endpoint::Coordinator => "coordinator".to_string(),
            Endpoint::Node(n) => profile.cluster().node(n).name.clone(),
        };
        let f = graph.link_flow(&flow, from, to).unwrap_or(0.0);
        println!(
            "  {:<12} -> {:<12} capacity {:>12.0}  flow {:>12.0}",
            name(from),
            name(to),
            cap,
            f
        );
        conn_rows.push(serde_json::json!({
            "from": name(from), "to": name(to), "capacity": cap, "flow": f,
        }));
    }
    println!(
        "\nmax flow (= max serving throughput): {:.0} tokens/s",
        flow.value
    );
    let paths = graph.decompose(&flow).unwrap();
    println!("decomposed into {} pipelines", paths.len());

    let report = ExperimentReport::new(
        "fig2_graph_abstraction",
        "Figure 2",
        ExperimentScale::Quick,
        serde_json::json!({
            "max_flow_tokens_per_sec": flow.value,
            "num_pipelines": paths.len(),
            "connections": conn_rows,
        }),
    );
    if let Ok(path) = report.write() {
        println!("wrote {}", path.display());
    }
}
