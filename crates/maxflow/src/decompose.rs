//! Decomposition of a feasible flow into source→sink paths.
//!
//! Helix binds an interleaved weighted round-robin scheduler to each vertex
//! whose candidate weights equal the flow over the outgoing network
//! connections in the max-flow solution (paper §5.1).  Decomposing the flow
//! into explicit paths is also useful for debugging placements and for the
//! per-request pipeline visualisations in the experiment harnesses.

use crate::error::FlowError;
use crate::graph::{EdgeId, FlowNetwork, FlowResult, NodeId};
use crate::FLOW_EPS;
use serde::{Deserialize, Serialize};

/// One source→sink path and the amount of flow assigned to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowPath {
    /// Nodes along the path, starting at the source and ending at the sink.
    pub nodes: Vec<NodeId>,
    /// Edges along the path (one fewer than `nodes`).
    pub edges: Vec<EdgeId>,
    /// Flow carried by this path.
    pub amount: f64,
}

impl FlowPath {
    /// Number of hops (edges) in the path.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the path has no edges (never produced by [`decompose_paths`]).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Decomposes a feasible s-t flow into at most `E` paths (plus ignores any
/// flow on cycles, which cannot contribute to throughput).
///
/// The path amounts sum to the flow value leaving the source.
///
/// # Errors
///
/// Returns [`FlowError::NotAFlow`] if `flow` violates conservation at some
/// intermediate node, or [`FlowError::InvalidCapacity`] if an edge flow
/// exceeds its capacity.
///
/// # Example
///
/// ```rust
/// use helix_maxflow::{decompose_paths, FlowNetwork};
///
/// let mut net = FlowNetwork::new();
/// let s = net.add_node("s");
/// let a = net.add_node("a");
/// let b = net.add_node("b");
/// let t = net.add_node("t");
/// net.add_edge(s, a, 2.0);
/// net.add_edge(s, b, 1.0);
/// net.add_edge(a, t, 2.0);
/// net.add_edge(b, t, 1.0);
/// let flow = net.max_flow(s, t);
/// let paths = decompose_paths(&net, &flow, s, t).unwrap();
/// let total: f64 = paths.iter().map(|p| p.amount).sum();
/// assert!((total - 3.0).abs() < 1e-9);
/// ```
pub fn decompose_paths(
    network: &FlowNetwork,
    flow: &FlowResult,
    source: NodeId,
    sink: NodeId,
) -> Result<Vec<FlowPath>, FlowError> {
    network.validate_flow(&flow.edge_flows, source, sink)?;

    // Remaining flow per forward edge; we repeatedly trace a path from source
    // to sink through edges with remaining flow and subtract the bottleneck.
    let mut remaining: Vec<f64> = flow.edge_flows.clone();
    // Outgoing forward edges per node, as (edge index, to) pairs.
    let n = network.node_count();
    let mut out: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for e in network.edges() {
        out[e.from.index()].push((e.id.index(), e.to.index()));
    }

    let mut paths = Vec::new();
    loop {
        // Greedy walk from the source along positive-flow edges.
        let mut node = source.index();
        let mut path_nodes = vec![source];
        let mut path_edges: Vec<EdgeId> = Vec::new();
        let mut visited = vec![false; n];
        visited[node] = true;
        let mut reached_sink = false;
        while node != sink.index() {
            let next = out[node]
                .iter()
                .find(|&&(eidx, _)| remaining[eidx] > FLOW_EPS)
                .copied();
            let Some((eidx, to)) = next else { break };
            path_edges.push(EdgeId(eidx));
            path_nodes.push(NodeId(to));
            node = to;
            if node == sink.index() {
                reached_sink = true;
                break;
            }
            if visited[node] {
                // Found a cycle: cancel the flow around it and restart the walk.
                let cycle_start = path_nodes
                    .iter()
                    .position(|&p| p == NodeId(node))
                    .expect("visited node must appear earlier on the walk");
                let cycle_edges = &path_edges[cycle_start..];
                let bottleneck = cycle_edges
                    .iter()
                    .map(|e| remaining[e.index()])
                    .fold(f64::INFINITY, f64::min);
                for e in cycle_edges {
                    remaining[e.index()] -= bottleneck;
                }
                path_nodes.truncate(cycle_start + 1);
                path_edges.truncate(cycle_start);
                node = path_nodes
                    .last()
                    .expect("walk always contains the source")
                    .index();
                continue;
            }
            visited[node] = true;
        }
        if !reached_sink {
            break;
        }
        let bottleneck = path_edges
            .iter()
            .map(|e| remaining[e.index()])
            .fold(f64::INFINITY, f64::min);
        // NaN-safe: break unless the bottleneck is definitely above the
        // tolerance.
        if bottleneck.partial_cmp(&FLOW_EPS) != Some(std::cmp::Ordering::Greater) {
            break;
        }
        for e in &path_edges {
            remaining[e.index()] -= bottleneck;
        }
        paths.push(FlowPath {
            nodes: path_nodes,
            edges: path_edges,
            amount: bottleneck,
        });
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_totals_match_flow_value() {
        let mut net = FlowNetwork::new();
        let s = net.add_node("s");
        let a = net.add_node("a");
        let b = net.add_node("b");
        let c = net.add_node("c");
        let t = net.add_node("t");
        net.add_edge(s, a, 4.0);
        net.add_edge(s, b, 3.0);
        net.add_edge(a, c, 2.0);
        net.add_edge(a, t, 2.0);
        net.add_edge(b, c, 3.0);
        net.add_edge(c, t, 5.0);
        let flow = net.max_flow(s, t);
        let paths = decompose_paths(&net, &flow, s, t).unwrap();
        let total: f64 = paths.iter().map(|p| p.amount).sum();
        assert!((total - flow.value).abs() < 1e-9);
        for p in &paths {
            assert_eq!(p.nodes.first(), Some(&s));
            assert_eq!(p.nodes.last(), Some(&t));
            assert_eq!(p.nodes.len(), p.edges.len() + 1);
            assert!(!p.is_empty());
        }
    }

    #[test]
    fn per_edge_usage_matches_flow() {
        let mut net = FlowNetwork::new();
        let s = net.add_node("s");
        let a = net.add_node("a");
        let t = net.add_node("t");
        let e1 = net.add_edge(s, a, 5.0);
        let e2 = net.add_edge(a, t, 3.0);
        let flow = net.max_flow(s, t);
        let paths = decompose_paths(&net, &flow, s, t).unwrap();
        let mut usage = vec![0.0; net.edge_count()];
        for p in &paths {
            for e in &p.edges {
                usage[e.index()] += p.amount;
            }
        }
        assert!((usage[e1.index()] - flow.flow(e1)).abs() < 1e-9);
        assert!((usage[e2.index()] - flow.flow(e2)).abs() < 1e-9);
    }

    #[test]
    fn zero_flow_decomposes_to_no_paths() {
        let mut net = FlowNetwork::new();
        let s = net.add_node("s");
        let t = net.add_node("t");
        let flow = net.max_flow(s, t);
        let paths = decompose_paths(&net, &flow, s, t).unwrap();
        assert!(paths.is_empty());
    }

    #[test]
    fn rejects_invalid_flow() {
        let mut net = FlowNetwork::new();
        let s = net.add_node("s");
        let a = net.add_node("a");
        let t = net.add_node("t");
        net.add_edge(s, a, 5.0);
        net.add_edge(a, t, 5.0);
        let bogus = FlowResult {
            value: 2.0,
            edge_flows: vec![2.0, 0.0],
        };
        assert!(decompose_paths(&net, &bogus, s, t).is_err());
    }

    #[test]
    fn flow_with_cycle_component_is_handled() {
        // Manually construct a flow with a cycle a->b->a on top of a path.
        let mut net = FlowNetwork::new();
        let s = net.add_node("s");
        let a = net.add_node("a");
        let b = net.add_node("b");
        let t = net.add_node("t");
        net.add_edge(s, a, 2.0); // e0
        net.add_edge(a, b, 3.0); // e1
        net.add_edge(b, a, 3.0); // e2
        net.add_edge(a, t, 2.0); // e3
                                 // 2 units s->a->t plus 1 unit circulating a->b->a.
        let flow = FlowResult {
            value: 2.0,
            edge_flows: vec![2.0, 1.0, 1.0, 2.0],
        };
        net.validate_flow(&flow.edge_flows, s, t).unwrap();
        let paths = decompose_paths(&net, &flow, s, t).unwrap();
        let total: f64 = paths.iter().map(|p| p.amount).sum();
        assert!((total - 2.0).abs() < 1e-9);
    }
}
