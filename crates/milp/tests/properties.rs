//! Property-based tests for the LP and MILP solvers.

use helix_milp::{solve_lp, MilpSolver, Model, ObjectiveSense, Sense, VarType};
use proptest::prelude::*;

/// Builds a random bounded knapsack-style MILP: maximize sum(v_i x_i) subject
/// to sum(w_i x_i) <= cap with binary x.
fn knapsack(values: &[f64], weights: &[f64], cap: f64) -> Model {
    let mut m = Model::new(ObjectiveSense::Maximize);
    let vars: Vec<_> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| m.add_binary(format!("x{i}"), v))
        .collect();
    let terms: Vec<_> = vars.iter().zip(weights).map(|(&x, &w)| (x, w)).collect();
    m.add_constraint("cap", terms, Sense::Le, cap);
    m
}

/// Brute-force optimum of a binary knapsack (for <= 12 items).
fn brute_force(values: &[f64], weights: &[f64], cap: f64) -> f64 {
    let n = values.len();
    let mut best = 0.0f64;
    for mask in 0u32..(1 << n) {
        let mut w = 0.0;
        let mut v = 0.0;
        for i in 0..n {
            if mask & (1 << i) != 0 {
                w += weights[i];
                v += values[i];
            }
        }
        if w <= cap + 1e-9 {
            best = best.max(v);
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The MILP solver matches a brute-force search on small knapsacks.
    #[test]
    fn milp_matches_brute_force_knapsack(
        values in prop::collection::vec(0.5f64..20.0, 1..9),
        weights_seed in prop::collection::vec(0.5f64..10.0, 1..9),
        cap_frac in 0.1f64..0.9,
    ) {
        let n = values.len().min(weights_seed.len());
        let values = &values[..n];
        let weights = &weights_seed[..n];
        let cap = weights.iter().sum::<f64>() * cap_frac;
        let m = knapsack(values, weights, cap);
        let expected = brute_force(values, weights, cap);
        let got = match MilpSolver::new().solve(&m) {
            Ok(r) => r.objective,
            Err(_) => 0.0, // empty knapsack (cap below every weight) may yield no incumbent > 0
        };
        prop_assert!((got - expected).abs() < 1e-5, "solver {got} vs brute force {expected}");
    }

    /// The LP relaxation is always an upper bound on the MILP optimum for
    /// maximisation problems.
    #[test]
    fn lp_relaxation_bounds_milp(
        values in prop::collection::vec(0.5f64..20.0, 2..8),
        weights_seed in prop::collection::vec(0.5f64..10.0, 2..8),
        cap_frac in 0.2f64..0.9,
    ) {
        let n = values.len().min(weights_seed.len());
        let values = &values[..n];
        let weights = &weights_seed[..n];
        let cap = weights.iter().sum::<f64>() * cap_frac;
        let m = knapsack(values, weights, cap);
        let lp = solve_lp(&m).unwrap().optimal().unwrap();
        if let Ok(milp) = MilpSolver::new().solve(&m) {
            prop_assert!(milp.objective <= lp.objective + 1e-6);
            prop_assert!(milp.objective <= milp.best_bound + 1e-6);
            // Returned solution must actually be feasible and integral.
            prop_assert!(m.is_feasible(&milp.values, 1e-5));
        }
    }

    /// LP optimum of a box-constrained problem equals the greedy bound
    /// (each variable at whichever bound its objective coefficient favours).
    #[test]
    fn lp_box_constrained_matches_analytic(
        coeffs in prop::collection::vec(-10.0f64..10.0, 1..10),
        uppers in prop::collection::vec(0.1f64..5.0, 1..10),
    ) {
        let n = coeffs.len().min(uppers.len());
        let mut m = Model::new(ObjectiveSense::Maximize);
        for i in 0..n {
            m.add_var(format!("x{i}"), VarType::Continuous, 0.0, uppers[i], coeffs[i]);
        }
        let expected: f64 = (0..n).map(|i| if coeffs[i] > 0.0 { coeffs[i] * uppers[i] } else { 0.0 }).sum();
        let sol = solve_lp(&m).unwrap().optimal().unwrap();
        prop_assert!((sol.objective - expected).abs() < 1e-6);
    }

    /// Adding a redundant constraint never changes the LP optimum.
    #[test]
    fn redundant_constraints_do_not_change_lp(
        c1 in 1.0f64..10.0,
        c2 in 1.0f64..10.0,
        cap in 5.0f64..50.0,
    ) {
        let mut m = Model::new(ObjectiveSense::Maximize);
        let x = m.add_var("x", VarType::Continuous, 0.0, f64::INFINITY, c1);
        let y = m.add_var("y", VarType::Continuous, 0.0, f64::INFINITY, c2);
        m.add_constraint("cap", [(x, 1.0), (y, 1.0)], Sense::Le, cap);
        let base = solve_lp(&m).unwrap().optimal().unwrap().objective;
        m.add_constraint("redundant", [(x, 1.0), (y, 1.0)], Sense::Le, cap * 2.0);
        let with_redundant = solve_lp(&m).unwrap().optimal().unwrap().objective;
        prop_assert!((base - with_redundant).abs() < 1e-6);
    }
}
