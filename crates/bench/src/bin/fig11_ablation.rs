//! Figure 11: ablation on the two MILP optimisations of §4.5 —
//! (a) serving throughput with and without cluster pruning, and
//! (b) placement-search wall-clock time with and without heuristic warm
//! starts.
//!
//! ```text
//! cargo run --release -p helix-bench --bin fig11_ablation [--full]
//! ```

use helix_bench::{placement_flow, ExperimentReport, ExperimentScale, ServingSetting};
use helix_cluster::{ClusterProfile, ClusterSpec, ModelConfig};
use helix_core::{
    AnnealingOptions, FlowAnnealingPlanner, IwrrScheduler, MilpPlacementPlanner, Topology,
};
use helix_sim::{ClusterSimulator, SimulationConfig};
use std::time::{Duration, Instant};

fn main() {
    let scale = ExperimentScale::from_args();
    let mut data = serde_json::Map::new();

    // (a) Cluster pruning: plan with and without pruning, compare serving throughput.
    println!("=== Figure 11a: effect of cluster pruning on decode throughput ===");
    println!(
        "{:<12} {:>20} {:>20}",
        "cluster", "pruned placement t/s", "unpruned placement t/s"
    );
    let mut pruning_rows = Vec::new();
    for (name, cluster) in [
        ("24-node", ClusterSpec::geo_distributed_24()),
        ("42-node", ClusterSpec::high_heterogeneity_42()),
    ] {
        let profile = ClusterProfile::analytic(cluster, ModelConfig::llama2_70b());
        let mut throughputs = Vec::new();
        for prune in [Some(12usize), None] {
            let planner = FlowAnnealingPlanner::new(&profile).with_options(AnnealingOptions {
                iterations: scale.planner_iterations(),
                prune_degree: prune,
                ..Default::default()
            });
            let (placement, _) = planner.solve().expect("placement");
            let topology = Topology::plan(&profile, &placement, true).unwrap();
            let scheduler = IwrrScheduler::from_topology(&topology).unwrap();
            let workload =
                helix_bench::experiment_workload(&profile, ServingSetting::Offline, scale, 111);
            let mut sim = ClusterSimulator::new(&topology, Box::new(scheduler));
            let metrics = sim.run(&workload, SimulationConfig::offline(scale.duration_secs()));
            throughputs.push(metrics.decode_throughput());
        }
        println!(
            "{:<12} {:>20.1} {:>20.1}",
            name, throughputs[0], throughputs[1]
        );
        pruning_rows.push(serde_json::json!({
            "cluster": name, "pruned": throughputs[0], "unpruned": throughputs[1],
        }));
    }
    data.insert("pruning".into(), serde_json::json!(pruning_rows));

    // (b) Warm starts: exact MILP on the small study cluster, with and without
    // heuristic warm starts; report wall-clock to reach a comparable solution.
    println!("\n=== Figure 11b: effect of heuristic warm starts on MILP solve time ===");
    let profile =
        ClusterProfile::analytic(ClusterSpec::solver_quality_10(), ModelConfig::llama_30b());
    let budget = match scale {
        ExperimentScale::Quick => Duration::from_secs(45),
        ExperimentScale::Full => Duration::from_secs(300),
    };
    let mut warm_rows = Vec::new();
    for warm in [true, false] {
        let start = Instant::now();
        let mut planner = MilpPlacementPlanner::new(&profile)
            .prune_to_degree(6)
            .warm_start_from_heuristics(warm)
            .time_limit(budget);
        let result = planner.solve();
        let elapsed = start.elapsed().as_secs_f64();
        match result {
            Ok((placement, report)) => {
                println!(
                    "warm start {:>5}: objective {:>8.0} tokens/s (flow check {:>8.0}) in {:>6.1}s, {} nodes",
                    warm,
                    report.objective_tokens_per_sec,
                    placement_flow(&profile, &placement),
                    elapsed,
                    report.nodes_explored
                );
                warm_rows.push(serde_json::json!({
                    "warm_start": warm,
                    "objective": report.objective_tokens_per_sec,
                    "wall_seconds": elapsed,
                    "nodes_explored": report.nodes_explored,
                }));
            }
            Err(e) => {
                println!(
                    "warm start {warm:>5}: no placement within budget ({e}) after {elapsed:.1}s"
                );
                warm_rows.push(serde_json::json!({
                    "warm_start": warm, "objective": 0.0, "wall_seconds": elapsed,
                }));
            }
        }
    }
    data.insert("warm_start".into(), serde_json::json!(warm_rows));

    let report = ExperimentReport::new(
        "fig11_ablation",
        "Figure 11",
        scale,
        serde_json::Value::Object(data),
    );
    if let Ok(path) = report.write() {
        println!("\nwrote {}", path.display());
    }
}
