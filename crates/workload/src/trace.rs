//! JSONL trace loading: replay real request traces through sim and runtime.
//!
//! Each line is one JSON object describing a request:
//!
//! ```json
//! {"arrival_time": 0.5, "prompt_tokens": 512, "output_tokens": 128, "model": 1}
//! ```
//!
//! Field aliases accepted for interoperability with common trace dumps:
//! `arrival_time` | `timestamp` | `arrival` (seconds from trace start,
//! defaults to 0), `prompt_tokens` | `input_tokens` (required),
//! `output_tokens` (required), and the optional `model` tag (defaults to
//! `ModelId(0)`), so single-model traces load unchanged and multi-model
//! traces carry their model mix.
//!
//! Shared-prefix tags are optional: `prefix` | `session` (a non-negative
//! integer naming the shared prompt prefix group) plus an optional
//! `prefix_tokens` count of leading prompt tokens the group shares
//! (defaults to half the prompt when the tag is present, and is clamped to
//! the prompt length).  Traces without these fields load exactly as before
//! (`prefix: None`).
//!
//! Region tags are optional too: `region` | `zone` (a non-negative integer
//! naming the regional cluster the request prefers, for locality-aware
//! front-tier routing).  Traces without the field load with `region: None`
//! and route purely by consistent hashing.

use crate::request::{PrefixId, Request, RequestId};
use crate::Workload;
use helix_cluster::{ModelId, Region};
use std::fmt;
use std::path::Path;

/// Errors produced while loading a JSONL trace.
#[derive(Debug)]
pub enum TraceError {
    /// The file could not be read.
    Io(std::io::Error),
    /// A line was not valid JSON.
    Json {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// A line was valid JSON but not a usable request record.
    InvalidRecord {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace file unreadable: {e}"),
            TraceError::Json { line, message } => {
                write!(f, "trace line {line} is not valid JSON: {message}")
            }
            TraceError::InvalidRecord { line, message } => {
                write!(f, "trace line {line} is not a request record: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl Workload {
    /// Parses a JSONL trace from a string (one JSON object per line; blank
    /// lines and `#` comment lines are skipped).  Request ids are assigned in
    /// input order; the result is sorted by arrival time as usual.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] naming the first malformed line.
    pub fn from_jsonl_str(text: &str) -> Result<Workload, TraceError> {
        let mut requests = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let value: serde_json::Value =
                serde_json::from_str(trimmed).map_err(|e| TraceError::Json {
                    line,
                    message: e.to_string(),
                })?;
            let object = value.as_object().ok_or_else(|| TraceError::InvalidRecord {
                line,
                message: "expected a JSON object".to_string(),
            })?;
            let field = |names: &[&str]| -> Option<f64> {
                names
                    .iter()
                    .find_map(|n| object.get(n))
                    .and_then(|v| v.as_f64())
            };
            let token_count = |names: &[&str]| -> Result<usize, TraceError> {
                let value = field(names).ok_or_else(|| TraceError::InvalidRecord {
                    line,
                    message: format!("missing numeric {}", names.join("/")),
                })?;
                if !value.is_finite() || value < 1.0 {
                    return Err(TraceError::InvalidRecord {
                        line,
                        message: format!("{} must be a positive count, got {value}", names[0]),
                    });
                }
                Ok(value as usize)
            };
            let prompt_tokens = token_count(&["prompt_tokens", "input_tokens"])?;
            let output_tokens = token_count(&["output_tokens"])?;
            let arrival_time = field(&["arrival_time", "timestamp", "arrival"]).unwrap_or(0.0);
            if !arrival_time.is_finite() || arrival_time < 0.0 {
                return Err(TraceError::InvalidRecord {
                    line,
                    message: format!("invalid arrival time {arrival_time}"),
                });
            }
            let model = match object.get("model") {
                None => ModelId::default(),
                Some(v) => ModelId(v.as_u64().ok_or_else(|| TraceError::InvalidRecord {
                    line,
                    message: "model tag must be a non-negative integer".to_string(),
                })? as usize),
            };
            let prefix = match ["prefix", "session"].iter().find_map(|n| object.get(n)) {
                None => None,
                Some(v) => Some(PrefixId(v.as_u64().ok_or_else(|| {
                    TraceError::InvalidRecord {
                        line,
                        message: "prefix/session tag must be a non-negative integer".to_string(),
                    }
                })?)),
            };
            let prefix_tokens = if prefix.is_some() {
                match field(&["prefix_tokens"]) {
                    Some(value) if value.is_finite() && value >= 0.0 => {
                        (value as usize).min(prompt_tokens)
                    }
                    Some(value) => {
                        return Err(TraceError::InvalidRecord {
                            line,
                            message: format!(
                                "prefix_tokens must be a non-negative count, got {value}"
                            ),
                        });
                    }
                    // A prefix tag without an explicit length shares half
                    // the prompt — a usable default for session dumps that
                    // only record the session id.
                    None => prompt_tokens / 2,
                }
            } else {
                0
            };
            let region = match ["region", "zone"].iter().find_map(|n| object.get(n)) {
                None => None,
                Some(v) => Some(Region(v.as_u64().ok_or_else(|| TraceError::InvalidRecord {
                    line,
                    message: "region/zone tag must be a non-negative integer".to_string(),
                })? as u32)),
            };
            requests.push(Request {
                id: requests.len() as RequestId,
                prompt_tokens,
                output_tokens,
                arrival_time,
                model,
                prefix,
                prefix_tokens,
                region,
            });
        }
        Ok(Workload::new(requests))
    }

    /// Loads a JSONL trace from a file; see [`Workload::from_jsonl_str`].
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] on I/O failures or malformed lines.
    pub fn load_jsonl(path: impl AsRef<Path>) -> Result<Workload, TraceError> {
        let text = std::fs::read_to_string(path)?;
        Self::from_jsonl_str(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_records_with_aliases_comments_and_model_tags() {
        let text = r#"
# a comment line
{"arrival_time": 2.0, "prompt_tokens": 100, "output_tokens": 10}
{"timestamp": 1.0, "input_tokens": 50, "output_tokens": 5, "model": 1}

{"arrival": 0.5, "prompt_tokens": 30, "output_tokens": 3, "model": 0}
"#;
        let w = Workload::from_jsonl_str(text).unwrap();
        assert_eq!(w.len(), 3);
        // Sorted by arrival time.
        let arrivals: Vec<f64> = w.iter().map(|r| r.arrival_time).collect();
        assert_eq!(arrivals, vec![0.5, 1.0, 2.0]);
        let models: Vec<ModelId> = w.iter().map(|r| r.model).collect();
        assert_eq!(models, vec![ModelId(0), ModelId(1), ModelId(0)]);
        assert_eq!(w.models(), vec![ModelId(0), ModelId(1)]);
        let per_model = w.per_model(2);
        assert_eq!(per_model[0].len(), 2);
        assert_eq!(per_model[1].len(), 1);
    }

    #[test]
    fn prefix_and_session_aliases_round_trip() {
        let text = r#"
{"arrival_time": 0.0, "prompt_tokens": 100, "output_tokens": 10, "prefix": 3, "prefix_tokens": 64}
{"arrival_time": 1.0, "prompt_tokens": 100, "output_tokens": 10, "session": 3}
{"arrival_time": 2.0, "prompt_tokens": 40, "output_tokens": 4, "prefix": 9, "prefix_tokens": 900}
{"arrival_time": 3.0, "prompt_tokens": 40, "output_tokens": 4}
"#;
        let w = Workload::from_jsonl_str(text).unwrap();
        assert_eq!(w.len(), 4);
        let r = w.requests();
        // Explicit prefix + length.
        assert_eq!(r[0].shared_prefix(), Some((PrefixId(3), 64)));
        // `session` aliases `prefix`; the length defaults to half the prompt.
        assert_eq!(r[1].shared_prefix(), Some((PrefixId(3), 50)));
        // An over-long range is clamped to the prompt.
        assert_eq!(r[2].prefix_tokens, 40);
        // Untagged records stay prefix-free.
        assert_eq!(r[3].shared_prefix(), None);
        assert_eq!(r[3].prefix_tokens, 0);

        // Serde round trip: a workload with prefixes survives JSON and the
        // stripped form equals an untagged parse.
        let json = serde_json::to_string(&w).unwrap();
        let back: Workload = serde_json::from_str(&json).unwrap();
        assert_eq!(back, w);

        // Malformed prefix tags are rejected with the line number.
        let bad = "{\"prompt_tokens\": 10, \"output_tokens\": 1, \"prefix\": -2}";
        assert!(matches!(
            Workload::from_jsonl_str(bad),
            Err(TraceError::InvalidRecord { .. })
        ));
        let bad_len =
            "{\"prompt_tokens\": 10, \"output_tokens\": 1, \"prefix\": 1, \"prefix_tokens\": -5}";
        assert!(matches!(
            Workload::from_jsonl_str(bad_len),
            Err(TraceError::InvalidRecord { .. })
        ));
    }

    #[test]
    fn region_and_zone_aliases_round_trip() {
        use helix_cluster::Region;
        let text = r#"
{"arrival_time": 0.0, "prompt_tokens": 100, "output_tokens": 10, "region": 2}
{"arrival_time": 1.0, "prompt_tokens": 100, "output_tokens": 10, "zone": 0}
{"arrival_time": 2.0, "prompt_tokens": 40, "output_tokens": 4, "region": 1, "prefix": 7}
{"arrival_time": 3.0, "prompt_tokens": 40, "output_tokens": 4}
"#;
        let w = Workload::from_jsonl_str(text).unwrap();
        assert_eq!(w.len(), 4);
        let r = w.requests();
        assert_eq!(r[0].region, Some(Region(2)));
        // `zone` aliases `region`.
        assert_eq!(r[1].region, Some(Region(0)));
        // Region and prefix tags compose on one record.
        assert_eq!(r[2].region, Some(Region(1)));
        assert_eq!(r[2].shared_prefix(), Some((PrefixId(7), 20)));
        // Untagged records stay region-free and route by hashing alone.
        assert_eq!(r[3].region, None);

        // Serde round trip preserves region tags, and pre-region JSON (no
        // `region` key on the request objects) still deserialises.
        let json = serde_json::to_string(&w).unwrap();
        let back: Workload = serde_json::from_str(&json).unwrap();
        assert_eq!(back, w);
        let legacy = r#"{"requests":[{"id":0,"prompt_tokens":8,"output_tokens":2,"arrival_time":0.0,"model":0,"prefix":null,"prefix_tokens":0}]}"#;
        let old: Workload = serde_json::from_str(legacy).unwrap();
        assert_eq!(old.requests()[0].region, None);

        // Malformed region tags are rejected with the line number.
        let bad = "{\"prompt_tokens\": 10, \"output_tokens\": 1, \"region\": -1}";
        assert!(matches!(
            Workload::from_jsonl_str(bad),
            Err(TraceError::InvalidRecord { .. })
        ));
    }

    #[test]
    fn malformed_lines_are_reported_with_line_numbers() {
        let bad_json = "{\"prompt_tokens\": 1, \"output_tokens\": 1}\nnot json";
        match Workload::from_jsonl_str(bad_json) {
            Err(TraceError::Json { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected a JSON error, got {other:?}"),
        }
        let missing = "{\"prompt_tokens\": 1}";
        match Workload::from_jsonl_str(missing) {
            Err(TraceError::InvalidRecord { line, message }) => {
                assert_eq!(line, 1);
                assert!(message.contains("output_tokens"));
            }
            other => panic!("expected an invalid record, got {other:?}"),
        }
        let negative = "{\"prompt_tokens\": 1, \"output_tokens\": 1, \"arrival_time\": -3}";
        assert!(matches!(
            Workload::from_jsonl_str(negative),
            Err(TraceError::InvalidRecord { .. })
        ));
        // Non-positive token counts are rejected, not silently clamped.
        let zero_output = "{\"prompt_tokens\": 10, \"output_tokens\": 0}";
        assert!(matches!(
            Workload::from_jsonl_str(zero_output),
            Err(TraceError::InvalidRecord { .. })
        ));
        let negative_prompt = "{\"prompt_tokens\": -512, \"output_tokens\": 4}";
        assert!(matches!(
            Workload::from_jsonl_str(negative_prompt),
            Err(TraceError::InvalidRecord { .. })
        ));
        let bad_model = "{\"prompt_tokens\": 1, \"output_tokens\": 1, \"model\": -1}";
        assert!(matches!(
            Workload::from_jsonl_str(bad_model),
            Err(TraceError::InvalidRecord { .. })
        ));
        let not_object = "[1, 2, 3]";
        assert!(matches!(
            Workload::from_jsonl_str(not_object),
            Err(TraceError::InvalidRecord { .. })
        ));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir();
        let path = dir.join("helix_trace_test.jsonl");
        std::fs::write(
            &path,
            "{\"arrival_time\": 0.0, \"prompt_tokens\": 8, \"output_tokens\": 4, \"model\": 1}\n",
        )
        .unwrap();
        let w = Workload::load_jsonl(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(w.len(), 1);
        assert_eq!(w.requests()[0].model, ModelId(1));
        assert!(Workload::load_jsonl(dir.join("does_not_exist.jsonl")).is_err());
        assert!(TraceError::from(std::io::Error::other("x"))
            .to_string()
            .contains("unreadable"));
    }
}
