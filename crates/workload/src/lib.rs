//! Synthetic LLM-serving workloads modelled on the Azure Conversation trace.
//!
//! The paper evaluates Helix on the Azure Conversation dataset (§6.2,
//! Fig. 5): 16,657 requests after pruning, average input length 763 tokens,
//! average output length 232 tokens, inputs capped at 2048 and outputs at
//! 1024 tokens.  The real trace is not redistributable, so this crate
//! generates synthetic workloads matched to those published statistics:
//!
//! * [`AzureTraceConfig`] / [`Workload::azure_like`] — log-normal prompt and
//!   output length distributions calibrated to the published means and caps.
//! * [`ArrivalPattern`] — the paper's two settings: *offline* (requests are
//!   all available up front, the cluster runs saturated) and *online*
//!   (arrivals follow a diurnal rate curve scaled to a fraction of the
//!   cluster's peak throughput, 75% in the paper).
//! * [`TraceStatistics`] — the summaries plotted in Fig. 5 (length
//!   distributions and arrival rate over time).

mod arrival;
mod azure;
mod request;
mod trace;

pub use arrival::ArrivalPattern;
pub use azure::AzureTraceConfig;
pub use request::{PrefixId, Request, RequestId, TicketId};
pub use trace::TraceError;

use helix_cluster::ModelId;
use serde::{Deserialize, Serialize};

/// A set of requests with lengths and arrival times, sorted by arrival time.
///
/// # Example
///
/// ```rust
/// use helix_workload::{ArrivalPattern, Workload};
///
/// let workload = Workload::azure_like(1000, 42)
///     .with_arrivals(ArrivalPattern::constant_rate(10.0), 7);
/// assert_eq!(workload.len(), 1000);
/// let stats = workload.statistics();
/// assert!((stats.mean_input_tokens - 763.0).abs() < 80.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    requests: Vec<Request>,
}

impl Workload {
    /// Builds a workload from explicit requests (sorted by arrival time).
    pub fn new(mut requests: Vec<Request>) -> Self {
        requests.sort_by(|a, b| {
            a.arrival_time
                .partial_cmp(&b.arrival_time)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        Workload { requests }
    }

    /// Generates `n` requests with Azure-Conversation-like length statistics
    /// and all arrival times at zero (offline setting).
    pub fn azure_like(n: usize, seed: u64) -> Self {
        AzureTraceConfig::default().generate(n, seed)
    }

    /// Generates a mixed-model workload: `counts[m]` Azure-like requests
    /// tagged `ModelId(m)` for every model of the fleet, with globally unique
    /// request ids.  Arrival times start at zero; use
    /// [`Workload::with_arrivals`] to spread them out.
    pub fn mixed_azure_like(counts: &[usize], seed: u64) -> Self {
        let workloads = counts
            .iter()
            .enumerate()
            .map(|(m, &n)| {
                AzureTraceConfig::default()
                    .generate(n, seed.wrapping_add(m as u64))
                    .with_model(ModelId(m))
            })
            .collect();
        Self::merge(workloads)
    }

    /// Tags every request with `model`.
    pub fn with_model(mut self, model: ModelId) -> Self {
        for r in &mut self.requests {
            r.model = model;
        }
        self
    }

    /// Merges several workloads into one, re-numbering request ids so they
    /// stay globally unique, and re-sorting by arrival time.
    pub fn merge(workloads: Vec<Workload>) -> Self {
        let mut requests: Vec<Request> = Vec::new();
        for w in workloads {
            for mut r in w.requests {
                r.id = requests.len() as RequestId;
                requests.push(r);
            }
        }
        Workload::new(requests)
    }

    /// Splits the workload by model: entry `m` holds the requests tagged
    /// `ModelId(m)` (ids preserved), for `num_models` models.
    pub fn per_model(&self, num_models: usize) -> Vec<Workload> {
        (0..num_models)
            .map(|m| {
                Workload::new(
                    self.requests
                        .iter()
                        .filter(|r| r.model == ModelId(m))
                        .copied()
                        .collect(),
                )
            })
            .collect()
    }

    /// The distinct models requests target, in id order.
    pub fn models(&self) -> Vec<ModelId> {
        let mut models: Vec<ModelId> = self.requests.iter().map(|r| r.model).collect();
        models.sort();
        models.dedup();
        models
    }

    /// Reassigns arrival times according to `pattern`.
    pub fn with_arrivals(mut self, pattern: ArrivalPattern, seed: u64) -> Self {
        pattern.assign(&mut self.requests, seed);
        self.requests.sort_by(|a, b| {
            a.arrival_time
                .partial_cmp(&b.arrival_time)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        self
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The requests, sorted by arrival time.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Iterates over the requests in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &Request> + '_ {
        self.requests.iter()
    }

    /// Truncates the workload to requests arriving before `horizon_secs`.
    pub fn truncate_to_horizon(mut self, horizon_secs: f64) -> Self {
        self.requests.retain(|r| r.arrival_time < horizon_secs);
        self
    }

    /// Keeps only the first `n` requests (by arrival order).
    pub fn take(mut self, n: usize) -> Self {
        self.requests.truncate(n);
        self
    }

    /// Tags a deterministic fraction of requests with shared prompt
    /// prefixes, modelling system prompts and few-shot templates reused
    /// across users.
    ///
    /// Requests are visited in arrival order; request `i` participates when
    /// `⌊(i+1)·share_ratio⌋ > ⌊i·share_ratio⌋`, which spreads participants
    /// evenly without randomness (the same workload and ratio always yield
    /// the same tagging).  Participant `i` joins prefix group `i % groups`
    /// and shares its leading `prefix_len` prompt tokens, clamped so at
    /// least one suffix token remains to prefill (requests with a one-token
    /// prompt are skipped).  A `share_ratio` of `0.0` returns the workload
    /// untouched; `1.0` tags every eligible request.
    pub fn with_shared_prefixes(
        mut self,
        groups: usize,
        prefix_len: usize,
        share_ratio: f64,
    ) -> Self {
        let ratio = share_ratio.clamp(0.0, 1.0);
        if groups == 0 || prefix_len == 0 || ratio <= 0.0 {
            return self;
        }
        let mut participant = 0usize;
        for (i, r) in self.requests.iter_mut().enumerate() {
            let participates = ((i + 1) as f64 * ratio).floor() > (i as f64 * ratio).floor()
                && r.prompt_tokens > 1;
            if participates {
                r.prefix = Some(PrefixId((participant % groups) as u64));
                r.prefix_tokens = prefix_len.min(r.prompt_tokens - 1);
                participant += 1;
            }
        }
        self
    }

    /// Tags requests with preferred regions round-robin by arrival order:
    /// request `i` prefers `regions[i % regions.len()]` — a deterministic
    /// stand-in for user locality.  An empty slice leaves the workload
    /// untouched; see [`Request::region`] for how front tiers use the tag.
    pub fn with_regions(mut self, regions: &[helix_cluster::Region]) -> Self {
        if regions.is_empty() {
            return self;
        }
        for (i, r) in self.requests.iter_mut().enumerate() {
            r.region = Some(regions[i % regions.len()]);
        }
        self
    }

    /// Strips every shared-prefix tag, yielding the cache-blind equivalent
    /// of the workload: identical token counts and arrivals, but no request
    /// can share KV pages or skip prefill work.  The baseline side of
    /// cache-aware vs cache-blind comparisons.
    pub fn without_prefixes(mut self) -> Self {
        for r in &mut self.requests {
            r.prefix = None;
            r.prefix_tokens = 0;
        }
        self
    }

    /// Summary statistics (Fig. 5).
    pub fn statistics(&self) -> TraceStatistics {
        TraceStatistics::from_requests(&self.requests)
    }

    /// Total number of output (decode) tokens across all requests.
    pub fn total_output_tokens(&self) -> u64 {
        self.requests.iter().map(|r| r.output_tokens as u64).sum()
    }

    /// Total number of prompt tokens across all requests.
    pub fn total_prompt_tokens(&self) -> u64 {
        self.requests.iter().map(|r| r.prompt_tokens as u64).sum()
    }
}

/// Summary statistics of a workload (paper Fig. 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStatistics {
    /// Number of requests.
    pub num_requests: usize,
    /// Mean prompt length in tokens.
    pub mean_input_tokens: f64,
    /// Mean output length in tokens.
    pub mean_output_tokens: f64,
    /// Maximum prompt length.
    pub max_input_tokens: usize,
    /// Maximum output length.
    pub max_output_tokens: usize,
    /// Histogram of prompt lengths (bucket width 128 tokens).
    pub input_histogram: Vec<usize>,
    /// Histogram of output lengths (bucket width 64 tokens).
    pub output_histogram: Vec<usize>,
    /// Requests arriving in each minute of the trace.
    pub arrivals_per_minute: Vec<usize>,
}

impl TraceStatistics {
    /// Bucket width of [`TraceStatistics::input_histogram`].
    pub const INPUT_BUCKET: usize = 128;
    /// Bucket width of [`TraceStatistics::output_histogram`].
    pub const OUTPUT_BUCKET: usize = 64;

    fn from_requests(requests: &[Request]) -> Self {
        let n = requests.len().max(1) as f64;
        let mean_input_tokens = requests.iter().map(|r| r.prompt_tokens as f64).sum::<f64>() / n;
        let mean_output_tokens = requests.iter().map(|r| r.output_tokens as f64).sum::<f64>() / n;
        let max_input_tokens = requests.iter().map(|r| r.prompt_tokens).max().unwrap_or(0);
        let max_output_tokens = requests.iter().map(|r| r.output_tokens).max().unwrap_or(0);
        let mut input_histogram = vec![0usize; max_input_tokens / Self::INPUT_BUCKET + 1];
        let mut output_histogram = vec![0usize; max_output_tokens / Self::OUTPUT_BUCKET + 1];
        for r in requests {
            input_histogram[r.prompt_tokens / Self::INPUT_BUCKET] += 1;
            output_histogram[r.output_tokens / Self::OUTPUT_BUCKET] += 1;
        }
        let max_minute = requests
            .iter()
            .map(|r| (r.arrival_time / 60.0).floor() as usize)
            .max()
            .unwrap_or(0);
        let mut arrivals_per_minute = vec![0usize; max_minute + 1];
        for r in requests {
            arrivals_per_minute[(r.arrival_time / 60.0).floor() as usize] += 1;
        }
        TraceStatistics {
            num_requests: requests.len(),
            mean_input_tokens,
            mean_output_tokens,
            max_input_tokens,
            max_output_tokens,
            input_histogram,
            output_histogram,
            arrivals_per_minute,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn azure_like_matches_published_statistics() {
        let w = Workload::azure_like(16_657, 1);
        let stats = w.statistics();
        assert_eq!(stats.num_requests, 16_657);
        // Paper: average input 763, average output 232, caps 2048/1024.
        assert!(
            (stats.mean_input_tokens - 763.0).abs() < 60.0,
            "{}",
            stats.mean_input_tokens
        );
        assert!(
            (stats.mean_output_tokens - 232.0).abs() < 25.0,
            "{}",
            stats.mean_output_tokens
        );
        assert!(stats.max_input_tokens <= 2048);
        assert!(stats.max_output_tokens <= 1024);
        // Every request has at least one prompt token and one output token.
        assert!(w
            .iter()
            .all(|r| r.prompt_tokens >= 1 && r.output_tokens >= 1));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Workload::azure_like(100, 7);
        let b = Workload::azure_like(100, 7);
        let c = Workload::azure_like(100, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn arrival_patterns_sort_and_truncate() {
        let w = Workload::azure_like(500, 3).with_arrivals(ArrivalPattern::constant_rate(5.0), 9);
        let times: Vec<f64> = w.iter().map(|r| r.arrival_time).collect();
        assert!(times.windows(2).all(|p| p[0] <= p[1]));
        // Roughly 500 requests at 5 req/s -> about 100 seconds.
        assert!(*times.last().unwrap() > 50.0 && *times.last().unwrap() < 200.0);
        let truncated = w.clone().truncate_to_horizon(10.0);
        assert!(truncated.len() < w.len());
        assert!(truncated.iter().all(|r| r.arrival_time < 10.0));
        let first = w.clone().take(10);
        assert_eq!(first.len(), 10);
    }

    #[test]
    fn statistics_histograms_sum_to_request_count() {
        let w = Workload::azure_like(2000, 5);
        let stats = w.statistics();
        assert_eq!(stats.input_histogram.iter().sum::<usize>(), 2000);
        assert_eq!(stats.output_histogram.iter().sum::<usize>(), 2000);
        assert_eq!(stats.arrivals_per_minute.iter().sum::<usize>(), 2000);
        assert!(w.total_output_tokens() > 0);
        assert!(w.total_prompt_tokens() > w.total_output_tokens());
    }

    #[test]
    fn mixed_model_workloads_merge_split_and_stay_unique() {
        let w = Workload::mixed_azure_like(&[30, 20], 5);
        assert_eq!(w.len(), 50);
        assert_eq!(w.models(), vec![ModelId(0), ModelId(1)]);
        // Ids are globally unique.
        let mut ids: Vec<RequestId> = w.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 50);
        let per_model = w.per_model(2);
        assert_eq!(per_model[0].len(), 30);
        assert_eq!(per_model[1].len(), 20);
        assert!(per_model[0].iter().all(|r| r.model == ModelId(0)));
        assert!(per_model[1].iter().all(|r| r.model == ModelId(1)));
        // Tagging is total.
        let tagged = Workload::azure_like(10, 1).with_model(ModelId(3));
        assert!(tagged.iter().all(|r| r.model == ModelId(3)));
        assert_eq!(tagged.models(), vec![ModelId(3)]);
        // Merging preserves arrival ordering.
        let merged = Workload::merge(vec![
            Workload::azure_like(5, 2).with_arrivals(ArrivalPattern::constant_rate(1.0), 3),
            Workload::azure_like(5, 4).with_arrivals(ArrivalPattern::constant_rate(2.0), 5),
        ]);
        let times: Vec<f64> = merged.iter().map(|r| r.arrival_time).collect();
        assert!(times.windows(2).all(|p| p[0] <= p[1]));
    }

    #[test]
    fn shared_prefix_tagging_is_deterministic_and_ratio_scaled() {
        let base = Workload::azure_like(200, 11);
        // Ratio 0 leaves the workload bit-identical.
        assert_eq!(base.clone().with_shared_prefixes(4, 64, 0.0), base);
        // Ratio 1 tags every request with a multi-token prompt.
        let all = base.clone().with_shared_prefixes(4, 64, 1.0);
        for r in all.iter() {
            if r.prompt_tokens > 1 {
                let (prefix, shared) = r.shared_prefix().expect("tagged");
                assert!(prefix.0 < 4);
                assert_eq!(shared, 64.min(r.prompt_tokens - 1));
                assert!(r.suffix_tokens() >= 1, "a suffix token always remains");
            } else {
                assert_eq!(r.shared_prefix(), None);
            }
        }
        // A 50% ratio tags about half, spread over all groups, and the same
        // call is deterministic.
        let half = base.clone().with_shared_prefixes(4, 64, 0.5);
        let tagged = half.iter().filter(|r| r.prefix.is_some()).count();
        assert!((90..=100).contains(&tagged), "tagged {tagged} of 200");
        let groups: std::collections::BTreeSet<u64> =
            half.iter().filter_map(|r| r.prefix.map(|p| p.0)).collect();
        assert_eq!(groups.len(), 4);
        assert_eq!(half, base.clone().with_shared_prefixes(4, 64, 0.5));
        // Stripping restores the cache-blind workload exactly.
        assert_eq!(half.without_prefixes(), base);
    }

    #[test]
    fn empty_workload_is_harmless() {
        let w = Workload::new(vec![]);
        assert!(w.is_empty());
        let stats = w.statistics();
        assert_eq!(stats.num_requests, 0);
        assert_eq!(stats.mean_input_tokens, 0.0);
    }
}
