//! Warm online re-planning vs cold from-scratch fleet planning on the
//! paper's 24-node cluster serving two models (LLaMA 30B + LLaMA 13B).
//!
//! The claim under test: a single-node delta (or a changed observation on
//! one node) should cost far less through [`FleetTopology::replan`] — which
//! re-derives shares only for the touched node and re-solves only the
//! affected model (warm standing evaluator + one deterministic
//! materialisation) — than re-running [`FleetTopology::plan`] over every
//! model of the fleet.
//!
//! Run with `cargo bench -p helix-bench --bench replan`; results are
//! recorded in `BENCH_replan.json` at the repository root.

use criterion::{criterion_group, criterion_main, Criterion};
use helix_cluster::{ClusterProfile, ClusterSpec, ModelConfig, ModelId};
use helix_core::fleet::{
    fleet_profiles, FleetAnnealingOptions, FleetAnnealingPlanner, FleetTopology,
};
use helix_core::{LayerRange, NodeObservations, PlacementDelta};
use std::hint::black_box;

fn two_model_profiles() -> Vec<ClusterProfile> {
    fleet_profiles(
        &ClusterSpec::single_cluster_24(),
        &[ModelConfig::llama_30b(), ModelConfig::llama_13b()],
    )
}

fn planned_fleet(
    profiles: &[ClusterProfile],
) -> (helix_core::fleet::FleetPlacement, FleetTopology) {
    let planner = FleetAnnealingPlanner::new(profiles).with_options(FleetAnnealingOptions {
        iterations: 1000,
        ..Default::default()
    });
    let (placement, _) = planner.solve().unwrap();
    let fleet = FleetTopology::plan(profiles, &placement, true).unwrap();
    (placement, fleet)
}

/// A one-layer shrink of some model-1 node that keeps the placement valid.
fn single_node_delta(
    profiles: &[ClusterProfile],
    placement: &helix_core::fleet::FleetPlacement,
) -> (PlacementDelta, PlacementDelta) {
    let (node, range) = placement.placements()[1]
        .iter()
        .find(|(node, range)| {
            range.len() > 1 && {
                let mut mutated = placement.placements()[1].clone();
                mutated.assign(*node, LayerRange::new(range.start, range.end - 1));
                mutated.has_complete_pipeline(profiles[1].model().num_layers)
                    && mutated.validate(&profiles[1]).is_ok()
            }
        })
        .expect("some range is shrinkable");
    let shrink = PlacementDelta::new().assign(
        ModelId(1),
        node,
        LayerRange::new(range.start, range.end - 1),
    );
    let restore = PlacementDelta::new().assign(ModelId(1), node, range);
    (shrink, restore)
}

fn bench_replan_vs_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("replan_24_node_2_model");
    group.sample_size(20);
    let profiles = two_model_profiles();
    let (placement, fleet) = planned_fleet(&profiles);

    // Cold baseline: full fleet plan from scratch (what the one-shot
    // pipeline would redo after any drift).
    group.bench_function("cold_full_plan", |b| {
        b.iter(|| {
            black_box(
                FleetTopology::plan(&profiles, &placement, true)
                    .unwrap()
                    .total_flow_value(),
            )
        })
    });

    // Warm: a single-node placement delta toggled back and forth on the
    // standing fleet — shares re-derived for one node, one model re-solved.
    let (shrink, restore) = single_node_delta(&profiles, &placement);
    let none = NodeObservations::new();
    let mut standing = fleet.clone();
    // Build the standing evaluator outside the timing loop (first re-plan
    // pays the one-time construction).
    standing.replan(&shrink, &none).unwrap();
    standing.replan(&restore, &none).unwrap();
    let mut flip = false;
    group.bench_function("warm_replan_single_node_delta", |b| {
        b.iter(|| {
            flip = !flip;
            let delta = if flip { &shrink } else { &restore };
            black_box(standing.replan(delta, &none).unwrap().warm_flow_values[0])
        })
    });

    // Warm: an observation-only re-plan (a node's measured speed halves) —
    // the steady-state cost of the feedback loop's firing.
    let slow_node = placement.placements()[0].iter().next().unwrap().0;
    let mut observed = NodeObservations::new();
    observed.record(slow_node, ModelId(0), 100.0, 0.5, 0.9);
    let mut standing = fleet.clone();
    standing.replan(&PlacementDelta::new(), &observed).unwrap();
    standing.replan(&PlacementDelta::new(), &none).unwrap();
    let mut flip = false;
    group.bench_function("warm_replan_observation_only", |b| {
        b.iter(|| {
            flip = !flip;
            let obs = if flip { &observed } else { &none };
            black_box(
                standing
                    .replan(&PlacementDelta::new(), obs)
                    .unwrap()
                    .warm_flow_values[0],
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_replan_vs_plan);
criterion_main!(benches);
