//! Offline stub of the `rand_distr` API surface this workspace uses:
//! [`Distribution`], [`LogNormal`] and [`Exp`].  Sampling uses inverse
//! transform (Exp) and Box-Muller (LogNormal).  See `vendor/README.md`.

use rand::{Rng, RngCore};
use std::fmt;

/// Error returned when a distribution is constructed with bad parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid distribution parameter")
    }
}

impl std::error::Error for Error {}

/// A probability distribution over `T`.
pub trait Distribution<T> {
    /// Draws one value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Draws one standard normal variate via Box-Muller.
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal distribution: `exp(mu + sigma * Z)` with `Z ~ N(0, 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal<T> {
    mu: T,
    sigma: T,
}

impl LogNormal<f64> {
    /// Creates a log-normal distribution with the given location `mu` and
    /// scale `sigma` of the underlying normal.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] if `sigma` is negative or not finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if sigma.is_nan() || sigma < 0.0 || !sigma.is_finite() || !mu.is_finite() {
            return Err(Error);
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Exponential distribution with rate `lambda` (mean `1 / lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp<T> {
    lambda: T,
}

impl Exp<f64> {
    /// Creates an exponential distribution with rate `lambda`.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] if `lambda` is not strictly positive and finite.
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(Error);
        }
        Ok(Exp { lambda })
    }
}

impl Distribution<f64> for Exp<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen::<f64>();
        -(1.0 - u).max(f64::MIN_POSITIVE).ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exp_mean_matches_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Exp::new(2.0).unwrap();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!(Exp::new(0.0).is_err());
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let n = 20_001;
        let mut samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[n / 2];
        assert!((median - 1.0f64.exp()).abs() < 0.15, "median {median}");
        assert!(LogNormal::new(0.0, -1.0).is_err());
        assert!(samples.iter().all(|&s| s > 0.0));
    }
}
