//! Consistent-hash ring over regions, with virtual nodes and health weights.
//!
//! The front tier maps every request to one regional cluster.  A consistent
//! hash keeps the mapping stable as regions come and go: each region owns
//! `vnodes_per_region` pseudo-random points on a `u64` ring, and a key routes
//! to the region owning the first point at or after the key's hash (wrapping).
//! Removing a region only re-routes the keys it owned; adding one only steals
//! a proportional slice from each survivor — no global reshuffle, so prefix
//! affinity and per-region KV residency survive membership churn.
//!
//! Weights in `[0, 1]` scale a region's virtual-node count: a Degraded region
//! keeps a reduced share of new traffic, a Down region (weight 0) drops off
//! the ring entirely.  Everything is deterministic — the same seed, regions
//! and weights always produce the bit-identical ring.

use helix_cluster::Region;
use std::collections::BTreeMap;

/// SplitMix64 finaliser: a fast, high-quality 64-bit mixing function.  Used
/// instead of `std`'s `DefaultHasher` because the ring must be reproducible
/// across processes and Rust versions (`DefaultHasher` makes no such
/// promise, and bit-identical region maps are part of the contract).
pub fn stable_hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Tuning knobs of a [`RegionRing`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingOptions {
    /// Virtual nodes per full-weight region.  More virtual nodes smooth the
    /// key distribution (the classic consistent-hashing variance argument)
    /// at a small lookup cost; 64 keeps the per-region share within a few
    /// percent of fair for realistic region counts.
    pub vnodes_per_region: usize,
    /// Seed mixed into every ring position, so independent deployments
    /// shuffle differently while any one deployment is reproducible.
    pub seed: u64,
}

impl Default for RingOptions {
    fn default() -> Self {
        RingOptions {
            vnodes_per_region: 64,
            seed: 0x0048_454C_4958_u64, // "HELIX"
        }
    }
}

/// A consistent-hash ring mapping `u64` keys to [`Region`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionRing {
    options: RingOptions,
    /// Routing weight per region, clamped to `[0, 1]`.
    weights: BTreeMap<Region, f64>,
    /// Ring points sorted by position; ties broken by region id so rebuilds
    /// are order-independent.
    points: Vec<(u64, Region)>,
}

impl RegionRing {
    /// Builds a ring over `regions` at full weight.
    pub fn new(regions: &[Region], options: RingOptions) -> Self {
        let mut ring = RegionRing {
            options,
            weights: regions.iter().map(|&r| (r, 1.0)).collect(),
            points: Vec::new(),
        };
        ring.rebuild();
        ring
    }

    /// Sets `region`'s routing weight (clamped to `[0, 1]`; `0` removes its
    /// points) and rebuilds the ring.  Unknown regions are added.
    pub fn set_weight(&mut self, region: Region, weight: f64) {
        self.weights.insert(region, weight.clamp(0.0, 1.0));
        self.rebuild();
    }

    /// Removes `region` from the ring entirely.
    pub fn remove(&mut self, region: Region) {
        self.weights.remove(&region);
        self.rebuild();
    }

    /// The regions currently holding at least one ring point, in id order.
    pub fn active_regions(&self) -> Vec<Region> {
        let mut regions: Vec<Region> = self.points.iter().map(|&(_, r)| r).collect();
        regions.sort();
        regions.dedup();
        regions
    }

    /// Current weight of `region`, if registered.
    pub fn weight(&self, region: Region) -> Option<f64> {
        self.weights.get(&region).copied()
    }

    /// Whether no region holds any point (every region removed or weighted
    /// to zero).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of ring points (≈ active regions × weighted virtual nodes).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Routes a pre-hashed key: the region owning the first ring point at or
    /// after `stable_hash64(key)`, wrapping past the top.  `None` only when
    /// the ring is empty.
    pub fn route(&self, key: u64) -> Option<Region> {
        if self.points.is_empty() {
            return None;
        }
        let position = stable_hash64(key);
        let idx = self.points.partition_point(|&(p, _)| p < position);
        Some(self.points[idx % self.points.len()].1)
    }

    /// The full key → region assignment for a batch of keys — what the
    /// conformance suite compares bit-for-bit across seeds and surfaces.
    pub fn assignment(&self, keys: impl IntoIterator<Item = u64>) -> Vec<Option<Region>> {
        keys.into_iter().map(|k| self.route(k)).collect()
    }

    fn rebuild(&mut self) {
        self.points.clear();
        for (&region, &weight) in &self.weights {
            let vnodes = if weight <= 0.0 {
                0
            } else {
                // At least one point while routable, so a tiny weight still
                // keeps the region reachable for affinity-pinned traffic.
                ((self.options.vnodes_per_region as f64 * weight).round() as usize).max(1)
            };
            for vnode in 0..vnodes {
                let point = stable_hash64(
                    self.options.seed ^ stable_hash64(((region.0 as u64) << 32) | vnode as u64),
                );
                self.points.push((point, region));
            }
        }
        self.points.sort_unstable_by_key(|&(p, r)| (p, r));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regions(n: u32) -> Vec<Region> {
        (0..n).map(Region).collect()
    }

    #[test]
    fn same_seed_is_bit_identical_and_seeds_differ() {
        let a = RegionRing::new(&regions(5), RingOptions::default());
        let b = RegionRing::new(&regions(5), RingOptions::default());
        assert_eq!(a, b);
        let map_a = a.assignment(0..10_000u64);
        assert_eq!(map_a, b.assignment(0..10_000u64));
        let c = RegionRing::new(
            &regions(5),
            RingOptions {
                seed: 7,
                ..Default::default()
            },
        );
        assert_ne!(map_a, c.assignment(0..10_000u64));
    }

    #[test]
    fn keys_spread_roughly_evenly() {
        let ring = RegionRing::new(&regions(4), RingOptions::default());
        let mut counts = BTreeMap::new();
        for key in 0..40_000u64 {
            *counts.entry(ring.route(key).unwrap()).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 4);
        for (&region, &count) in &counts {
            // 64 virtual nodes keep every region within ~2x of fair share.
            assert!(
                (5_000..=20_000).contains(&count),
                "{region} got {count} of 40000"
            );
        }
    }

    #[test]
    fn removing_a_region_only_moves_its_keys() {
        let full = RegionRing::new(&regions(4), RingOptions::default());
        let mut reduced = full.clone();
        reduced.remove(Region(2));
        let mut moved = 0usize;
        for key in 0..20_000u64 {
            let before = full.route(key).unwrap();
            let after = reduced.route(key).unwrap();
            assert_ne!(after, Region(2));
            if before != after {
                // Only keys the dead region owned may move.
                assert_eq!(before, Region(2), "key {key} moved needlessly");
                moved += 1;
            }
        }
        assert!(moved > 0, "the removed region owned some keys");
    }

    #[test]
    fn weights_scale_the_share_and_zero_drops_out() {
        let mut ring = RegionRing::new(&regions(3), RingOptions::default());
        ring.set_weight(Region(1), 0.25);
        let mut degraded_share = 0usize;
        for key in 0..30_000u64 {
            if ring.route(key).unwrap() == Region(1) {
                degraded_share += 1;
            }
        }
        // Weight 0.25 of 3 regions → expected share ≈ 1/9 of keys.
        assert!(
            degraded_share < 30_000 / 5,
            "degraded region still owns {degraded_share}"
        );
        ring.set_weight(Region(1), 0.0);
        assert!((0..30_000u64).all(|k| ring.route(k).unwrap() != Region(1)));
        assert_eq!(ring.active_regions(), vec![Region(0), Region(2)]);
        ring.set_weight(Region(0), 0.0);
        ring.set_weight(Region(2), 0.0);
        assert!(ring.is_empty());
        assert_eq!(ring.route(1), None);
        // Restoring a weight brings the region's original points back.
        ring.set_weight(Region(2), 1.0);
        assert_eq!(ring.active_regions(), vec![Region(2)]);
        assert_eq!(ring.weight(Region(2)), Some(1.0));
        assert!(!ring.is_empty());
    }
}
