//! Criterion benchmarks for the discrete-event serving simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use helix_cluster::{ClusterProfile, ClusterSpec, ModelConfig};
use helix_core::{heuristics, IwrrScheduler, Topology};
use helix_sim::{ClusterSimulator, SimulationConfig};
use helix_workload::{ArrivalPattern, AzureTraceConfig};
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let profile =
        ClusterProfile::analytic(ClusterSpec::solver_quality_10(), ModelConfig::llama_30b());
    let placement = heuristics::petals_placement(&profile).unwrap();
    let topology = Topology::plan(&profile, &placement, true).unwrap();
    let trace = AzureTraceConfig {
        mean_input_tokens: 128.0,
        mean_output_tokens: 32.0,
        max_input_tokens: 512,
        max_output_tokens: 64,
        ..Default::default()
    };
    let mut group = c.benchmark_group("simulate_offline_serving");
    group.sample_size(10);
    for &n in &[50usize, 150] {
        let workload = trace
            .generate(n, 9)
            .with_arrivals(ArrivalPattern::Offline, 10);
        group.bench_with_input(BenchmarkId::from_parameter(n), &workload, |b, w| {
            b.iter(|| {
                let scheduler = IwrrScheduler::from_topology(&topology).unwrap();
                let mut sim = ClusterSimulator::new(&topology, Box::new(scheduler));
                black_box(sim.run(w, SimulationConfig::offline(120.0)).decode_tokens)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
