//! Incremental max-flow evaluation of single-node placement moves.
//!
//! The annealing planner's hot loop evaluates thousands of candidate
//! placements that each differ from the current one at **exactly one node**.
//! Rebuilding the flow graph and re-solving max flow from scratch for every
//! candidate — as [`FlowAnnealingPlanner::evaluate`] does — redoes `O(V+E)`
//! allocation and a full preflow-push per iteration.
//!
//! [`IncrementalFlowEvaluator`] instead keeps **one standing
//! [`FlowNetwork`]** containing every node and every candidate connection,
//! with invalid/unassigned edges held at capacity 0.  A single-node move then
//! touches only the edges incident to that node
//! ([`FlowNetwork::set_capacity`]) and re-solves **warm** from the previous
//! flow ([`FlowNetwork::resolve_from_residual`]).
//!
//! Link capacities are clamped to a *placement-independent* bound (the sum of
//! every node's best-case throughput) instead of the per-placement sum the
//! cold builder uses.  Any clamp at least as large as the current sum of node
//! capacities leaves the max-flow value unchanged — every unit of flow
//! crosses a `c_in → c_out` edge and the connection rule keeps the link graph
//! acyclic, so no link can carry more than the node-capacity sum — which is
//! why warm and cold evaluations agree (up to float tolerance) while the
//! standing network never needs re-clamping.
//!
//! [`FlowAnnealingPlanner::evaluate`]: crate::FlowAnnealingPlanner::evaluate

use crate::error::HelixError;
use crate::flow_graph::FlowGraphBuilder;
use crate::placement::{LayerRange, ModelPlacement};
use helix_cluster::{ClusterProfile, NodeId};
use helix_maxflow::{EdgeId, FlowNetwork, FlowSnapshot, MaxFlowAlgorithm, NodeId as FlowNodeId};
use std::collections::HashMap;

/// How a rejected move is rolled back by
/// [`IncrementalFlowEvaluator::restore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RollbackStrategy {
    /// Restore only the arena edges the move actually touched, recorded by
    /// the [`FlowNetwork`] delta undo-log.  O(touched) per rollback — a move
    /// whose warm re-solve touched nothing rolls back for free.  The default.
    #[default]
    DeltaUndoLog,
    /// Restore a full copy of every edge taken before the move.  O(E) per
    /// move regardless of how little the move perturbed; kept as an
    /// independent cross-check of the undo-log and for benchmarking the win.
    FullSnapshot,
}

/// A standing flow network over the whole candidate edge set, supporting
/// cheap single-node placement moves with warm-started re-solving.
///
/// The evaluator owns a copy of its profile so long-lived surfaces (the
/// fleet's standing per-model evaluators used by online re-planning) can hold
/// one without borrowing, and so [`IncrementalFlowEvaluator::rebase`] can
/// swap in a re-scaled profile when observed node speeds change.
#[derive(Debug, Clone)]
pub struct IncrementalFlowEvaluator {
    profile: ClusterProfile,
    partial_inference: bool,
    algorithm: MaxFlowAlgorithm,
    network: FlowNetwork,
    source: FlowNodeId,
    sink: FlowNodeId,
    /// `c_in → c_out` edge per cluster node (indexed by node index).
    node_edges: Vec<EdgeId>,
    /// `source → c_in` edge per cluster node.
    entry_edges: Vec<EdgeId>,
    /// `c_out → sink` edge per cluster node.
    exit_edges: Vec<EdgeId>,
    /// Raw (unclamped) token capacity of each coordinator edge when valid;
    /// clamped against `link_bound` whenever written into the network.
    entry_caps: Vec<f64>,
    exit_caps: Vec<f64>,
    /// Placement-independent clamp applied to coordinator/link capacities.
    link_bound: f64,
    /// Candidate node→node connections with their edge and raw capacity.
    link_edges: HashMap<(NodeId, NodeId), (EdgeId, f64)>,
    /// Candidate connections incident to each node (both directions),
    /// indexed by node index.
    incident: Vec<Vec<(NodeId, NodeId)>>,
    placement: ModelPlacement,
    value: f64,
    /// Number of warm (incremental) re-solves performed.
    warm_solves: u64,
    /// Single-level undo state captured by the last `assign`.
    undo: Option<UndoState>,
    /// How `restore` rolls back the last move's network mutations.
    rollback: RollbackStrategy,
}

/// What `assign` saves so `restore` can roll one move back without solving.
/// The snapshot buffer is reused across moves to stay allocation-free in the
/// annealing hot loop.
#[derive(Debug, Clone)]
struct UndoState {
    node: NodeId,
    prev_range: Option<LayerRange>,
    snapshot: FlowSnapshot,
    value: f64,
    /// Whether the state describes the most recent `assign` (consumed by
    /// `restore`).
    live: bool,
}

impl IncrementalFlowEvaluator {
    /// Builds the standing network for `placement` and solves it once.
    ///
    /// `prune_degree` selects the same candidate connection set the cold
    /// builder would use.
    ///
    /// # Errors
    ///
    /// Returns an error if the initial placement is invalid for the profile.
    pub fn new(
        profile: &ClusterProfile,
        placement: &ModelPlacement,
        partial_inference: bool,
        prune_degree: Option<usize>,
        algorithm: MaxFlowAlgorithm,
    ) -> Result<Self, HelixError> {
        let mut builder = FlowGraphBuilder::new(profile).partial_inference(partial_inference);
        if let Some(degree) = prune_degree {
            builder = builder.prune_to_degree(degree);
        }
        let candidates = builder.candidate_connections();
        Self::with_candidates(
            profile,
            placement,
            partial_inference,
            &candidates,
            algorithm,
        )
    }

    /// Like [`IncrementalFlowEvaluator::new`], but over an **explicit**
    /// candidate connection set instead of the builder's (possibly pruned)
    /// all-pairs set.
    ///
    /// This is how the hierarchical planner's refine stage keeps a standing
    /// network over a 1000-node cluster affordable: it passes only pod-local
    /// pairs plus a bounded set of cross-pod pairs, so the arena stays
    /// O(nodes · pod size) instead of O(nodes²).  `candidates` must not
    /// contain duplicates or self-pairs.
    ///
    /// # Errors
    ///
    /// Returns an error if the initial placement is invalid for the profile.
    pub fn with_candidates(
        profile: &ClusterProfile,
        placement: &ModelPlacement,
        partial_inference: bool,
        candidates: &[(NodeId, NodeId)],
        algorithm: MaxFlowAlgorithm,
    ) -> Result<Self, HelixError> {
        placement.validate(profile)?;
        let cluster = profile.cluster();
        let n = cluster.num_nodes();
        let num_layers = profile.model().num_layers;

        // Placement-independent clamp: the sum of best-case node throughputs
        // upper-bounds the node-capacity sum of every placement.
        let global_bound: f64 = cluster
            .node_ids()
            .map(|id| profile.node_profile(id).throughput(1))
            .sum::<f64>()
            .max(1.0);
        let clamp = |cap: f64| cap.min(global_bound);

        let mut network = FlowNetwork::with_capacity(2 * n + 2, n * 3 + candidates.len());
        let source = network.add_node("source");
        let sink = network.add_node("sink");
        let mut vertices = Vec::with_capacity(n);
        for id in cluster.node_ids() {
            let name = &cluster.node(id).name;
            let cin = network.add_node(format!("{name}.in"));
            let cout = network.add_node(format!("{name}.out"));
            vertices.push((cin, cout));
        }

        let mut node_edges = Vec::with_capacity(n);
        let mut entry_edges = Vec::with_capacity(n);
        let mut exit_edges = Vec::with_capacity(n);
        let mut entry_caps = Vec::with_capacity(n);
        let mut exit_caps = Vec::with_capacity(n);
        for id in cluster.node_ids() {
            let (cin, cout) = vertices[id.index()];
            let range = placement.range(id);
            let node_cap = range
                .map(|r| profile.node_profile(id).throughput(r.len()))
                .unwrap_or(0.0);
            node_edges.push(network.add_edge(cin, cout, node_cap));

            let entry_cap = profile.link_profile(None, Some(id)).tokens_per_sec;
            let entry_on = range.map(|r| r.start == 0).unwrap_or(false);
            entry_edges.push(network.add_edge(
                source,
                cin,
                if entry_on { clamp(entry_cap) } else { 0.0 },
            ));
            entry_caps.push(entry_cap);

            let exit_cap = profile.link_profile(Some(id), None).tokens_per_sec;
            let exit_on = range.map(|r| r.end == num_layers).unwrap_or(false);
            exit_edges.push(network.add_edge(
                cout,
                sink,
                if exit_on { clamp(exit_cap) } else { 0.0 },
            ));
            exit_caps.push(exit_cap);
        }

        let mut link_edges = HashMap::with_capacity(candidates.len());
        let mut incident: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); n];
        for &(a, b) in candidates {
            let cap = profile.link_profile(Some(a), Some(b)).tokens_per_sec;
            let on = placement.connection_valid(a, b, partial_inference);
            let (_, a_out) = vertices[a.index()];
            let (b_in, _) = vertices[b.index()];
            let edge = network.add_edge(a_out, b_in, if on { clamp(cap) } else { 0.0 });
            link_edges.insert((a, b), (edge, cap));
            incident[a.index()].push((a, b));
            incident[b.index()].push((a, b));
        }

        let mut evaluator = IncrementalFlowEvaluator {
            profile: profile.clone(),
            partial_inference,
            algorithm,
            network,
            source,
            sink,
            node_edges,
            entry_edges,
            exit_edges,
            entry_caps,
            exit_caps,
            link_bound: global_bound,
            link_edges,
            incident,
            placement: placement.clone(),
            value: 0.0,
            warm_solves: 0,
            undo: None,
            rollback: RollbackStrategy::default(),
        };
        evaluator.value = evaluator.resolve();
        Ok(evaluator)
    }

    /// Selects how rejected moves are rolled back (default:
    /// [`RollbackStrategy::DeltaUndoLog`]).
    pub fn with_rollback_strategy(mut self, rollback: RollbackStrategy) -> Self {
        self.rollback = rollback;
        self
    }

    /// Number of standing-network arena edges touched by the last `assign`
    /// (capacity updates, flow repair and warm re-solve combined), as
    /// recorded by the delta undo-log.
    ///
    /// Returns 0 after a rollback, and always 0 under
    /// [`RollbackStrategy::FullSnapshot`] (which does not track touches).
    pub fn last_move_touched_edges(&self) -> usize {
        self.network.undo_log_len()
    }

    /// The current placement reflected in the standing network.
    pub fn placement(&self) -> &ModelPlacement {
        &self.placement
    }

    /// The profile the standing network currently prices capacities from.
    pub fn profile(&self) -> &ClusterProfile {
        &self.profile
    }

    /// The max-flow value of the current placement.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Number of warm re-solves performed so far.
    pub fn warm_solves(&self) -> u64 {
        self.warm_solves
    }

    /// Applies a single-node move — assigning `range` to `node` — by
    /// updating only the capacities incident to that node, then re-solving
    /// warm from the standing flow.  Returns the new max-flow value.
    pub fn assign(&mut self, node: NodeId, range: LayerRange) -> f64 {
        let rollback = self.rollback;
        let undo = self.undo.get_or_insert_with(|| UndoState {
            node,
            prev_range: None,
            snapshot: FlowSnapshot::empty(),
            value: 0.0,
            live: false,
        });
        undo.node = node;
        undo.prev_range = self.placement.range(node);
        undo.value = self.value;
        undo.live = true;
        match rollback {
            RollbackStrategy::DeltaUndoLog => self.network.begin_undo_log(),
            RollbackStrategy::FullSnapshot => self.network.snapshot_flows_into(&mut undo.snapshot),
        }
        self.placement.assign(node, range);
        self.refresh_node(node);
        self.value = self.resolve();
        self.value
    }

    /// Reverts `node` to a previous range (or unassigned), the inverse of
    /// [`IncrementalFlowEvaluator::assign`].
    ///
    /// Rolling back the immediately preceding `assign` restores the network
    /// without re-solving — in O(touched edges) under the default
    /// [`RollbackStrategy::DeltaUndoLog`], in O(E) under
    /// [`RollbackStrategy::FullSnapshot`].  Any other revert falls back to a
    /// capacity refresh plus warm re-solve.
    pub fn restore(&mut self, node: NodeId, range: Option<LayerRange>) -> f64 {
        let rollback = self.rollback;
        if let Some(undo) = self.undo.as_mut() {
            if undo.live && undo.node == node && undo.prev_range == range {
                undo.live = false;
                match range {
                    Some(r) => self.placement.assign(node, r),
                    None => self.placement.clear(node),
                }
                let value = undo.value;
                match rollback {
                    RollbackStrategy::DeltaUndoLog => {
                        self.network.rollback_undo_log();
                    }
                    RollbackStrategy::FullSnapshot => {
                        let snapshot = std::mem::replace(&mut undo.snapshot, FlowSnapshot::empty());
                        self.network
                            .restore_flows(&snapshot)
                            .expect("snapshot comes from this network");
                        if let Some(undo) = self.undo.as_mut() {
                            undo.snapshot = snapshot;
                        }
                    }
                }
                self.value = value;
                return self.value;
            }
        }
        // Slow path: this revert does not match the last `assign`, so any
        // saved rollback state no longer describes a rollback of the new
        // state.  Commit the last move's undo-log (its mutations stand) and
        // re-solve.
        if let Some(undo) = self.undo.as_mut() {
            undo.live = false;
        }
        self.network.discard_undo_log();
        match range {
            Some(r) => self.placement.assign(node, r),
            None => self.placement.clear(node),
        }
        self.refresh_node(node);
        self.value = self.resolve();
        self.value
    }

    /// Applies a batched re-plan step in one warm re-solve: swaps in a new
    /// profile (e.g. re-scaled from observed node speeds), applies a set of
    /// placement changes (`None` unassigns a node), refreshes every touched
    /// capacity and re-solves warm from the standing flow.
    ///
    /// `refresh` must list every node whose *profile* entry changed even if
    /// its placement did not — those nodes' `c_in → c_out` capacities are
    /// re-priced from the new profile.  Nodes in `changes` are refreshed
    /// automatically.  The single-move undo state is invalidated (a rebase is
    /// not a move).
    ///
    /// # Panics
    ///
    /// Panics if `profile` describes a different cluster size.
    pub fn rebase(
        &mut self,
        profile: ClusterProfile,
        changes: &[(NodeId, Option<LayerRange>)],
        refresh: &[NodeId],
    ) -> f64 {
        assert_eq!(
            profile.cluster().num_nodes(),
            self.profile.cluster().num_nodes(),
            "rebase must keep the cluster shape"
        );
        if let Some(undo) = self.undo.as_mut() {
            undo.live = false;
        }
        self.network.discard_undo_log();
        // A re-scaled profile can raise node capacities back up (a slowdown
        // that recovered); grow the link clamp monotonically so it always
        // dominates the node-capacity sum.  Growing capacities keeps the
        // standing flow feasible, so the re-solve stays warm.
        let new_bound: f64 = profile
            .cluster()
            .node_ids()
            .map(|id| profile.node_profile(id).throughput(1))
            .sum::<f64>()
            .max(1.0);
        let grow = new_bound > self.link_bound;
        self.profile = profile;
        if grow {
            self.link_bound = new_bound;
        }
        for &(node, range) in changes {
            match range {
                Some(r) => self.placement.assign(node, r),
                None => self.placement.clear(node),
            }
        }
        if grow {
            // The clamp moved: re-price every coordinator/link capacity.
            let ids: Vec<NodeId> = self.profile.cluster().node_ids().collect();
            for id in ids {
                self.refresh_node(id);
            }
        } else {
            let mut touched: Vec<NodeId> = changes
                .iter()
                .map(|&(n, _)| n)
                .chain(refresh.iter().copied())
                .collect();
            touched.sort();
            touched.dedup();
            for node in touched {
                self.refresh_node(node);
            }
        }
        self.value = self.resolve();
        self.value
    }

    /// Recomputes every capacity that depends on `node`'s assigned range:
    /// its `c_in → c_out` edge, its coordinator edges, and the validity of
    /// every candidate connection incident to it.
    fn refresh_node(&mut self, node: NodeId) {
        let num_layers = self.profile.model().num_layers;
        let idx = node.index();
        let range = self.placement.range(node);

        let node_cap = range
            .map(|r| self.profile.node_profile(node).throughput(r.len()))
            .unwrap_or(0.0);
        self.network
            .set_capacity(self.node_edges[idx], node_cap)
            .expect("standing node edge is valid");

        let entry_on = range.map(|r| r.start == 0).unwrap_or(false);
        self.network
            .set_capacity(
                self.entry_edges[idx],
                if entry_on {
                    self.entry_caps[idx].min(self.link_bound)
                } else {
                    0.0
                },
            )
            .expect("standing entry edge is valid");

        let exit_on = range.map(|r| r.end == num_layers).unwrap_or(false);
        self.network
            .set_capacity(
                self.exit_edges[idx],
                if exit_on {
                    self.exit_caps[idx].min(self.link_bound)
                } else {
                    0.0
                },
            )
            .expect("standing exit edge is valid");

        for i in 0..self.incident[idx].len() {
            let (a, b) = self.incident[idx][i];
            let (edge, cap) = self.link_edges[&(a, b)];
            let on = self
                .placement
                .connection_valid(a, b, self.partial_inference);
            self.network
                .set_capacity(edge, if on { cap.min(self.link_bound) } else { 0.0 })
                .expect("standing link edge is valid");
        }
    }

    fn resolve(&mut self) -> f64 {
        self.warm_solves += 1;
        self.network
            .resolve_from_residual(self.source, self.sink, self.algorithm)
            .expect("standing network endpoints are valid")
            .value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::heuristics;
    use helix_cluster::{ClusterSpec, ModelConfig};
    use helix_maxflow::FLOW_EPS;

    fn profile() -> ClusterProfile {
        ClusterProfile::analytic(ClusterSpec::solver_quality_10(), ModelConfig::llama_30b())
    }

    fn cold_value(profile: &ClusterProfile, placement: &ModelPlacement) -> f64 {
        FlowGraphBuilder::new(profile)
            .build(placement)
            .map(|g| g.max_flow().value)
            .unwrap_or(0.0)
    }

    #[test]
    fn initial_value_matches_cold_builder() {
        let profile = profile();
        for placement in [
            heuristics::swarm_placement(&profile).unwrap(),
            heuristics::petals_placement(&profile).unwrap(),
        ] {
            let evaluator = IncrementalFlowEvaluator::new(
                &profile,
                &placement,
                true,
                None,
                MaxFlowAlgorithm::PushRelabel,
            )
            .unwrap();
            let cold = cold_value(&profile, &placement);
            assert!(
                (evaluator.value() - cold).abs() <= FLOW_EPS * (1.0 + cold),
                "warm {} vs cold {}",
                evaluator.value(),
                cold
            );
        }
    }

    #[test]
    fn single_node_moves_track_cold_evaluation() {
        let profile = profile();
        let placement = heuristics::swarm_placement(&profile).unwrap();
        let mut evaluator = IncrementalFlowEvaluator::new(
            &profile,
            &placement,
            true,
            None,
            MaxFlowAlgorithm::Dinic,
        )
        .unwrap();
        let num_layers = profile.model().num_layers;
        // A deterministic tour of single-node moves: resize, shift and
        // replicate ranges across every node.
        let nodes: Vec<NodeId> = profile.cluster().node_ids().collect();
        for (step, &node) in nodes.iter().cycle().take(40).enumerate() {
            let max_layers = profile.node_profile(node).max_layers.min(num_layers);
            if max_layers == 0 {
                continue;
            }
            let len = 1 + (step % max_layers);
            let start = (step * 7) % (num_layers - len + 1);
            let warm = evaluator.assign(node, LayerRange::new(start, start + len));
            let cold = cold_value(&profile, evaluator.placement());
            assert!(
                (warm - cold).abs() <= FLOW_EPS * (1.0 + cold),
                "step {step}: warm {warm} vs cold {cold}"
            );
        }
    }

    #[test]
    fn restore_reverts_a_move_exactly() {
        let profile = profile();
        let placement = heuristics::petals_placement(&profile).unwrap();
        let mut evaluator = IncrementalFlowEvaluator::new(
            &profile,
            &placement,
            true,
            None,
            MaxFlowAlgorithm::PushRelabel,
        )
        .unwrap();
        let before = evaluator.value();
        let node = profile.cluster().node_ids().next().unwrap();
        let old = evaluator.placement().range(node);
        evaluator.assign(node, LayerRange::new(0, 1));
        let after_restore = evaluator.restore(node, old);
        assert!(
            (after_restore - before).abs() <= FLOW_EPS * (1.0 + before),
            "restored {after_restore} vs original {before}"
        );
        assert_eq!(evaluator.placement().range(node), old);
        // The rollback restored a snapshot instead of re-solving.
        assert_eq!(evaluator.warm_solves(), 2);
    }

    #[test]
    fn slow_path_restore_invalidates_the_saved_snapshot() {
        // assign(n1) saves a snapshot; restore(n2) takes the slow path and
        // must invalidate it, so a later restore(n1) cannot replay stale
        // network state.
        let profile = profile();
        let placement = heuristics::swarm_placement(&profile).unwrap();
        let mut evaluator = IncrementalFlowEvaluator::new(
            &profile,
            &placement,
            true,
            None,
            MaxFlowAlgorithm::Dinic,
        )
        .unwrap();
        let nodes: Vec<NodeId> = profile.cluster().node_ids().collect();
        let (n1, n2) = (nodes[0], nodes[1]);
        let (p1, p2) = (placement.range(n1), placement.range(n2));
        evaluator.assign(n1, LayerRange::new(0, 1));
        // Out-of-order revert of a different node: slow path.
        evaluator.restore(n2, Some(LayerRange::new(0, 2)));
        // Reverting n1 now must NOT bring back the pre-restore snapshot
        // (which would undo n2's change in the network but not the
        // placement); the evaluator must stay consistent with a cold solve.
        evaluator.restore(n1, p1);
        let cold = cold_value(&profile, evaluator.placement());
        assert!(
            (evaluator.value() - cold).abs() <= FLOW_EPS * (1.0 + cold),
            "evaluator {} vs cold {} after out-of-order reverts",
            evaluator.value(),
            cold
        );
        // Clean up state for completeness.
        evaluator.restore(n2, p2);
        let cold = cold_value(&profile, evaluator.placement());
        assert!((evaluator.value() - cold).abs() <= FLOW_EPS * (1.0 + cold));
    }

    #[test]
    fn rebase_tracks_a_rescaled_profile_and_placement_changes() {
        // Scale one node down to half speed (an observed slowdown), move
        // another node's range, and unassign a third — one warm re-solve must
        // match the cold evaluation of the new (profile, placement) pair.
        let profile = profile();
        let placement = heuristics::petals_placement(&profile).unwrap();
        let mut evaluator = IncrementalFlowEvaluator::new(
            &profile,
            &placement,
            true,
            None,
            MaxFlowAlgorithm::Dinic,
        )
        .unwrap();
        let solves_before = evaluator.warm_solves();
        let n = profile.cluster().num_nodes();
        let mut shares = vec![1.0; n];
        shares[0] = 0.5;
        let scaled = profile.scaled(&shares, &vec![None; n]);
        let assigned: Vec<NodeId> = placement.iter().map(|(id, _)| id).collect();
        let moved = assigned[1];
        let dropped = *assigned.last().unwrap();
        let changes = vec![(moved, Some(LayerRange::new(0, 2))), (dropped, None)];
        let warm = evaluator.rebase(scaled.clone(), &changes, &[NodeId(0)]);
        assert_eq!(evaluator.warm_solves(), solves_before + 1, "one re-solve");
        assert_eq!(
            evaluator.placement().range(moved),
            Some(LayerRange::new(0, 2))
        );
        assert_eq!(evaluator.placement().range(dropped), None);
        let cold = FlowGraphBuilder::new(&scaled)
            .build(evaluator.placement())
            .map(|g| g.max_flow().value)
            .unwrap_or(0.0);
        assert!(
            (warm - cold).abs() <= FLOW_EPS * (1.0 + cold),
            "warm {warm} vs cold {cold}"
        );
        // Rebasing back up to the unscaled profile grows capacities again;
        // the warm value keeps tracking the cold one.
        let restored = evaluator.rebase(profile.clone(), &[], &[NodeId(0)]);
        let cold = FlowGraphBuilder::new(&profile)
            .build(evaluator.placement())
            .map(|g| g.max_flow().value)
            .unwrap_or(0.0);
        assert!(
            (restored - cold).abs() <= FLOW_EPS * (1.0 + cold),
            "restored {restored} vs cold {cold}"
        );
    }

    #[test]
    fn undo_log_rollback_matches_full_snapshot_rollback() {
        // The delta undo-log and the O(E) snapshot must be interchangeable:
        // drive two evaluators through the same accept/reject move sequence,
        // one per strategy, and demand identical values throughout.
        let profile = profile();
        let placement = heuristics::petals_placement(&profile).unwrap();
        let mut delta = IncrementalFlowEvaluator::new(
            &profile,
            &placement,
            true,
            None,
            MaxFlowAlgorithm::Dinic,
        )
        .unwrap()
        .with_rollback_strategy(RollbackStrategy::DeltaUndoLog);
        let mut snap = IncrementalFlowEvaluator::new(
            &profile,
            &placement,
            true,
            None,
            MaxFlowAlgorithm::Dinic,
        )
        .unwrap()
        .with_rollback_strategy(RollbackStrategy::FullSnapshot);
        let num_layers = profile.model().num_layers;
        let nodes: Vec<NodeId> = profile.cluster().node_ids().collect();
        for (step, &node) in nodes.iter().cycle().take(30).enumerate() {
            let max_layers = profile.node_profile(node).max_layers.min(num_layers);
            if max_layers == 0 {
                continue;
            }
            let len = 1 + (step % max_layers);
            let start = (step * 5) % (num_layers - len + 1);
            let range = LayerRange::new(start, start + len);
            let prev = delta.placement().range(node);
            let a = delta.assign(node, range);
            let b = snap.assign(node, range);
            assert_eq!(a.to_bits(), b.to_bits(), "step {step}: assign diverged");
            if step % 2 == 1 {
                // Reject: both roll back, by different mechanisms.
                let a = delta.restore(node, prev);
                let b = snap.restore(node, prev);
                assert_eq!(a.to_bits(), b.to_bits(), "step {step}: restore diverged");
            }
        }
    }

    #[test]
    fn noop_move_touches_no_edges_and_rolls_back_for_free() {
        // Re-assigning a node the range it already holds changes no capacity:
        // every set_capacity short-circuits and the warm re-solve finds no
        // augmenting path, so the undo-log records nothing.  The rollback of
        // such a move restores zero edges — no O(E) snapshot copy, no
        // allocation (the journal's entry buffer never grows past empty).
        let profile = profile();
        let placement = heuristics::petals_placement(&profile).unwrap();
        let mut evaluator = IncrementalFlowEvaluator::new(
            &profile,
            &placement,
            true,
            None,
            MaxFlowAlgorithm::Dinic,
        )
        .unwrap();
        let before = evaluator.value();
        let (node, range) = placement.iter().next().unwrap();
        for _ in 0..100 {
            let after = evaluator.assign(node, range);
            assert_eq!(after.to_bits(), before.to_bits(), "no-op move moved value");
            assert_eq!(
                evaluator.last_move_touched_edges(),
                0,
                "no-op move touched standing edges"
            );
            evaluator.restore(node, Some(range));
            assert_eq!(evaluator.value().to_bits(), before.to_bits());
        }
    }

    #[test]
    fn explicit_candidate_set_matches_builder_candidates() {
        // with_candidates over the builder's own candidate list must behave
        // exactly like new().
        let profile = profile();
        let placement = heuristics::swarm_placement(&profile).unwrap();
        let candidates = FlowGraphBuilder::new(&profile)
            .partial_inference(true)
            .candidate_connections();
        let explicit = IncrementalFlowEvaluator::with_candidates(
            &profile,
            &placement,
            true,
            &candidates,
            MaxFlowAlgorithm::Dinic,
        )
        .unwrap();
        let implicit = IncrementalFlowEvaluator::new(
            &profile,
            &placement,
            true,
            None,
            MaxFlowAlgorithm::Dinic,
        )
        .unwrap();
        assert_eq!(explicit.value().to_bits(), implicit.value().to_bits());
    }

    #[test]
    fn pruned_candidate_set_matches_cold_pruned_builder() {
        let profile = profile();
        let placement = heuristics::swarm_placement(&profile).unwrap();
        let evaluator = IncrementalFlowEvaluator::new(
            &profile,
            &placement,
            true,
            Some(4),
            MaxFlowAlgorithm::PushRelabel,
        )
        .unwrap();
        let cold = FlowGraphBuilder::new(&profile)
            .prune_to_degree(4)
            .build(&placement)
            .map(|g| g.max_flow().value)
            .unwrap_or(0.0);
        assert!(
            (evaluator.value() - cold).abs() <= FLOW_EPS * (1.0 + cold),
            "warm {} vs cold {}",
            evaluator.value(),
            cold
        );
    }
}
