//! Region discovery and membership: registration, heartbeats, health.
//!
//! The front tier is a fleet of fleets — each regional cluster runs its own
//! coordinator and session, and the [`RegionDirectory`] is the small piece of
//! shared state binding them: regions *register*, *heartbeat* on a fixed
//! cadence, and are classified [`Healthy`](RegionHealth::Healthy),
//! [`Degraded`](RegionHealth::Degraded) or [`Down`](RegionHealth::Down) from
//! missed heartbeats (or by explicit operator override).  Health drives two
//! consumers:
//!
//! * **ring re-weighting** — [`RegionDirectory::routing_weights`] feed the
//!   [`RegionRing`](super::RegionRing), shifting new traffic away from sick
//!   regions without moving keys between healthy ones;
//! * **planner re-runs** — [`RegionDirectory::health_observations`] translate
//!   region health into per-node [`NodeObservations`] so `PodPartitioner` /
//!   `HierarchicalFleetPlanner` re-runs price a degraded region's nodes at
//!   reduced speed and a down region's nodes at the planning floor.

use crate::replan::{NodeObservations, MIN_SPEED_FACTOR};
use helix_cluster::{ClusterSpec, ModelId, Region};
use std::collections::BTreeMap;

/// Health classification of one region, from its heartbeat history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionHealth {
    /// Heartbeating on schedule: full routing weight.
    Healthy,
    /// Missed enough heartbeats to be suspect (or marked by an operator):
    /// reduced routing weight, existing affinity entries stay.
    Degraded,
    /// Missed enough heartbeats to be considered gone: removed from the
    /// ring, pending traffic re-routes, affinity entries drain elsewhere.
    Down,
}

impl RegionHealth {
    /// Routing weight the ring applies for this health state.
    pub fn routing_weight(self) -> f64 {
        match self {
            RegionHealth::Healthy => 1.0,
            RegionHealth::Degraded => 0.25,
            RegionHealth::Down => 0.0,
        }
    }

    /// Whether a front tier may still send *new* requests here.
    pub fn is_routable(self) -> bool {
        !matches!(self, RegionHealth::Down)
    }

    /// The speed factor planner re-runs price this region's nodes at.
    pub fn speed_factor(self) -> f64 {
        match self {
            RegionHealth::Healthy => 1.0,
            RegionHealth::Degraded => 0.5,
            RegionHealth::Down => MIN_SPEED_FACTOR,
        }
    }
}

/// Heartbeat cadence and the missed-beat thresholds for health transitions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MembershipOptions {
    /// Expected seconds between heartbeats.
    pub heartbeat_interval_secs: f64,
    /// Missed consecutive heartbeats before a region counts as Degraded.
    pub degraded_after_missed: u32,
    /// Missed consecutive heartbeats before a region counts as Down.
    pub down_after_missed: u32,
}

impl Default for MembershipOptions {
    fn default() -> Self {
        MembershipOptions {
            heartbeat_interval_secs: 10.0,
            degraded_after_missed: 2,
            down_after_missed: 5,
        }
    }
}

/// What a region announces when it registers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionInfo {
    /// The region's identity.
    pub region: Region,
    /// Compute nodes the regional cluster holds (informational; used by
    /// rebalancing to reason about capacity).
    pub nodes: usize,
    /// Planned serving capacity in tokens/s (0 when unknown).
    pub capacity_tokens_per_sec: f64,
}

impl RegionInfo {
    /// A minimal announcement: identity only.
    pub fn new(region: Region) -> Self {
        RegionInfo {
            region,
            nodes: 0,
            capacity_tokens_per_sec: 0.0,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct RegionEntry {
    info: RegionInfo,
    last_heartbeat: f64,
    /// Operator override: wins over heartbeat-derived health until cleared.
    forced: Option<RegionHealth>,
}

/// The membership table of a multi-region deployment.
///
/// All time is caller-supplied seconds (simulated or wall — the directory
/// does not read a clock), so membership behaves identically over the
/// discrete-event simulator and the threaded runtime.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegionDirectory {
    options: MembershipOptions,
    entries: BTreeMap<Region, RegionEntry>,
}

impl RegionDirectory {
    /// An empty directory with the given thresholds.
    pub fn new(options: MembershipOptions) -> Self {
        RegionDirectory {
            options,
            entries: BTreeMap::new(),
        }
    }

    /// The configured thresholds.
    pub fn options(&self) -> MembershipOptions {
        self.options
    }

    /// Registers (or re-registers) a region, counting as a heartbeat at
    /// `now`.  Re-registration of a known region keeps any operator
    /// override in force — a flapping region that re-announces itself must
    /// not silently escape a planned drain ([`mark_down`](Self::mark_down)'s
    /// contract); only an explicit [`mark_healthy`](Self::mark_healthy)
    /// clears the hold.
    pub fn register(&mut self, info: RegionInfo, now: f64) {
        match self.entries.get_mut(&info.region) {
            Some(entry) => {
                entry.info = info;
                entry.last_heartbeat = entry.last_heartbeat.max(now);
            }
            None => {
                self.entries.insert(
                    info.region,
                    RegionEntry {
                        info,
                        last_heartbeat: now,
                        forced: None,
                    },
                );
            }
        }
    }

    /// Removes a region from the table entirely.
    pub fn deregister(&mut self, region: Region) {
        self.entries.remove(&region);
    }

    /// Records a heartbeat at `now`.  Returns `false` for unknown regions
    /// (they must register first).  A forced override is *not* cleared by a
    /// heartbeat: an operator-downed region stays down until
    /// [`mark_healthy`](Self::mark_healthy) or re-registration.
    pub fn heartbeat(&mut self, region: Region, now: f64) -> bool {
        match self.entries.get_mut(&region) {
            Some(entry) => {
                entry.last_heartbeat = entry.last_heartbeat.max(now);
                true
            }
            None => false,
        }
    }

    /// Operator override: force `region` Down (e.g. a planned drain, or a
    /// failure signal arriving out of band faster than missed heartbeats).
    pub fn mark_down(&mut self, region: Region) {
        if let Some(entry) = self.entries.get_mut(&region) {
            entry.forced = Some(RegionHealth::Down);
        }
    }

    /// Operator override: force `region` Degraded.
    pub fn mark_degraded(&mut self, region: Region) {
        if let Some(entry) = self.entries.get_mut(&region) {
            entry.forced = Some(RegionHealth::Degraded);
        }
    }

    /// Clears any override and refreshes the heartbeat, restoring `region`
    /// to Healthy as of `now`.
    pub fn mark_healthy(&mut self, region: Region, now: f64) {
        if let Some(entry) = self.entries.get_mut(&region) {
            entry.forced = None;
            entry.last_heartbeat = entry.last_heartbeat.max(now);
        }
    }

    /// Health of `region` as of `now`: the operator override if set, else
    /// derived from missed heartbeats.  Unknown regions are Down.
    pub fn health(&self, region: Region, now: f64) -> RegionHealth {
        let Some(entry) = self.entries.get(&region) else {
            return RegionHealth::Down;
        };
        if let Some(forced) = entry.forced {
            return forced;
        }
        let missed = ((now - entry.last_heartbeat) / self.options.heartbeat_interval_secs)
            .max(0.0)
            .floor() as u32;
        if missed >= self.options.down_after_missed {
            RegionHealth::Down
        } else if missed >= self.options.degraded_after_missed {
            RegionHealth::Degraded
        } else {
            RegionHealth::Healthy
        }
    }

    /// All registered regions in id order, with their announcements.
    pub fn regions(&self) -> impl Iterator<Item = &RegionInfo> + '_ {
        self.entries.values().map(|e| &e.info)
    }

    /// Regions a front tier may route new traffic to as of `now`.
    pub fn routable_regions(&self, now: f64) -> Vec<Region> {
        self.entries
            .keys()
            .copied()
            .filter(|&r| self.health(r, now).is_routable())
            .collect()
    }

    /// `(region, ring weight)` pairs as of `now` — the ring re-weighting
    /// input.
    pub fn routing_weights(&self, now: f64) -> Vec<(Region, f64)> {
        self.entries
            .keys()
            .copied()
            .map(|r| (r, self.health(r, now).routing_weight()))
            .collect()
    }

    /// Translates region health into per-node observations for planner
    /// re-runs: every node of a Degraded region measures at half speed and
    /// every node of a Down region at the planning floor, for all `models`.
    /// Healthy regions contribute nothing (analytic shares stand).
    pub fn health_observations(
        &self,
        spec: &ClusterSpec,
        models: usize,
        now: f64,
    ) -> NodeObservations {
        let mut observed = NodeObservations::new();
        for node in spec.nodes() {
            let health = self.health(node.region, now);
            if health == RegionHealth::Healthy || !self.entries.contains_key(&node.region) {
                continue;
            }
            for m in 0..models {
                observed.record(node.id, ModelId(m), 0.0, health.speed_factor(), 1.0);
            }
        }
        observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_cluster::ClusterSpec;

    fn directory() -> RegionDirectory {
        let mut d = RegionDirectory::new(MembershipOptions::default());
        for r in 0..3u32 {
            d.register(RegionInfo::new(Region(r)), 0.0);
        }
        d
    }

    #[test]
    fn heartbeats_drive_health_transitions() {
        let mut d = directory();
        assert_eq!(d.health(Region(0), 0.0), RegionHealth::Healthy);
        // Region 1 keeps heartbeating; region 0 goes silent at t=0.
        for t in [10.0, 20.0, 30.0, 40.0, 50.0] {
            assert!(d.heartbeat(Region(1), t));
        }
        assert_eq!(d.health(Region(0), 15.0), RegionHealth::Healthy);
        assert_eq!(d.health(Region(0), 25.0), RegionHealth::Degraded);
        assert_eq!(d.health(Region(0), 49.0), RegionHealth::Degraded);
        assert_eq!(d.health(Region(0), 51.0), RegionHealth::Down);
        assert_eq!(d.health(Region(1), 51.0), RegionHealth::Healthy);
        // Unknown regions are Down; heartbeats from them are rejected.
        assert_eq!(d.health(Region(9), 0.0), RegionHealth::Down);
        assert!(!d.heartbeat(Region(9), 0.0));
        // A late heartbeat resurrects the silent region.
        assert!(d.heartbeat(Region(0), 60.0));
        assert_eq!(d.health(Region(0), 61.0), RegionHealth::Healthy);
    }

    #[test]
    fn overrides_win_over_heartbeats_until_cleared() {
        let mut d = directory();
        d.mark_down(Region(2));
        assert_eq!(d.health(Region(2), 0.0), RegionHealth::Down);
        // Heartbeats do not clear an operator hold.
        d.heartbeat(Region(2), 1.0);
        assert_eq!(d.health(Region(2), 1.0), RegionHealth::Down);
        assert_eq!(d.routable_regions(1.0), vec![Region(0), Region(1)]);
        d.mark_degraded(Region(1));
        let weights = d.routing_weights(1.0);
        assert_eq!(
            weights,
            vec![(Region(0), 1.0), (Region(1), 0.25), (Region(2), 0.0)]
        );
        // Only mark_healthy clears the hold; re-registration does not.
        d.mark_healthy(Region(1), 2.0);
        assert_eq!(d.health(Region(1), 2.0), RegionHealth::Healthy);
        d.register(RegionInfo::new(Region(2)), 2.0);
        assert_eq!(d.health(Region(2), 2.0), RegionHealth::Down);
        d.mark_healthy(Region(2), 2.0);
        assert_eq!(d.health(Region(2), 2.0), RegionHealth::Healthy);
        d.deregister(Region(2));
        assert_eq!(d.health(Region(2), 2.0), RegionHealth::Down);
    }

    #[test]
    fn flapping_region_cannot_escape_a_planned_drain_by_re_registering() {
        let mut d = directory();
        // Operator drains region 1; the region then flaps — crashes, comes
        // back, and re-registers as if nothing happened.
        d.mark_down(Region(1));
        assert_eq!(d.health(Region(1), 0.0), RegionHealth::Down);
        for t in [5.0, 10.0, 15.0] {
            d.register(RegionInfo::new(Region(1)), t);
            d.heartbeat(Region(1), t);
            assert_eq!(
                d.health(Region(1), t),
                RegionHealth::Down,
                "re-registration at t={t} must not clear the operator hold"
            );
            assert!(!d.routable_regions(t).contains(&Region(1)));
        }
        // Re-registration still refreshes the announcement and heartbeat, so
        // lifting the hold restores Healthy immediately (no decay window).
        let mut info = RegionInfo::new(Region(1));
        info.nodes = 8;
        d.register(info, 20.0);
        d.mark_healthy(Region(1), 20.0);
        assert_eq!(d.health(Region(1), 20.0), RegionHealth::Healthy);
        assert_eq!(
            d.regions().find(|i| i.region == Region(1)).unwrap().nodes,
            8
        );
    }

    #[test]
    fn health_feeds_planner_observations() {
        // geo_distributed_24 spreads 24 nodes over regions 0..3.
        let spec = ClusterSpec::geo_distributed_24();
        let mut d = RegionDirectory::new(MembershipOptions::default());
        for r in 0..3u32 {
            d.register(RegionInfo::new(Region(r)), 0.0);
        }
        d.mark_degraded(Region(1));
        d.mark_down(Region(2));
        let observed = d.health_observations(&spec, 1, 0.0);
        let mut degraded = 0;
        let mut floored = 0;
        for node in spec.nodes() {
            let factor = observed.speed_factor(node.id, ModelId(0));
            match d.health(node.region, 0.0) {
                RegionHealth::Healthy => assert_eq!(factor, None),
                RegionHealth::Degraded => {
                    assert_eq!(factor, Some(0.5));
                    degraded += 1;
                }
                RegionHealth::Down => {
                    assert_eq!(factor, Some(MIN_SPEED_FACTOR));
                    floored += 1;
                }
            }
        }
        assert!(degraded > 0 && floored > 0);
    }
}
