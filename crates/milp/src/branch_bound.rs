//! Branch & bound MILP search over the LP relaxation.

use crate::error::MilpError;
use crate::model::{Model, ObjectiveSense};
use crate::simplex::{solve_lp_with_bounds, LpOutcome};
use crate::solution::{MilpResult, SolveStatus};
use crate::INT_EPS;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// One entry in the solver's incumbent/bound timeline.
///
/// The Helix paper's Fig. 12 plots exactly this: the best solution found so
/// far and the best upper bound, against wall-clock solving time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchEvent {
    /// Seconds since the solve started.
    pub elapsed_seconds: f64,
    /// Nodes explored so far.
    pub nodes_explored: u64,
    /// Objective of the best incumbent found so far (in the model's sense),
    /// if any incumbent exists yet.
    pub incumbent: Option<f64>,
    /// Best proven bound on the optimum so far (in the model's sense).
    pub best_bound: f64,
}

/// Configuration of the branch & bound search.
#[derive(Debug, Clone, PartialEq)]
pub struct MilpOptions {
    /// Wall-clock budget; the incumbent at expiry is returned.
    pub time_limit: Duration,
    /// Maximum number of nodes to explore.
    pub node_limit: u64,
    /// Stop when the relative gap between incumbent and bound drops below
    /// this value.
    pub gap_tolerance: f64,
    /// Stop as soon as the incumbent objective reaches this value (an
    /// absolute objective threshold in the model's sense).  Mirrors Helix's
    /// early-stop at the cluster throughput upper bound (§4.5).
    pub early_stop_objective: Option<f64>,
    /// A feasible assignment used as the initial incumbent (heuristic warm
    /// start, §4.5).  Infeasible warm starts are ignored.
    pub warm_start: Option<Vec<f64>>,
    /// Record a [`BranchEvent`] every time the incumbent or bound improves.
    pub record_events: bool,
}

impl Default for MilpOptions {
    fn default() -> Self {
        MilpOptions {
            time_limit: Duration::from_secs(60),
            node_limit: 200_000,
            gap_tolerance: 1e-6,
            early_stop_objective: None,
            warm_start: None,
            record_events: false,
        }
    }
}

/// A branch & bound MILP solver.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Clone, Default)]
pub struct MilpSolver {
    options: MilpOptions,
    /// Timeline of incumbent/bound improvements from the last solve.
    events: Vec<BranchEvent>,
}

/// Open node: bounds override per variable plus the parent LP bound (score
/// space, larger is better).
struct OpenNode {
    bounds: Vec<(f64, f64)>,
    score_bound: f64,
    depth: u32,
}

impl PartialEq for OpenNode {
    fn eq(&self, other: &Self) -> bool {
        self.score_bound == other.score_bound
    }
}
impl Eq for OpenNode {}
impl PartialOrd for OpenNode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OpenNode {
    fn cmp(&self, other: &Self) -> Ordering {
        // Best-bound first; tie-break towards deeper nodes (closer to
        // integrality) so dives finish quickly.
        self.score_bound
            .partial_cmp(&other.score_bound)
            .unwrap_or(Ordering::Equal)
            .then(self.depth.cmp(&other.depth))
    }
}

impl MilpSolver {
    /// Creates a solver with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with the given options.
    pub fn with_options(options: MilpOptions) -> Self {
        MilpSolver {
            options,
            events: Vec::new(),
        }
    }

    /// Mutable access to the options (builder-style tweaking).
    pub fn options_mut(&mut self) -> &mut MilpOptions {
        &mut self.options
    }

    /// Sets the wall-clock budget and returns `self` for chaining.
    pub fn time_limit(mut self, limit: Duration) -> Self {
        self.options.time_limit = limit;
        self
    }

    /// Sets the warm-start assignment and returns `self` for chaining.
    pub fn warm_start(mut self, assignment: Vec<f64>) -> Self {
        self.options.warm_start = Some(assignment);
        self
    }

    /// Sets the early-stop objective and returns `self` for chaining.
    pub fn early_stop_objective(mut self, objective: f64) -> Self {
        self.options.early_stop_objective = Some(objective);
        self
    }

    /// Enables event recording and returns `self` for chaining.
    pub fn record_events(mut self) -> Self {
        self.options.record_events = true;
        self
    }

    /// Timeline of incumbent/bound improvements from the most recent
    /// [`MilpSolver::solve`] call (empty unless event recording was enabled).
    pub fn events(&self) -> &[BranchEvent] {
        &self.events
    }

    /// Solves `model` to (near-)optimality subject to the configured budgets.
    ///
    /// # Errors
    ///
    /// * [`MilpError::Infeasible`] — the LP relaxation (and hence the MILP) is
    ///   infeasible.
    /// * [`MilpError::Unbounded`] — the LP relaxation is unbounded.
    /// * [`MilpError::NoIncumbent`] — the budget expired before any feasible
    ///   integer solution was found.
    /// * [`MilpError::IterationLimit`] — the simplex failed numerically.
    pub fn solve(&mut self, model: &Model) -> Result<MilpResult, MilpError> {
        let start = Instant::now();
        self.events.clear();
        let sense = model.sense();
        // Score space: larger is better.
        let to_score = |obj: f64| match sense {
            ObjectiveSense::Maximize => obj,
            ObjectiveSense::Minimize => -obj,
        };
        let from_score = |score: f64| match sense {
            ObjectiveSense::Maximize => score,
            ObjectiveSense::Minimize => -score,
        };

        let root_bounds: Vec<(f64, f64)> = model
            .variables()
            .iter()
            .map(|v| {
                // Integral variables can have their bounds rounded inward.
                if v.var_type.is_integral() {
                    (v.lower.ceil(), v.upper.floor())
                } else {
                    (v.lower, v.upper)
                }
            })
            .collect();
        for &(l, u) in &root_bounds {
            if l > u {
                return Err(MilpError::Infeasible);
            }
        }

        let mut incumbent: Option<(f64, Vec<f64>)> = None; // (score, values)
        if let Some(ws) = &self.options.warm_start {
            if model.is_feasible(ws, 1e-6) {
                let obj = model.objective_value(ws);
                incumbent = Some((to_score(obj), ws.clone()));
            }
        }

        // Root relaxation.
        let root_lp = solve_lp_with_bounds(model, &root_bounds)?;
        let root_sol = match root_lp {
            LpOutcome::Infeasible => {
                // A warm start can still make this "feasible overall" only if
                // the warm start satisfies the constraints, which would
                // contradict LP infeasibility; report infeasible.
                return Err(MilpError::Infeasible);
            }
            LpOutcome::Unbounded => return Err(MilpError::Unbounded),
            LpOutcome::Optimal(s) => s,
        };
        let mut best_bound_score = to_score(root_sol.objective);
        let mut nodes_explored: u64 = 0;

        let mut heap: BinaryHeap<OpenNode> = BinaryHeap::new();
        heap.push(OpenNode {
            bounds: root_bounds,
            score_bound: best_bound_score,
            depth: 0,
        });

        let mut status = SolveStatus::Optimal;
        let record = |events: &mut Vec<BranchEvent>,
                      opts: &MilpOptions,
                      start: Instant,
                      nodes: u64,
                      incumbent: &Option<(f64, Vec<f64>)>,
                      bound_score: f64| {
            if opts.record_events {
                events.push(BranchEvent {
                    elapsed_seconds: start.elapsed().as_secs_f64(),
                    nodes_explored: nodes,
                    incumbent: incumbent.as_ref().map(|(s, _)| from_score(*s)),
                    best_bound: from_score(bound_score),
                });
            }
        };
        record(
            &mut self.events,
            &self.options,
            start,
            0,
            &incumbent,
            best_bound_score,
        );

        while let Some(node) = heap.pop() {
            // The heap is ordered by bound, so the top of the heap is the
            // global best bound among open nodes.
            best_bound_score = node.score_bound;
            if let Some((inc_score, _)) = &incumbent {
                let gap = (best_bound_score - inc_score) / inc_score.abs().max(1.0);
                if gap <= self.options.gap_tolerance {
                    status = SolveStatus::Optimal;
                    best_bound_score = *inc_score;
                    break;
                }
            }
            if start.elapsed() > self.options.time_limit
                || nodes_explored >= self.options.node_limit
            {
                status = SolveStatus::Feasible;
                break;
            }

            nodes_explored += 1;
            let lp = match solve_lp_with_bounds(model, &node.bounds) {
                Ok(LpOutcome::Optimal(s)) => s,
                Ok(LpOutcome::Infeasible) => continue,
                Ok(LpOutcome::Unbounded) => return Err(MilpError::Unbounded),
                Err(MilpError::Infeasible) => continue,
                Err(e) => return Err(e),
            };
            let node_score = to_score(lp.objective);
            // Prune against the incumbent.
            if let Some((inc_score, _)) = &incumbent {
                if node_score <= inc_score + 1e-9 {
                    continue;
                }
            }
            // Find the most fractional integral variable.
            let mut branch_var: Option<usize> = None;
            let mut branch_frac = 0.0;
            for (i, v) in model.variables().iter().enumerate() {
                if !v.var_type.is_integral() {
                    continue;
                }
                let x = lp.values[i];
                let frac = (x - x.round()).abs();
                if frac > INT_EPS {
                    let dist_to_half = (frac - 0.5).abs();
                    let score = 0.5 - dist_to_half;
                    if branch_var.is_none() || score > branch_frac {
                        branch_frac = score;
                        branch_var = Some(i);
                    }
                }
            }
            match branch_var {
                None => {
                    // Integral solution: new incumbent candidate.
                    let mut values = lp.values.clone();
                    for (i, v) in model.variables().iter().enumerate() {
                        if v.var_type.is_integral() {
                            values[i] = values[i].round();
                        }
                    }
                    let obj = model.objective_value(&values);
                    let score = to_score(obj);
                    let improved = incumbent.as_ref().is_none_or(|(s, _)| score > *s);
                    if improved && model.is_feasible(&values, 1e-5) {
                        incumbent = Some((score, values));
                        record(
                            &mut self.events,
                            &self.options,
                            start,
                            nodes_explored,
                            &incumbent,
                            best_bound_score,
                        );
                        if let Some(stop) = self.options.early_stop_objective {
                            if score >= to_score(stop) - 1e-9 {
                                status = SolveStatus::EarlyStopped;
                                break;
                            }
                        }
                    }
                }
                Some(i) => {
                    let x = lp.values[i];
                    let floor = x.floor();
                    let ceil = x.ceil();
                    let (l, u) = node.bounds[i];
                    // Down child: x <= floor.
                    if floor >= l - 1e-9 {
                        let mut b = node.bounds.clone();
                        b[i] = (l, floor.min(u));
                        if b[i].0 <= b[i].1 {
                            heap.push(OpenNode {
                                bounds: b,
                                score_bound: node_score,
                                depth: node.depth + 1,
                            });
                        }
                    }
                    // Up child: x >= ceil.
                    if ceil <= u + 1e-9 {
                        let mut b = node.bounds.clone();
                        b[i] = (ceil.max(l), u);
                        if b[i].0 <= b[i].1 {
                            heap.push(OpenNode {
                                bounds: b,
                                score_bound: node_score,
                                depth: node.depth + 1,
                            });
                        }
                    }
                }
            }
        }

        if heap.is_empty() && status == SolveStatus::Optimal {
            // Tree exhausted: the incumbent (if any) is optimal and the bound
            // collapses onto it.
            if let Some((score, _)) = &incumbent {
                best_bound_score = *score;
            }
        }

        let Some((score, values)) = incumbent else {
            return Err(MilpError::NoIncumbent);
        };
        record(
            &mut self.events,
            &self.options,
            start,
            nodes_explored,
            &Some((score, values.clone())),
            best_bound_score,
        );
        Ok(MilpResult {
            objective: from_score(score),
            values,
            status,
            best_bound: from_score(best_bound_score),
            nodes_explored,
            solve_seconds: start.elapsed().as_secs_f64(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Model, ObjectiveSense, Sense, VarType};

    #[test]
    fn knapsack_small() {
        // Classic 0/1 knapsack: values 60,100,120; weights 10,20,30; cap 50 -> 220.
        let mut m = Model::new(ObjectiveSense::Maximize);
        let x1 = m.add_binary("x1", 60.0);
        let x2 = m.add_binary("x2", 100.0);
        let x3 = m.add_binary("x3", 120.0);
        m.add_constraint("w", [(x1, 10.0), (x2, 20.0), (x3, 30.0)], Sense::Le, 50.0);
        let r = MilpSolver::new().solve(&m).unwrap();
        assert_eq!(r.objective.round(), 220.0);
        assert_eq!(r.values[x1.index()].round(), 0.0);
        assert_eq!(r.values[x2.index()].round(), 1.0);
        assert_eq!(r.values[x3.index()].round(), 1.0);
        assert_eq!(r.status, SolveStatus::Optimal);
        assert!(r.gap() < 1e-6);
    }

    #[test]
    fn integer_rounding_differs_from_lp() {
        // max x + y s.t. 2x + 2y <= 5 integer -> LP gives 2.5, MILP gives 2.
        let mut m = Model::new(ObjectiveSense::Maximize);
        let x = m.add_var("x", VarType::Integer, 0.0, 10.0, 1.0);
        let y = m.add_var("y", VarType::Integer, 0.0, 10.0, 1.0);
        m.add_constraint("c", [(x, 2.0), (y, 2.0)], Sense::Le, 5.0);
        let r = MilpSolver::new().solve(&m).unwrap();
        assert_eq!(r.objective.round(), 2.0);
    }

    #[test]
    fn minimization_milp() {
        // min 5x + 4y s.t. x + y >= 3, x,y binary-ish integers up to 3 -> x=0,y=3 cost 12.
        let mut m = Model::new(ObjectiveSense::Minimize);
        let x = m.add_var("x", VarType::Integer, 0.0, 3.0, 5.0);
        let y = m.add_var("y", VarType::Integer, 0.0, 3.0, 4.0);
        m.add_constraint("c", [(x, 1.0), (y, 1.0)], Sense::Ge, 3.0);
        let r = MilpSolver::new().solve(&m).unwrap();
        assert_eq!(r.objective.round(), 12.0);
        assert_eq!(r.values[y.index()].round(), 3.0);
    }

    #[test]
    fn infeasible_milp_reports_error() {
        let mut m = Model::new(ObjectiveSense::Maximize);
        let x = m.add_binary("x", 1.0);
        m.add_constraint("ge", [(x, 1.0)], Sense::Ge, 2.0);
        assert_eq!(
            MilpSolver::new().solve(&m).unwrap_err(),
            MilpError::Infeasible
        );
    }

    #[test]
    fn warm_start_is_used_as_incumbent() {
        let mut m = Model::new(ObjectiveSense::Maximize);
        let x = m.add_binary("x", 1.0);
        let y = m.add_binary("y", 1.0);
        m.add_constraint("c", [(x, 1.0), (y, 1.0)], Sense::Le, 1.0);
        let mut solver = MilpSolver::new().warm_start(vec![1.0, 0.0]).record_events();
        let r = solver.solve(&m).unwrap();
        assert_eq!(r.objective.round(), 1.0);
        assert!(!solver.events().is_empty());
        assert_eq!(solver.events()[0].incumbent.map(|v| v.round()), Some(1.0));
    }

    #[test]
    fn infeasible_warm_start_is_ignored() {
        let mut m = Model::new(ObjectiveSense::Maximize);
        let x = m.add_binary("x", 3.0);
        let y = m.add_binary("y", 2.0);
        m.add_constraint("c", [(x, 1.0), (y, 1.0)], Sense::Le, 1.0);
        // Warm start violates the constraint.
        let r = MilpSolver::new()
            .warm_start(vec![1.0, 1.0])
            .solve(&m)
            .unwrap();
        assert_eq!(r.objective.round(), 3.0);
    }

    #[test]
    fn early_stop_halts_search() {
        // A knapsack where reaching objective >= 100 is easy.
        let mut m = Model::new(ObjectiveSense::Maximize);
        let vars: Vec<_> = (0..12)
            .map(|i| m.add_binary(format!("x{i}"), 10.0 + i as f64))
            .collect();
        let weights: Vec<_> = vars.iter().map(|&v| (v, 5.0)).collect();
        m.add_constraint("w", weights, Sense::Le, 30.0);
        let mut solver = MilpSolver::new().early_stop_objective(50.0);
        let r = solver.solve(&m).unwrap();
        assert!(r.objective >= 50.0);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 2x + 3y, x integer <= 4.3 constraint, y continuous <= 2.5; x + y <= 5.
        let mut m = Model::new(ObjectiveSense::Maximize);
        let x = m.add_var("x", VarType::Integer, 0.0, 10.0, 2.0);
        let y = m.add_var("y", VarType::Continuous, 0.0, 2.5, 3.0);
        m.add_constraint("a", [(x, 1.0)], Sense::Le, 4.3);
        m.add_constraint("b", [(x, 1.0), (y, 1.0)], Sense::Le, 5.0);
        let r = MilpSolver::new().solve(&m).unwrap();
        // Optimum is x=3, y=2 -> 2*3 + 3*2 = 12 (beats x=2,y=2.5 -> 11.5 and x=4,y=1 -> 11).
        assert!((r.objective - 12.0).abs() < 1e-5);
        assert_eq!(r.values[x.index()].round(), 3.0);
        assert!((r.values[y.index()] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn incumbent_never_exceeds_bound() {
        let mut m = Model::new(ObjectiveSense::Maximize);
        let vars: Vec<_> = (0..8)
            .map(|i| m.add_binary(format!("x{i}"), (i + 1) as f64))
            .collect();
        let weights: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i % 3 + 1) as f64))
            .collect();
        m.add_constraint("w", weights, Sense::Le, 6.0);
        let r = MilpSolver::new().solve(&m).unwrap();
        assert!(r.objective <= r.best_bound + 1e-6);
    }

    #[test]
    fn node_limit_returns_feasible_status() {
        let mut m = Model::new(ObjectiveSense::Maximize);
        let vars: Vec<_> = (0..15)
            .map(|i| m.add_binary(format!("x{i}"), 1.0 + (i as f64) * 0.01))
            .collect();
        let weights: Vec<_> = vars.iter().map(|&v| (v, 2.0)).collect();
        m.add_constraint("w", weights, Sense::Le, 29.0);
        let opts = MilpOptions {
            node_limit: 3,
            warm_start: Some(vec![0.0; 15]),
            ..Default::default()
        };
        let r = MilpSolver::with_options(opts).solve(&m).unwrap();
        assert!(matches!(
            r.status,
            SolveStatus::Feasible | SolveStatus::Optimal
        ));
    }
}
