//! Pluggable execution models: how long a batch takes on a worker.
//!
//! The paper's prototype executes real transformer layers through vLLM; this
//! runtime replaces the GPU kernels with a calibrated cost model (the same
//! substitution the paper's own simulator makes, §6.1) while keeping the rest
//! of the system — threads, queues, messages, batching, KV paging — real.
//! The model is a trait so tests can plug in an instantaneous executor and
//! future work can plug in real kernels.

use crate::message::{Phase, StageWork};
use helix_cluster::NodeProfile;

/// Fixed per-batch overhead in seconds (kernel launch, batch assembly).
pub const BATCH_OVERHEAD_SECS: f64 = 0.015;

/// Slow-down factor applied to a batch when the KV pool has to spill to host
/// memory (paper §5.2: exceeding the KV budget "significantly harms
/// throughput").
pub const KV_OVERFLOW_PENALTY: f64 = 8.0;

/// Computes how long (in virtual seconds) a dynamic batch takes on a node.
pub trait ExecutionModel: Send {
    /// Duration of one batch of work items executing on this node.
    fn batch_duration(&self, items: &[StageWork]) -> f64;
}

/// Roofline-style cost model derived from a node's analytic profile: prompt
/// tokens are compute-bound and cheap per token, decode tokens are
/// memory-bound and expensive, and cost scales with the number of layers the
/// stage computes.
#[derive(Debug, Clone)]
pub struct AnalyticExecution {
    prompt_secs_per_token_layer: f64,
    decode_secs_per_token_layer: f64,
    batch_overhead_secs: f64,
}

impl AnalyticExecution {
    /// Builds the cost model for a node from its profile.
    pub fn new(profile: &NodeProfile) -> Self {
        AnalyticExecution {
            prompt_secs_per_token_layer: 1.0 / profile.prompt_tokens_per_layer_sec.max(1e-9),
            decode_secs_per_token_layer: 1.0 / profile.decode_tokens_per_layer_sec.max(1e-9),
            batch_overhead_secs: BATCH_OVERHEAD_SECS,
        }
    }

    /// Overrides the per-batch overhead (useful to study batching efficiency).
    pub fn with_batch_overhead(mut self, secs: f64) -> Self {
        self.batch_overhead_secs = secs.max(0.0);
        self
    }
}

impl ExecutionModel for AnalyticExecution {
    fn batch_duration(&self, items: &[StageWork]) -> f64 {
        if items.is_empty() {
            return 0.0;
        }
        let mut duration = self.batch_overhead_secs;
        for item in items {
            let per_token_layer = match item.phase {
                Phase::Prompt => self.prompt_secs_per_token_layer,
                Phase::Decode => self.decode_secs_per_token_layer,
            };
            let layers = item.pipeline.stages[item.stage_index].layers.len();
            duration += item.tokens as f64 * layers as f64 * per_token_layer;
        }
        duration
    }
}

/// An execution model in which every batch completes instantly.  Useful for
/// functional tests that exercise message routing, KV accounting and request
/// lifecycle without waiting on the cost model.
#[derive(Debug, Clone, Copy, Default)]
pub struct InstantExecution;

impl ExecutionModel for InstantExecution {
    fn batch_duration(&self, _items: &[StageWork]) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_cluster::{ClusterProfile, ClusterSpec, ModelConfig, NodeId};
    use helix_core::{LayerRange, PipelineStage, RequestPipeline};
    use std::sync::Arc;

    fn work(phase: Phase, tokens: usize, layers: usize) -> StageWork {
        StageWork {
            request: 1,
            phase,
            tokens,
            stage_index: 0,
            pipeline: Arc::new(RequestPipeline {
                stages: vec![PipelineStage { node: NodeId(0), layers: LayerRange::new(0, layers) }],
            }),
        }
    }

    fn model() -> AnalyticExecution {
        let profile = ClusterProfile::analytic(
            ClusterSpec::solver_quality_10(),
            ModelConfig::llama_30b(),
        );
        AnalyticExecution::new(profile.node_profile(NodeId(0)))
    }

    #[test]
    fn decode_tokens_cost_more_than_prompt_tokens() {
        let exec = model();
        let prompt = exec.batch_duration(&[work(Phase::Prompt, 100, 8)]);
        let decode = exec.batch_duration(&[work(Phase::Decode, 100, 8)]);
        assert!(decode > prompt);
    }

    #[test]
    fn duration_scales_with_layers_and_batch_overhead_applies_once() {
        let exec = model().with_batch_overhead(0.5);
        let shallow = exec.batch_duration(&[work(Phase::Decode, 1, 2)]);
        let deep = exec.batch_duration(&[work(Phase::Decode, 1, 8)]);
        assert!(deep > shallow);
        let batched =
            exec.batch_duration(&[work(Phase::Decode, 1, 2), work(Phase::Decode, 1, 2)]);
        let two_batches = 2.0 * shallow;
        assert!(batched < two_batches, "batching amortises the fixed overhead");
        assert_eq!(exec.batch_duration(&[]), 0.0);
    }

    #[test]
    fn instant_execution_is_free() {
        let exec = InstantExecution;
        assert_eq!(exec.batch_duration(&[work(Phase::Prompt, 1000, 10)]), 0.0);
    }
}
