//! Property-based tests for the max-flow algorithms.

use helix_maxflow::{decompose_paths, min_cut, FlowNetwork, MaxFlowAlgorithm, NodeId};
use proptest::prelude::*;

/// Builds a random directed graph over `n` nodes from a list of
/// (from, to, capacity) triples, using node 0 as source and node n-1 as sink.
fn build(n: usize, edges: &[(usize, usize, f64)]) -> (FlowNetwork, NodeId, NodeId) {
    let mut net = FlowNetwork::new();
    let ids: Vec<_> = (0..n).map(|i| net.add_node(format!("v{i}"))).collect();
    for &(a, b, c) in edges {
        let from = ids[a % n];
        let to = ids[b % n];
        if from != to {
            net.add_edge(from, to, c);
        }
    }
    (net, ids[0], ids[n - 1])
}

fn edge_strategy(n: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    prop::collection::vec((0..n, 0..n, 0.0f64..25.0), 0..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All three algorithms must agree on the max-flow value.
    #[test]
    fn algorithms_agree(n in 2usize..10, edges in edge_strategy(10)) {
        let (net, s, t) = build(n, &edges);
        let pr = net.max_flow_with(s, t, MaxFlowAlgorithm::PushRelabel);
        let di = net.max_flow_with(s, t, MaxFlowAlgorithm::Dinic);
        let ek = net.max_flow_with(s, t, MaxFlowAlgorithm::EdmondsKarp);
        prop_assert!((pr.value - di.value).abs() < 1e-6, "pr={} dinic={}", pr.value, di.value);
        prop_assert!((pr.value - ek.value).abs() < 1e-6, "pr={} ek={}", pr.value, ek.value);
    }

    /// The flow produced by each algorithm is feasible (capacity respected,
    /// conservation holds).
    #[test]
    fn flows_are_feasible(n in 2usize..10, edges in edge_strategy(10)) {
        let (net, s, t) = build(n, &edges);
        for alg in [MaxFlowAlgorithm::PushRelabel, MaxFlowAlgorithm::Dinic, MaxFlowAlgorithm::EdmondsKarp] {
            let r = net.max_flow_with(s, t, alg);
            prop_assert!(net.validate_flow(&r.edge_flows, s, t).is_ok(), "algorithm {alg:?} produced an infeasible flow");
        }
    }

    /// Max-flow value equals min-cut capacity (strong duality).
    #[test]
    fn max_flow_equals_min_cut(n in 2usize..10, edges in edge_strategy(10)) {
        let (net, s, t) = build(n, &edges);
        let flow = net.max_flow(s, t);
        let cut = min_cut(&net, &flow, s, t);
        prop_assert!((flow.value - cut.capacity).abs() < 1e-6,
            "flow {} != cut {}", flow.value, cut.capacity);
    }

    /// Flow decomposition conserves the total and never exceeds per-edge flow.
    #[test]
    fn decomposition_is_consistent(n in 2usize..10, edges in edge_strategy(10)) {
        let (net, s, t) = build(n, &edges);
        let flow = net.max_flow(s, t);
        let paths = decompose_paths(&net, &flow, s, t).unwrap();
        let total: f64 = paths.iter().map(|p| p.amount).sum();
        prop_assert!((total - flow.value).abs() < 1e-6);
        let mut usage = vec![0.0f64; net.edge_count()];
        for p in &paths {
            prop_assert!(p.amount > 0.0);
            for e in &p.edges {
                usage[e.index()] += p.amount;
            }
        }
        for (i, &u) in usage.iter().enumerate() {
            prop_assert!(u <= flow.edge_flows[i] + 1e-6);
        }
    }

    /// Max flow is bounded by both the source out-capacity and the sink
    /// in-capacity.
    #[test]
    fn flow_bounded_by_terminal_capacity(n in 2usize..10, edges in edge_strategy(10)) {
        let (net, s, t) = build(n, &edges);
        let flow = net.max_flow(s, t);
        let out_cap = net.out_capacity(s);
        let in_cap: f64 = net
            .in_edges(t)
            .iter()
            .map(|&e| net.edge(e).unwrap().capacity)
            .sum();
        prop_assert!(flow.value <= out_cap + 1e-6);
        prop_assert!(flow.value <= in_cap + 1e-6);
    }

    /// Scaling every capacity scales the max flow by the same factor.
    #[test]
    fn max_flow_scales_linearly(n in 2usize..8, edges in edge_strategy(8), k in 0.1f64..8.0) {
        let (net, s, t) = build(n, &edges);
        let scaled_edges: Vec<_> = edges.iter().map(|&(a, b, c)| (a, b, c * k)).collect();
        let (scaled, s2, t2) = build(n, &scaled_edges);
        let f1 = net.max_flow(s, t);
        let f2 = scaled.max_flow(s2, t2);
        prop_assert!((f1.value * k - f2.value).abs() < 1e-5 * (1.0 + f2.value));
    }

    /// Warm-started re-solving after an arbitrary sequence of capacity
    /// mutations matches a from-scratch solve of the same network, for every
    /// algorithm, and the standing flow stays feasible throughout.
    #[test]
    fn warm_start_matches_cold_solve_after_mutations(
        n in 2usize..10,
        edges in edge_strategy(10),
        mutations in prop::collection::vec((0usize..60, 0.0f64..25.0), 1..30),
    ) {
        for alg in [
            MaxFlowAlgorithm::PushRelabel,
            MaxFlowAlgorithm::Dinic,
            MaxFlowAlgorithm::EdmondsKarp,
        ] {
            let (mut net, s, t) = build(n, &edges);
            if net.edge_count() == 0 {
                continue;
            }
            // Standing warm solve, then interleave capacity mutations with
            // warm re-solves.
            let edge_ids: Vec<_> = net.edges().map(|e| e.id).collect();
            net.resolve_from_residual(s, t, alg).unwrap();
            for (batch, &(edge_seed, new_cap)) in mutations.iter().enumerate() {
                let edge = edge_ids[edge_seed % edge_ids.len()];
                net.set_capacity(edge, new_cap).unwrap();
                // Re-solve warm after every other mutation so repairs run on
                // both single and batched capacity changes.
                if batch % 2 == 0 {
                    net.resolve_from_residual(s, t, alg).unwrap();
                }
            }
            let warm = net.resolve_from_residual(s, t, alg).unwrap();
            let cold = net.max_flow_with(s, t, alg);
            prop_assert!(
                (warm.value - cold.value).abs() < 1e-6,
                "{alg:?}: warm {} vs cold {}",
                warm.value,
                cold.value
            );
            prop_assert!(net.validate_flow(&warm.edge_flows, s, t).is_ok(),
                "{alg:?} left an infeasible standing flow");
        }
    }
}
