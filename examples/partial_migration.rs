//! Live partial-layer migration with KV hand-over.
//!
//! A LLaMA-2 13B deployment serves a saturating workload on the 10-node
//! heterogeneous cluster as a chain of layer ranges.  Mid-run, the operator
//! moves the suffix half of one node's range — *with its KV state* — onto
//! the next node in the chain: the fleet re-plans (bit-identical to a
//! from-scratch plan of the migrated placement), the KV pages travel the
//! inter-node link as modelled traffic, and both engines freeze only for
//! the transfer (freeze → transfer → re-route → resume).  No in-flight
//! pipeline is dropped, and a second batch served on the migrated plan
//! lands within a few percent of a fresh plan of the same placement.
//!
//! ```text
//! cargo run --release --example partial_migration
//! ```

use helix::prelude::*;
use helix_sim::PerturbationEvent;
use helix_workload::AzureTraceConfig;

/// A chain placement taking half of each node's capacity, leaving headroom
/// for the migrated merge.
fn chain_placement(profile: &ClusterProfile) -> ModelPlacement {
    let cluster = profile.cluster();
    let mut placement = ModelPlacement::empty(cluster.num_nodes());
    let num_layers = profile.model().num_layers;
    let mut start = 0usize;
    for id in cluster.node_ids() {
        if start >= num_layers {
            break;
        }
        let take = (profile.node_profile(id).max_layers / 2)
            .max(1)
            .min(num_layers - start);
        placement.assign(id, LayerRange::new(start, start + take));
        start += take;
    }
    assert!(placement.has_complete_pipeline(num_layers));
    placement
}

fn workload(n: usize, seed: u64) -> Workload {
    AzureTraceConfig {
        mean_input_tokens: 128.0,
        mean_output_tokens: 48.0,
        max_input_tokens: 384,
        max_output_tokens: 96,
        ..Default::default()
    }
    .generate(n, seed)
    .with_arrivals(ArrivalPattern::Offline, 4)
}

fn main() {
    // 1. Plan the chain deployment.
    let profile =
        ClusterProfile::analytic(ClusterSpec::solver_quality_10(), ModelConfig::llama_13b());
    let placement = chain_placement(&profile);
    let topology = Topology::plan(&profile, &placement, true).expect("topology");
    println!(
        "planned a {}-node chain, {:.0} tokens/s max flow",
        topology.nodes().count(),
        topology.flow_value()
    );

    // 2. Pick the migration: the suffix half of the first chain node's
    //    range moves onto its successor and merges contiguously.
    let assigned: Vec<(NodeId, LayerRange)> = placement.iter().collect();
    let (from, from_range) = assigned[0];
    let (to, _) = assigned[1];
    let mid = from_range.start + from_range.len() / 2;
    let moved = LayerRange::new(mid, from_range.end);
    println!("scripted: layers {moved} of model0 migrate {from} -> {to} at t=5s, KV included\n");

    // 3. Serve a first batch with the migration firing mid-run.
    let scheduler = IwrrScheduler::from_topology(&topology).expect("scheduler");
    let sim = ClusterSimulator::new(&topology, Box::new(scheduler));
    let config = SimulationConfig::offline(500.0).with_warmup(0.0);
    let mut session = SimSession::new(sim, config);
    session.schedule(PerturbationEvent::Migrate {
        at: 5.0,
        model: ModelId(0),
        from,
        to,
        layers: moved,
    });
    let batch1 = workload(60, 7);
    for request in batch1.requests() {
        session.submit(*request);
    }
    session.drain();
    let first = session.report().expect("drained").clone();
    assert_eq!(first.kv_transfers.len(), 1, "the KV hand-over happened");
    let transfer = &first.kv_transfers[0];
    println!(
        "hand-over: {:.0} KV tokens in {} pages, {:.1} MB over {from}->{to}, {:.3}s freeze",
        transfer.tokens,
        transfer.pages,
        transfer.bytes / 1e6,
        transfer.transfer_secs
    );
    println!(
        "batch 1: {} / {} requests completed (none dropped), {:.1} tokens/s",
        first.metrics.overall.completed_requests,
        batch1.len(),
        first.metrics.overall.decode_throughput()
    );
    assert_eq!(
        first.metrics.overall.completed_requests,
        batch1.len() as u64
    );

    // 4. A second batch runs entirely on the migrated plan; compare against
    //    a fresh session planned from scratch on the same placement.
    let migrated = session.simulator().fleet().placement().placements()[0].clone();
    let batch2 = workload(60, 8);
    for request in batch2.requests() {
        session.submit(*request);
    }
    session.drain();
    let merged = session.report().expect("drained").clone();
    let batch2_tokens =
        (merged.metrics.overall.decode_tokens - first.metrics.overall.decode_tokens) as f64;
    let batch2_secs =
        merged.metrics.overall.measured_seconds - first.metrics.overall.measured_seconds;

    let fresh_topology = Topology::plan(&profile, &migrated, true).expect("migrated plan");
    let fresh_scheduler = IwrrScheduler::from_topology(&fresh_topology).expect("scheduler");
    let fresh_sim = ClusterSimulator::new(&fresh_topology, Box::new(fresh_scheduler));
    let mut fresh_session = SimSession::new(fresh_sim, config);
    for request in batch2.requests() {
        fresh_session.submit(*request);
    }
    let fresh = fresh_session.finish();

    let migrated_throughput = batch2_tokens / batch2_secs;
    let fresh_throughput = fresh.metrics.overall.decode_throughput();
    println!(
        "batch 2 on the migrated session: {migrated_throughput:.1} tokens/s vs fresh plan {fresh_throughput:.1} tokens/s ({:+.1}%)",
        (migrated_throughput / fresh_throughput - 1.0) * 100.0
    );
    assert!(
        (migrated_throughput / fresh_throughput - 1.0).abs() <= 0.1,
        "post-migration throughput within 10% of a fresh plan"
    );
    println!("\nthe migrated session serves like a freshly planned one — hand-over complete.");
}
