//! A small recursive-descent JSON parser for the stub.

use serde::value::{JsonError, Map, Value};

pub(crate) fn parse(text: &str) -> Result<Value, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(JsonError::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError::new(format!(
            "expected `{}` at byte {}",
            byte as char, *pos
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::new("unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(JsonError::new(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = Map::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                map.insert(key, value);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => {
                        return Err(JsonError::new(format!(
                            "expected `,` or `}}` at byte {pos}"
                        )))
                    }
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &str,
    value: Value,
) -> Result<Value, JsonError> {
    if bytes[*pos..].starts_with(keyword.as_bytes()) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(JsonError::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError::new("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| JsonError::new("invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::new("invalid \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| JsonError::new("invalid \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(JsonError::new("invalid escape sequence")),
                }
                *pos += 1;
            }
            _ => {
                // Copy one UTF-8 character (may be multi-byte).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::new("invalid UTF-8 in string"))?;
                let c = rest
                    .chars()
                    .next()
                    .ok_or_else(|| JsonError::new("unterminated string"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err(JsonError::new("unterminated string"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(&b) = bytes.get(*pos) {
        if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| JsonError::new("invalid number"))?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| JsonError::new(format!("invalid number `{text}` at byte {start}")))
}
