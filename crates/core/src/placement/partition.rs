//! Cluster partitioning for very large deployments (paper §4.5).
//!
//! The MILP planner scales to the cluster sizes the paper evaluates (24–42
//! nodes), but §4.5 notes that "for further scaling of Helix to hundreds or
//! even thousands of nodes, one viable approach is to first partition the
//! nodes into multiple smaller clusters using heuristics and then apply Helix
//! independently".  This module implements that approach: it groups nodes
//! into partitions that each can hold a full model replica (preferring to
//! keep regions together so no partition straddles a slow inter-region link),
//! plans a placement for every partition independently, and combines the
//! results into one placement whose replicas serve traffic side by side.

use crate::error::HelixError;
use crate::placement::refine::{AnnealingOptions, FlowAnnealingPlanner};
use crate::placement::{LayerRange, ModelPlacement};
use helix_cluster::{ClusterBuilder, ClusterProfile, ModelId, NodeId};
use std::collections::BTreeMap;

/// Options controlling how the cluster is partitioned and how each partition
/// is planned.
#[derive(Debug, Clone)]
pub struct PartitionOptions {
    /// Upper bound on the number of nodes per partition.  Partitions stop
    /// growing once they can hold the model *and* reach this size.
    pub max_partition_size: usize,
    /// Slack factor on model capacity: a partition is considered able to hold
    /// the model once its summed layer capacity reaches `capacity_slack ×
    /// num_layers`.  Values above 1.0 leave headroom for KV cache and load
    /// balancing.
    pub capacity_slack: f64,
    /// Keep nodes of the same region together (avoids replicas that straddle
    /// slow inter-region links).
    pub group_by_region: bool,
    /// Planning budget used for each partition.
    pub annealing: AnnealingOptions,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions {
            max_partition_size: 16,
            capacity_slack: 1.2,
            group_by_region: true,
            annealing: AnnealingOptions::default(),
        }
    }
}

/// One planned partition: a disjoint subset of nodes serving its own model
/// replica.
#[derive(Debug, Clone)]
pub struct Partition {
    /// The nodes of this partition (ids in the *original* cluster).
    pub nodes: Vec<NodeId>,
    /// The placement found for this partition, expressed on the original
    /// cluster's node ids (nodes outside the partition are unassigned).
    pub placement: ModelPlacement,
    /// Max-flow throughput of the partition's placement (tokens/s).
    pub throughput: f64,
}

/// The result of partitioned planning.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    partitions: Vec<Partition>,
    num_nodes: usize,
}

impl PartitionPlan {
    /// The individual partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Number of independent model replicas (one per partition).
    pub fn num_replicas(&self) -> usize {
        self.partitions.len()
    }

    /// Sum of the partitions' planned throughputs.
    pub fn total_throughput(&self) -> f64 {
        self.partitions.iter().map(|p| p.throughput).sum()
    }

    /// The union of all partition placements: a single placement for the full
    /// cluster in which every partition serves its own replica.
    pub fn combined_placement(&self) -> ModelPlacement {
        let mut combined = ModelPlacement::empty(self.num_nodes);
        for partition in &self.partitions {
            for (node, range) in partition.placement.iter() {
                combined.assign(node, range);
            }
        }
        combined
    }
}

/// Plans placements for clusters too large to optimise in one piece.
///
/// # Example
///
/// ```rust
/// use helix_cluster::{ClusterProfile, ClusterSpec, ModelConfig};
/// use helix_core::placement::partition::{PartitionOptions, PartitionedPlanner};
///
/// let profile = ClusterProfile::analytic(
///     ClusterSpec::geo_distributed_24(),
///     ModelConfig::llama_30b(),
/// );
/// let planner = PartitionedPlanner::new(&profile)
///     .with_options(PartitionOptions { max_partition_size: 10, ..Default::default() });
/// let plan = planner.solve().unwrap();
/// assert!(plan.num_replicas() >= 2);
/// assert!(plan.total_throughput() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct PartitionedPlanner<'a> {
    profile: &'a ClusterProfile,
    options: PartitionOptions,
}

impl<'a> PartitionedPlanner<'a> {
    /// Creates a planner with default options.
    pub fn new(profile: &'a ClusterProfile) -> Self {
        PartitionedPlanner {
            profile,
            options: PartitionOptions::default(),
        }
    }

    /// Overrides the partitioning options.
    pub fn with_options(mut self, options: PartitionOptions) -> Self {
        self.options = options;
        self
    }

    /// The options in effect.
    pub fn options(&self) -> &PartitionOptions {
        &self.options
    }

    /// Computes the node groups without planning placements for them.
    ///
    /// Every group can hold at least one full model replica; groups respect
    /// region boundaries when `group_by_region` is set and the regions are
    /// large enough.
    pub fn node_groups(&self) -> Vec<Vec<NodeId>> {
        let profile = self.profile;
        let cluster = profile.cluster();
        let num_layers = profile.model().num_layers;
        let needed = (num_layers as f64 * self.options.capacity_slack).ceil() as usize;

        // Order nodes region by region (or as one big group), strongest first
        // within each region so every partition gets a share of strong nodes.
        let mut ordered: Vec<NodeId> = Vec::with_capacity(cluster.num_nodes());
        if self.options.group_by_region {
            let mut by_region: BTreeMap<u32, Vec<NodeId>> = BTreeMap::new();
            for node in cluster.nodes() {
                by_region.entry(node.region.0).or_default().push(node.id);
            }
            for (_, mut nodes) in by_region {
                nodes.sort_by_key(|&id| std::cmp::Reverse(profile.node_profile(id).max_layers));
                ordered.extend(nodes);
            }
        } else {
            ordered.extend(cluster.node_ids());
            ordered.sort_by_key(|&id| std::cmp::Reverse(profile.node_profile(id).max_layers));
        }

        let mut groups: Vec<Vec<NodeId>> = Vec::new();
        let mut current: Vec<NodeId> = Vec::new();
        let mut current_capacity = 0usize;
        for id in ordered {
            current.push(id);
            current_capacity += profile.node_profile(id).max_layers;
            let can_hold = current_capacity >= needed;
            let full = current.len() >= self.options.max_partition_size;
            if can_hold && (full || current.len() >= self.options.max_partition_size / 2) {
                groups.push(std::mem::take(&mut current));
                current_capacity = 0;
            }
        }
        if !current.is_empty() {
            // Leftover nodes that cannot hold a replica on their own join the
            // last complete group (or form the only group for tiny clusters).
            let leftover_capacity: usize = current
                .iter()
                .map(|&id| profile.node_profile(id).max_layers)
                .sum();
            if leftover_capacity >= needed || groups.is_empty() {
                groups.push(current);
            } else if let Some(last) = groups.last_mut() {
                last.extend(current);
            }
        }
        groups
    }

    /// Plans each partition independently and returns the combined plan.
    ///
    /// # Errors
    ///
    /// Returns [`HelixError::NoCompletePipeline`] if the whole cluster cannot
    /// hold even one model replica, and propagates per-partition planning
    /// errors.
    pub fn solve(&self) -> Result<PartitionPlan, HelixError> {
        let groups = self.node_groups();
        if groups.is_empty() {
            return Err(HelixError::NoCompletePipeline);
        }
        let mut partitions = Vec::with_capacity(groups.len());
        for nodes in groups {
            let (sub_profile, id_map) = self.sub_profile(&nodes);
            let planner = FlowAnnealingPlanner::new(&sub_profile)
                .with_options(self.options.annealing.clone());
            let (sub_placement, throughput) = planner.solve()?;
            // Map the sub-cluster placement back onto the original node ids.
            let mut placement = ModelPlacement::empty(self.profile.cluster().num_nodes());
            for (sub_node, range) in sub_placement.iter() {
                placement.assign(
                    id_map[sub_node.index()],
                    LayerRange::new(range.start, range.end),
                );
            }
            partitions.push(Partition {
                nodes,
                placement,
                throughput,
            });
        }
        Ok(PartitionPlan {
            partitions,
            num_nodes: self.profile.cluster().num_nodes(),
        })
    }

    /// Builds a standalone profile containing only `nodes`, preserving each
    /// node's GPU type, GPU count, region and NIC bandwidth as well as the
    /// original cluster's intra/inter-region network characteristics.
    /// Returns the profile and the mapping from sub-cluster node index to the
    /// original [`NodeId`].
    fn sub_profile(&self, nodes: &[NodeId]) -> (ClusterProfile, Vec<NodeId>) {
        sub_profile_over(self.profile, nodes, "partition")
    }
}

/// Builds a standalone [`ClusterProfile`] containing only `nodes` of
/// `profile`'s cluster, preserving each node's GPU type, GPU count, region and
/// NIC bandwidth as well as the cluster-wide intra/inter-region network
/// characteristics.  Returns the profile and the mapping from sub-cluster
/// node index back to the original [`NodeId`].
///
/// Shared by [`PartitionedPlanner`] (single-model partitions) and the
/// hierarchical fleet planner (per-pod sub-problems).
pub(crate) fn sub_profile_over(
    profile: &ClusterProfile,
    nodes: &[NodeId],
    label: &str,
) -> (ClusterProfile, Vec<NodeId>) {
    let cluster = profile.cluster();
    let mut builder = ClusterBuilder::new(format!("{}-{label}", cluster.name))
        .intra_region(
            cluster.intra_region_bandwidth_mbps,
            cluster.intra_region_latency_ms,
        )
        .inter_region(
            cluster.inter_region_bandwidth_mbps,
            cluster.inter_region_latency_ms,
        )
        .coordinator_region(cluster.coordinator_region);
    let mut id_map = Vec::with_capacity(nodes.len());
    for &id in nodes {
        let node = cluster.node(id);
        builder = builder.nic_bandwidth(node.nic_bandwidth_mbps).add_nodes(
            node.gpu,
            1,
            node.gpu_count,
            node.region,
        );
        id_map.push(id);
    }
    let sub_cluster = builder.build();
    (
        ClusterProfile::analytic(sub_cluster, profile.model().clone()),
        id_map,
    )
}

// ---------------------------------------------------------------------------
// Locality-aware pod partitioning for hierarchical fleet planning.
// ---------------------------------------------------------------------------

/// Options controlling [`PodPartitioner`].
#[derive(Debug, Clone)]
pub struct PodPartitionOptions {
    /// Upper bound on nodes per pod during locality agglomeration.  Capacity
    /// feasibility overrides this: a pod that still cannot hold every model
    /// keeps absorbing neighbours past the cap.
    pub max_pod_size: usize,
    /// Slack factor on coarse capacity: a pod counts as able to hold model
    /// `m` once its summed per-node layer capacity (the VRAM-derived
    /// `max_layers`, the same quantity [`FleetPlacement`]'s validation
    /// enforces per node) reaches `capacity_slack × num_layers(m)`.
    ///
    /// [`FleetPlacement`]: crate::fleet::FleetPlacement
    pub capacity_slack: f64,
    /// Per-model traffic weights used when balancing compute across models
    /// (`None` = uniform).  Normalised internally.
    pub weights: Option<Vec<f64>>,
}

impl Default for PodPartitionOptions {
    fn default() -> Self {
        PodPartitionOptions {
            max_pod_size: 24,
            capacity_slack: 1.25,
            weights: None,
        }
    }
}

/// One pod: a disjoint subset of nodes annealed independently for a single
/// model during hierarchical fleet planning.
#[derive(Debug, Clone)]
pub struct Pod {
    /// Dense pod index (position in [`PodMap::pods`]).
    pub id: usize,
    /// The model this pod serves.
    pub model: ModelId,
    /// The pod's nodes (ids in the original cluster), ascending.
    pub nodes: Vec<NodeId>,
}

/// The partition of a cluster into model-assigned pods.
#[derive(Debug, Clone)]
pub struct PodMap {
    pods: Vec<Pod>,
    /// Pod index per cluster node.
    owner: Vec<usize>,
}

impl PodMap {
    /// Builds a map from explicit pods (used by the hierarchical planner's
    /// flat fallback, where the joint annealer's per-model node sets become
    /// one pod each).  Nodes outside every pod have no owner.
    pub(crate) fn from_pods(pods: Vec<Pod>, num_nodes: usize) -> Self {
        let mut owner = vec![usize::MAX; num_nodes];
        for pod in &pods {
            for &v in &pod.nodes {
                owner[v.index()] = pod.id;
            }
        }
        PodMap { pods, owner }
    }

    /// The pods, in deterministic order.
    pub fn pods(&self) -> &[Pod] {
        &self.pods
    }

    /// Number of pods.
    pub fn num_pods(&self) -> usize {
        self.pods.len()
    }

    /// The pod a node belongs to (`None` for nodes no pod claimed, which can
    /// happen in the flat-fallback map).
    pub fn pod_of(&self, node: NodeId) -> Option<usize> {
        let o = self.owner[node.index()];
        (o != usize::MAX).then_some(o)
    }

    /// The pods assigned to `model`.
    pub fn pods_for(&self, model: ModelId) -> impl Iterator<Item = &Pod> + '_ {
        self.pods.iter().filter(move |p| p.model == model)
    }
}

/// Groups a cluster's nodes into pods by link affinity and assigns one model
/// to each pod — stage one of hierarchical fleet planning.
///
/// The partitioner works on the coarsened capacity model only (per-node
/// `max_layers` and FLOPs); it never solves a flow.  Three steps:
///
/// 1. **Agglomerate:** Kruskal-style greedy merging over all node pairs in
///    descending link affinity (`bandwidth / (1 + latency)`, symmetrised),
///    merging while either side still lacks the coarse capacity to hold every
///    model and the merged size respects `max_pod_size` (capacity wins over
///    the size cap).  High-affinity intra-region pairs sort first, so pods
///    form inside regions and only straddle slow links when a region cannot
///    hold a model by itself.
/// 2. **Balance:** each locality group is dealt into its pods round-robin in
///    descending node strength, so sibling pods carved from one region end up
///    with comparable compute instead of id-ordered strength skew.
/// 3. **Assign:** pods are handed to models greedily (descending pod compute,
///    each pod to the model with the lowest assigned-compute/demand ratio),
///    mirroring the joint planner's node-level partitioning at pod
///    granularity.
pub struct PodPartitioner<'a> {
    profiles: &'a [ClusterProfile],
    options: PodPartitionOptions,
}

/// Union-find over node indices with union-by-size.
struct DisjointSets {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl DisjointSets {
    fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the two sets and returns the surviving root.
    fn union(&mut self, a: usize, b: usize) -> usize {
        let (mut a, mut b) = (self.find(a), self.find(b));
        if a == b {
            return a;
        }
        if self.size[a] < self.size[b] {
            std::mem::swap(&mut a, &mut b);
        }
        self.parent[b] = a;
        self.size[a] += self.size[b];
        a
    }
}

impl<'a> PodPartitioner<'a> {
    /// Creates a partitioner over the fleet's per-model profiles (which must
    /// share one cluster), with default options.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty.
    pub fn new(profiles: &'a [ClusterProfile]) -> Self {
        assert!(!profiles.is_empty(), "at least one model profile required");
        PodPartitioner {
            profiles,
            options: PodPartitionOptions::default(),
        }
    }

    /// Overrides the partitioning options.
    pub fn with_options(mut self, options: PodPartitionOptions) -> Self {
        self.options = options;
        self
    }

    /// Normalised per-model weight.
    fn weight(&self, m: usize) -> f64 {
        match &self.options.weights {
            Some(w) => {
                let total: f64 = w.iter().sum();
                if total <= 0.0 {
                    1.0 / self.profiles.len() as f64
                } else {
                    w.get(m).copied().unwrap_or(0.0) / total
                }
            }
            None => 1.0 / self.profiles.len() as f64,
        }
    }

    /// Symmetrised link affinity between two nodes: high bandwidth and low
    /// latency pull nodes into the same pod.
    fn affinity(&self, a: NodeId, b: NodeId) -> f64 {
        let cluster = self.profiles[0].cluster();
        let ab = cluster.link(Some(a), Some(b));
        let ba = cluster.link(Some(b), Some(a));
        let score = |bw: f64, lat: f64| bw / (1.0 + lat.max(0.0));
        0.5 * (score(ab.bandwidth_mbps, ab.latency_ms) + score(ba.bandwidth_mbps, ba.latency_ms))
    }

    /// Computes the pod partition and the model assignment.
    ///
    /// # Errors
    ///
    /// Returns [`HelixError::NoPlacementFound`] if the cluster's coarse
    /// capacity cannot hold every model (so no pod partition can either), or
    /// if there are fewer feasible pods than models.
    pub fn partition(&self) -> Result<PodMap, HelixError> {
        let cluster = self.profiles[0].cluster();
        let n = cluster.num_nodes();
        let num_models = self.profiles.len();
        if n == 0 {
            return Err(HelixError::NoPlacementFound);
        }

        // Coarse capacity model: layers a node can hold per model, and the
        // per-model layer count a pod needs (with slack).
        let layer_cap: Vec<Vec<usize>> = (0..num_models)
            .map(|m| {
                cluster
                    .node_ids()
                    .map(|id| self.profiles[m].node_profile(id).max_layers)
                    .collect()
            })
            .collect();
        let needed: Vec<usize> = (0..num_models)
            .map(|m| {
                let layers = self.profiles[m].model().num_layers as f64;
                (layers * self.options.capacity_slack.max(1.0)).ceil() as usize
            })
            .collect();

        // --- Step 1: greedy agglomeration over the cluster graph. ---
        let mut sets = DisjointSets::new(n);
        // Component capacity per model, indexed by current root.
        let mut cap: Vec<Vec<usize>> = (0..n)
            .map(|v| (0..num_models).map(|m| layer_cap[m][v]).collect())
            .collect();
        let starved =
            |cap: &[Vec<usize>], root: usize| (0..num_models).any(|m| cap[root][m] < needed[m]);

        let mut pairs: Vec<(f64, u32, u32)> = Vec::with_capacity(n * (n - 1) / 2);
        for a in 0..n {
            for b in (a + 1)..n {
                pairs.push((self.affinity(NodeId(a), NodeId(b)), a as u32, b as u32));
            }
        }
        pairs.sort_unstable_by(|x, y| {
            y.0.partial_cmp(&x.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(x.1.cmp(&y.1))
                .then(x.2.cmp(&y.2))
        });
        for &(_, a, b) in &pairs {
            let (ra, rb) = (sets.find(a as usize), sets.find(b as usize));
            if ra == rb {
                continue;
            }
            // Merge while either side still lacks the capacity to hold every
            // model.  Inside a region (uniform high affinity) this coalesces
            // the whole region into one locality group; cross-region pairs
            // sort later, so regions only merge when one of them cannot hold
            // a model by itself.  The size cap is applied when groups are
            // dealt into pods, not here.
            if !(starved(&cap, ra) || starved(&cap, rb)) {
                continue;
            }
            let merged: Vec<usize> = (0..num_models).map(|m| cap[ra][m] + cap[rb][m]).collect();
            let root = sets.union(ra, rb);
            cap[root] = merged;
        }

        // Collect locality groups in deterministic order (ascending min id).
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); n];
        for v in 0..n {
            let r = sets.find(v);
            members[r].push(v);
        }
        let mut groups: Vec<Vec<usize>> = members.into_iter().filter(|g| !g.is_empty()).collect();
        groups.sort_by_key(|g| g[0]);

        // Fold any still-starved group into its highest-affinity neighbour
        // group until every group can hold every model.  At most one group
        // can remain starved per fold round (any two starved groups would
        // have merged above), so this loop is short.
        loop {
            let group_cap = |g: &[usize]| -> Vec<usize> {
                (0..num_models)
                    .map(|m| g.iter().map(|&v| layer_cap[m][v]).sum())
                    .collect()
            };
            let Some(weak) = groups
                .iter()
                .position(|g| (0..num_models).any(|m| group_cap(g)[m] < needed[m]))
            else {
                break;
            };
            if groups.len() == 1 {
                // The whole cluster cannot hold every model.
                return Err(HelixError::NoPlacementFound);
            }
            // Highest-affinity partner group, ties by lowest group index.
            let (mut best, mut best_aff) = (usize::MAX, f64::NEG_INFINITY);
            for (gi, g) in groups.iter().enumerate() {
                if gi == weak {
                    continue;
                }
                let aff = groups[weak]
                    .iter()
                    .flat_map(|&u| g.iter().map(move |&v| (u, v)))
                    .map(|(u, v)| self.affinity(NodeId(u), NodeId(v)))
                    .fold(f64::NEG_INFINITY, f64::max);
                if aff > best_aff {
                    best_aff = aff;
                    best = gi;
                }
            }
            let weak_nodes = groups.remove(weak);
            let best = if best > weak { best - 1 } else { best };
            groups[best].extend(weak_nodes);
            groups[best].sort_unstable();
        }

        // --- Step 2: deal each locality group into balanced pods. ---
        let strength = |v: usize| cluster.node(NodeId(v)).total_fp16_flops();
        // Pods per group: enough to respect the size cap, capped by coarse
        // capacity (every pod must hold every model), and raised globally
        // until there are at least as many pods as models.
        let k_capacity: Vec<usize> = groups
            .iter()
            .map(|group| {
                (0..num_models)
                    .map(|m| {
                        let cap: usize = group.iter().map(|&v| layer_cap[m][v]).sum();
                        (cap / needed[m].max(1)).max(1)
                    })
                    .min()
                    .unwrap_or(1)
            })
            .collect();
        let mut k_of: Vec<usize> = groups
            .iter()
            .zip(&k_capacity)
            .map(|(group, &k_cap)| {
                group
                    .len()
                    .div_ceil(self.options.max_pod_size.max(1))
                    .clamp(1, k_cap)
            })
            .collect();
        while k_of.iter().sum::<usize>() < num_models {
            // Split the group with the most nodes per pod that can still grow.
            let Some(gi) = (0..groups.len())
                .filter(|&g| k_of[g] < k_capacity[g])
                .max_by(|&x, &y| {
                    let rx = groups[x].len() as f64 / k_of[x] as f64;
                    let ry = groups[y].len() as f64 / k_of[y] as f64;
                    rx.partial_cmp(&ry)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(y.cmp(&x))
                })
            else {
                break;
            };
            k_of[gi] += 1;
        }

        let mut pods_nodes: Vec<Vec<usize>> = Vec::new();
        for (gi, group) in groups.iter().enumerate() {
            let mut k = k_of[gi];
            let mut sorted: Vec<usize> = group.clone();
            sorted.sort_by(|&a, &b| {
                strength(b)
                    .partial_cmp(&strength(a))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            // Deal strongest-first round-robin so sibling pods get comparable
            // compute; shrink k until every slice is coarsely feasible.
            loop {
                let mut slices: Vec<Vec<usize>> = vec![Vec::new(); k];
                for (i, &v) in sorted.iter().enumerate() {
                    slices[i % k].push(v);
                }
                let feasible = slices.iter().all(|s| {
                    (0..num_models)
                        .all(|m| s.iter().map(|&v| layer_cap[m][v]).sum::<usize>() >= needed[m])
                });
                if feasible || k == 1 {
                    for mut s in slices {
                        s.sort_unstable();
                        pods_nodes.push(s);
                    }
                    break;
                }
                k -= 1;
            }
        }

        if pods_nodes.len() < num_models {
            // Fewer pods than models: single-model pods cannot cover the
            // fleet.  (The hierarchical planner falls back to joint
            // annealing in this regime.)
            return Err(HelixError::NoPlacementFound);
        }

        // --- Step 3: assign models to pods, balancing compute vs demand. ---
        let demand: Vec<f64> = (0..num_models)
            .map(|m| {
                let model = self.profiles[m].model();
                (self.weight(m) * model.num_layers as f64 * model.layer_flops_per_token()).max(1e-9)
            })
            .collect();
        let pod_compute: Vec<f64> = pods_nodes
            .iter()
            .map(|nodes| nodes.iter().map(|&v| strength(v)).sum())
            .collect();
        let mut order: Vec<usize> = (0..pods_nodes.len()).collect();
        order.sort_by(|&a, &b| {
            pod_compute[b]
                .partial_cmp(&pod_compute[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut assigned = vec![0.0f64; num_models];
        let mut pod_model = vec![0usize; pods_nodes.len()];
        for &p in &order {
            let feasible = |m: usize| {
                pods_nodes[p]
                    .iter()
                    .map(|&v| layer_cap[m][v])
                    .sum::<usize>()
                    >= needed[m]
            };
            let m = (0..num_models)
                .filter(|&m| feasible(m))
                .min_by(|&x, &y| {
                    (assigned[x] / demand[x])
                        .partial_cmp(&(assigned[y] / demand[y]))
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(x.cmp(&y))
                })
                .ok_or(HelixError::NoPlacementFound)?;
            pod_model[p] = m;
            assigned[m] += pod_compute[p];
        }

        // Every model must own at least one pod: if one came up empty (all
        // pods preferred other models — only possible with extreme weight
        // skew), give it the largest pod it can hold.
        for m in 0..num_models {
            if pod_model.contains(&m) {
                continue;
            }
            let donor = order
                .iter()
                .copied()
                .find(|&p| {
                    let others = pod_model[p];
                    // Keep the donor's current model covered elsewhere.
                    pod_model
                        .iter()
                        .enumerate()
                        .any(|(q, &qm)| q != p && qm == others)
                        && pods_nodes[p]
                            .iter()
                            .map(|&v| layer_cap[m][v])
                            .sum::<usize>()
                            >= needed[m]
                })
                .ok_or(HelixError::NoPlacementFound)?;
            pod_model[donor] = m;
        }

        let mut owner = vec![usize::MAX; n];
        let pods: Vec<Pod> = pods_nodes
            .into_iter()
            .enumerate()
            .map(|(id, nodes)| {
                for &v in &nodes {
                    owner[v] = id;
                }
                Pod {
                    id,
                    model: ModelId(pod_model[id]),
                    nodes: nodes.into_iter().map(NodeId).collect(),
                }
            })
            .collect();
        debug_assert!(owner.iter().all(|&o| o != usize::MAX));
        Ok(PodMap { pods, owner })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow_graph::FlowGraphBuilder;
    use helix_cluster::{ClusterSpec, ModelConfig};

    fn quick_options(max_partition_size: usize) -> PartitionOptions {
        PartitionOptions {
            max_partition_size,
            annealing: AnnealingOptions {
                iterations: 200,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn groups_cover_all_nodes_exactly_once_and_can_hold_the_model() {
        let profile =
            ClusterProfile::analytic(ClusterSpec::single_cluster_24(), ModelConfig::llama_30b());
        let planner = PartitionedPlanner::new(&profile).with_options(quick_options(8));
        let groups = planner.node_groups();
        assert!(groups.len() >= 2, "24 nodes with max size 8 should split");
        let mut seen = [false; 24];
        for group in &groups {
            let capacity: usize = group
                .iter()
                .map(|&id| profile.node_profile(id).max_layers)
                .sum();
            assert!(
                capacity >= profile.model().num_layers,
                "every group must hold a full replica"
            );
            for &id in group {
                assert!(!seen[id.index()], "node {id:?} appears twice");
                seen[id.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every node belongs to a group");
    }

    #[test]
    fn region_grouping_keeps_partitions_inside_regions_when_possible() {
        let profile =
            ClusterProfile::analytic(ClusterSpec::geo_distributed_24(), ModelConfig::llama_30b());
        let planner = PartitionedPlanner::new(&profile).with_options(quick_options(12));
        let groups = planner.node_groups();
        let cluster = profile.cluster();
        // At least one group should be entirely within a single region (the
        // A100-only region can hold LLaMA 30B by itself).
        let single_region_groups = groups
            .iter()
            .filter(|group| {
                let first = cluster.node(group[0]).region;
                group.iter().all(|&id| cluster.node(id).region == first)
            })
            .count();
        assert!(single_region_groups >= 1, "groups: {groups:?}");
    }

    #[test]
    fn solve_produces_disjoint_replicas_with_additive_throughput() {
        let profile =
            ClusterProfile::analytic(ClusterSpec::single_cluster_24(), ModelConfig::llama_30b());
        let planner = PartitionedPlanner::new(&profile).with_options(quick_options(8));
        let plan = planner.solve().unwrap();
        assert!(plan.num_replicas() >= 2);
        assert!(plan.total_throughput() > 0.0);

        let combined = plan.combined_placement();
        combined.validate(&profile).unwrap();
        let graph = FlowGraphBuilder::new(&profile).build(&combined).unwrap();
        let flow = graph.max_flow();
        // Disjoint replicas add up: the combined placement's max flow must be
        // at least (almost) the sum of per-partition throughputs, and each
        // partition contributes something.
        assert!(
            flow.value >= 0.95 * plan.total_throughput(),
            "combined flow {} vs partition sum {}",
            flow.value,
            plan.total_throughput()
        );
        for partition in plan.partitions() {
            assert!(partition.throughput > 0.0);
            assert!(partition.placement.num_assigned() >= 1);
            assert!(partition.placement.num_assigned() <= partition.nodes.len());
        }
    }

    #[test]
    fn small_clusters_collapse_to_a_single_partition() {
        let profile =
            ClusterProfile::analytic(ClusterSpec::solver_quality_10(), ModelConfig::llama_30b());
        let planner = PartitionedPlanner::new(&profile).with_options(quick_options(32));
        let groups = planner.node_groups();
        assert_eq!(groups.len(), 1);
        let plan = planner.solve().unwrap();
        assert_eq!(plan.num_replicas(), 1);
        let combined = plan.combined_placement();
        assert!(combined.has_complete_pipeline(profile.model().num_layers));
    }

    // -- pod partitioner ----------------------------------------------------

    fn fleet(cluster: ClusterSpec, models: &[ModelConfig]) -> Vec<ClusterProfile> {
        crate::fleet::fleet_profiles(&cluster, models)
    }

    #[test]
    fn pods_cover_all_nodes_exactly_once_and_hold_their_model() {
        let profiles = fleet(
            ClusterSpec::single_cluster_24(),
            &[ModelConfig::llama_30b(), ModelConfig::llama_13b()],
        );
        let map = PodPartitioner::new(&profiles).partition().unwrap();
        let cluster = profiles[0].cluster();
        let mut seen = vec![false; cluster.num_nodes()];
        for pod in map.pods() {
            let m = pod.model.index();
            let capacity: usize = pod
                .nodes
                .iter()
                .map(|&id| profiles[m].node_profile(id).max_layers)
                .sum();
            assert!(
                capacity >= profiles[m].model().num_layers,
                "pod {} cannot hold model {m}",
                pod.id
            );
            for &id in &pod.nodes {
                assert!(!seen[id.index()], "node {id:?} in two pods");
                seen[id.index()] = true;
                assert_eq!(map.pod_of(id), Some(pod.id));
            }
        }
        assert!(seen.iter().all(|&s| s), "every node belongs to a pod");
        // Every model owns at least one pod.
        for m in 0..profiles.len() {
            assert!(map.pods_for(ModelId(m)).count() >= 1);
        }
    }

    #[test]
    fn pods_respect_region_locality_on_geo_clusters() {
        let profiles = fleet(
            ClusterSpec::geo_distributed_24(),
            &[ModelConfig::llama_30b()],
        );
        let map = PodPartitioner::new(&profiles)
            .with_options(PodPartitionOptions {
                max_pod_size: 12,
                ..Default::default()
            })
            .partition()
            .unwrap();
        let cluster = profiles[0].cluster();
        // At least one pod stays entirely inside a single region: intra-region
        // affinity dominates the agglomeration order.
        let single_region = map
            .pods()
            .iter()
            .filter(|pod| {
                let first = cluster.node(pod.nodes[0]).region;
                pod.nodes.iter().all(|&id| cluster.node(id).region == first)
            })
            .count();
        assert!(single_region >= 1, "pods: {:?}", map.pods());
    }

    #[test]
    fn sibling_pods_get_balanced_compute() {
        // single_cluster_24 is one region with A100s (0-3), L4s (4-11) and
        // T4s (12-23).  Slicing it by id order would give one all-strong and
        // one all-weak pod; round-robin dealing must mix them.
        let profiles = fleet(
            ClusterSpec::single_cluster_24(),
            &[ModelConfig::llama_30b()],
        );
        let map = PodPartitioner::new(&profiles)
            .with_options(PodPartitionOptions {
                max_pod_size: 12,
                ..Default::default()
            })
            .partition()
            .unwrap();
        assert!(map.num_pods() >= 2, "24 nodes at cap 12 should split");
        let cluster = profiles[0].cluster();
        let compute: Vec<f64> = map
            .pods()
            .iter()
            .map(|p| {
                p.nodes
                    .iter()
                    .map(|&id| cluster.node(id).total_fp16_flops())
                    .sum()
            })
            .collect();
        let max = compute.iter().cloned().fold(f64::MIN, f64::max);
        let min = compute.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            max / min < 1.5,
            "pod compute should be balanced, got {compute:?}"
        );
    }

    #[test]
    fn partition_is_deterministic() {
        let profiles = fleet(
            ClusterSpec::high_heterogeneity_42(),
            &[ModelConfig::llama_30b(), ModelConfig::llama_13b()],
        );
        let a = PodPartitioner::new(&profiles).partition().unwrap();
        let b = PodPartitioner::new(&profiles).partition().unwrap();
        assert_eq!(a.num_pods(), b.num_pods());
        for (pa, pb) in a.pods().iter().zip(b.pods()) {
            assert_eq!(pa.model, pb.model);
            assert_eq!(pa.nodes, pb.nodes);
        }
    }

    #[test]
    fn infeasible_fleet_is_rejected() {
        // A tiny cluster cannot hold a 175B model at all.
        let profiles = fleet(
            ClusterSpec::solver_quality_10(),
            &[ModelConfig::gpt3_175b()],
        );
        assert!(matches!(
            PodPartitioner::new(&profiles).partition(),
            Err(HelixError::NoPlacementFound)
        ));
    }
}
