//! Table 8: MILP problem size (variables / constraints) with and without
//! cluster pruning, for the 24-node and 42-node settings.
//!
//! ```text
//! cargo run --release -p helix-bench --bin table8_problem_size
//! ```

use helix_bench::{ExperimentReport, ExperimentScale};
use helix_cluster::{ClusterProfile, ClusterSpec, ModelConfig};
use helix_core::MilpPlacementPlanner;

fn main() {
    println!("=== Table 8: MILP problem size with and without pruning ===");
    println!(
        "{:<12} {:>22} {:>26}",
        "cluster", "with pruning (deg 12)", "without pruning"
    );
    let mut rows = Vec::new();
    for (name, cluster) in [
        ("24-node", ClusterSpec::geo_distributed_24()),
        ("42-node", ClusterSpec::high_heterogeneity_42()),
    ] {
        let profile = ClusterProfile::analytic(cluster, ModelConfig::llama2_70b());
        let pruned = MilpPlacementPlanner::new(&profile)
            .prune_to_degree(12)
            .problem_size();
        let full = MilpPlacementPlanner::new(&profile).problem_size();
        println!(
            "{:<12} {:>10} var {:>6} cstr {:>12} var {:>6} cstr",
            name, pruned.0, pruned.1, full.0, full.1
        );
        rows.push(serde_json::json!({
            "cluster": name,
            "pruned": {"variables": pruned.0, "constraints": pruned.1},
            "full": {"variables": full.0, "constraints": full.1},
            "paper": if name == "24-node" {
                serde_json::json!({"pruned": "876 var 1122 cstr", "full": "1376 var 1848 cstr"})
            } else {
                serde_json::json!({"pruned": "2144 var 2772 cstr", "full": "4004 var 5502 cstr"})
            },
        }));
    }
    println!("\n(paper: 24-node 876/1122 pruned, 1376/1848 full; 42-node 2144/2772 pruned, 4004/5502 full)");
    let report = ExperimentReport::new(
        "table8_problem_size",
        "Table 8",
        ExperimentScale::Quick,
        serde_json::json!({ "rows": rows }),
    );
    if let Ok(path) = report.write() {
        println!("wrote {}", path.display());
    }
}
