//! Analytic profiling of clusters: the numbers the planner and simulator
//! consume.
//!
//! The paper performs a one-time profiling run on every node and link (§4.3).
//! This module replaces that step with a roofline-style analytic model built
//! from the GPU data sheet (Table 3) and the model configuration: it yields
//! the same *kinds* of quantities — tokens/s a node can process when holding
//! `j` layers, tokens/s a link can carry — which is all the downstream
//! machinery needs.

use crate::cluster_spec::ClusterSpec;
use crate::model::ModelConfig;
use crate::node::{NetworkLink, NodeId};
use crate::{DECODE_EFFICIENCY, TOKEN_WIRE_BYTES, WEIGHT_VRAM_FRACTION};
use serde::{Deserialize, Serialize};

/// Fraction of peak FP16 throughput sustained during prompt processing
/// (large, compute-bound batches).
pub const PROMPT_EFFICIENCY: f64 = 0.40;

/// Hard ceiling on the fraction of VRAM that may hold weights; beyond the
/// recommended 50/50 split a node can over-pack weights (as the
/// separate-pipelines baseline does for LLaMA 70B, §6.3) at the cost of an
/// almost empty KV cache.
pub const MAX_WEIGHT_VRAM_FRACTION: f64 = 0.95;

/// Profiled characteristics of one compute node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeProfile {
    /// Which node this profile describes.
    pub node: NodeId,
    /// Maximum number of layers the node can hold while leaving
    /// `1 - WEIGHT_VRAM_FRACTION` of VRAM free for KV cache.
    pub max_layers: usize,
    /// Hard maximum number of layers that physically fit in VRAM
    /// (`MAX_WEIGHT_VRAM_FRACTION` of it), leaving almost no KV cache.
    pub max_layers_absolute: usize,
    /// Decode tokens/s the node sustains per layer held (divide by the number
    /// of layers held to get the node's token throughput).
    pub decode_tokens_per_layer_sec: f64,
    /// Prompt tokens/s the node sustains per layer held.
    pub prompt_tokens_per_layer_sec: f64,
    /// Tokens/s the node's NIC can carry (activation-sized transfers).
    pub nic_tokens_per_sec: f64,
    /// Total VRAM in bytes.
    pub vram_bytes: f64,
}

impl NodeProfile {
    /// Decode throughput (tokens/s) when the node holds `layers` layers,
    /// including the NIC limit — this is the capacity of the `(c_in, c_out)`
    /// edge in the paper's graph abstraction.
    ///
    /// Returns 0 for `layers == 0` or `layers > max_layers`.
    pub fn throughput(&self, layers: usize) -> f64 {
        if layers == 0 || layers > self.max_layers_absolute {
            return 0.0;
        }
        (self.decode_tokens_per_layer_sec / layers as f64).min(self.nic_tokens_per_sec)
    }

    /// Prompt-phase throughput (tokens/s) when holding `layers` layers.
    pub fn prompt_throughput(&self, layers: usize) -> f64 {
        if layers == 0 || layers > self.max_layers_absolute {
            return 0.0;
        }
        self.prompt_tokens_per_layer_sec / layers as f64
    }
}

/// Profiled characteristics of one directed network link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkProfile {
    /// The underlying link (bandwidth, latency, endpoints).
    pub link: NetworkLink,
    /// Tokens/s the link can carry given the transfer size used on it
    /// (activations between compute nodes, raw token ids to/from the
    /// coordinator).
    pub tokens_per_sec: f64,
    /// Bytes transferred per token on this link.
    pub bytes_per_token: f64,
}

/// A cluster plus model, profiled into planner-ready numbers.
///
/// # Example
///
/// ```rust
/// use helix_cluster::{ClusterProfile, ClusterSpec, ModelConfig};
///
/// let profile = ClusterProfile::analytic(
///     ClusterSpec::single_cluster_24(),
///     ModelConfig::llama2_70b(),
/// );
/// let first = profile.cluster().nodes()[0].id;
/// assert!(profile.node_profile(first).max_layers > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterProfile {
    cluster: ClusterSpec,
    model: ModelConfig,
    nodes: Vec<NodeProfile>,
}

impl ClusterProfile {
    /// Builds an analytic profile of `cluster` serving `model`.
    pub fn analytic(cluster: ClusterSpec, model: ModelConfig) -> Self {
        let nodes = cluster
            .nodes()
            .iter()
            .map(|n| {
                let weight_budget = n.total_vram_bytes() * WEIGHT_VRAM_FRACTION;
                let max_layers = ((weight_budget / model.layer_weight_bytes()).floor() as usize)
                    .min(model.num_layers);
                let hard_budget = n.total_vram_bytes() * MAX_WEIGHT_VRAM_FRACTION;
                let max_layers_absolute = ((hard_budget / model.layer_weight_bytes()).floor()
                    as usize)
                    .min(model.num_layers)
                    .max(max_layers);
                let flops = n.total_fp16_flops();
                let decode_tokens_per_layer_sec =
                    flops * DECODE_EFFICIENCY / model.layer_flops_per_token();
                let prompt_tokens_per_layer_sec =
                    flops * PROMPT_EFFICIENCY / model.layer_flops_per_token();
                let nic_tokens_per_sec =
                    n.nic_bandwidth_mbps * 1e6 / 8.0 / model.activation_bytes();
                NodeProfile {
                    node: n.id,
                    max_layers,
                    max_layers_absolute,
                    decode_tokens_per_layer_sec,
                    prompt_tokens_per_layer_sec,
                    nic_tokens_per_sec,
                    vram_bytes: n.total_vram_bytes(),
                }
            })
            .collect();
        ClusterProfile {
            cluster,
            model,
            nodes,
        }
    }

    /// Derives the per-model view of this profile inside a multi-model
    /// fleet: node `i`'s compute and NIC throughputs are multiplied by
    /// `compute_share[i]` (this model's fraction of the node's compute) and,
    /// when `vram_override[i]` is `Some`, the node's VRAM is replaced so that
    /// KV-capacity arithmetic sees only this model's slice of the free VRAM.
    ///
    /// A share of exactly `1.0` and an override of `None` leave the node's
    /// numbers bit-identical to the base profile, which is what makes the
    /// single-model fleet a trivial special case.
    ///
    /// # Panics
    ///
    /// Panics if the slices are shorter than the node count.
    pub fn scaled(&self, compute_share: &[f64], vram_override: &[Option<f64>]) -> ClusterProfile {
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let share = compute_share[i];
                NodeProfile {
                    node: n.node,
                    max_layers: n.max_layers,
                    max_layers_absolute: n.max_layers_absolute,
                    decode_tokens_per_layer_sec: n.decode_tokens_per_layer_sec * share,
                    prompt_tokens_per_layer_sec: n.prompt_tokens_per_layer_sec * share,
                    nic_tokens_per_sec: n.nic_tokens_per_sec * share,
                    vram_bytes: vram_override[i].unwrap_or(n.vram_bytes),
                }
            })
            .collect();
        ClusterProfile {
            cluster: self.cluster.clone(),
            model: self.model.clone(),
            nodes,
        }
    }

    /// The underlying cluster.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The model being served.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// Per-node profiles, indexed like [`ClusterSpec::nodes`].
    pub fn node_profiles(&self) -> &[NodeProfile] {
        &self.nodes
    }

    /// Profile of one node.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn node_profile(&self, id: NodeId) -> &NodeProfile {
        &self.nodes[id.index()]
    }

    /// Profile of the directed link between two endpoints (`None` =
    /// coordinator).  Links touching the coordinator carry 4-byte token ids;
    /// links between compute nodes carry activations.
    pub fn link_profile(&self, from: Option<NodeId>, to: Option<NodeId>) -> LinkProfile {
        let link = self.cluster.link(from, to);
        let bytes_per_token = if from.is_none() || to.is_none() {
            TOKEN_WIRE_BYTES
        } else {
            self.model.activation_bytes()
        };
        LinkProfile {
            link,
            tokens_per_sec: link.bandwidth_bytes_per_sec() / bytes_per_token,
            bytes_per_token,
        }
    }

    /// KV-cache capacity, in tokens, of a node holding `layers` layers.
    ///
    /// The VRAM not occupied by the held layers' weights is available for KV
    /// cache; each cached token costs `kv_bytes_per_token_per_layer × layers`.
    pub fn kv_capacity_tokens(&self, id: NodeId, layers: usize) -> f64 {
        if layers == 0 {
            return 0.0;
        }
        let p = self.node_profile(id);
        let weights = self.model.layer_weight_bytes() * layers as f64;
        let free = (p.vram_bytes - weights).max(0.0);
        free / (self.model.kv_bytes_per_token_per_layer() * layers as f64)
    }

    /// The paper's early-stop upper bound (§4.5): total cluster serving
    /// throughput can never exceed the sum of per-node compute throughput
    /// averaged over the total number of layers.
    pub fn throughput_upper_bound(&self) -> f64 {
        let per_layer_total: f64 = self
            .nodes
            .iter()
            .map(|n| n.decode_tokens_per_layer_sec)
            .sum();
        per_layer_total / self.model.num_layers as f64
    }

    /// Minimum number of pipeline stages such that the weakest node can hold
    /// one stage within its weight budget (how the paper configures Swarm).
    pub fn min_pipeline_stages(&self) -> usize {
        let weakest_layers = self
            .nodes
            .iter()
            .map(|n| n.max_layers)
            .min()
            .unwrap_or(0)
            .max(1);
        self.model.num_layers.div_ceil(weakest_layers)
    }

    /// Whether nodes of the given profile indices can hold the whole model
    /// between them (used to decide if a GPU type can form its own pipeline).
    pub fn can_hold_model(&self, ids: &[NodeId]) -> bool {
        let total: usize = ids.iter().map(|&id| self.node_profile(id).max_layers).sum();
        total >= self.model.num_layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuType;

    fn profile_70b() -> ClusterProfile {
        ClusterProfile::analytic(ClusterSpec::single_cluster_24(), ModelConfig::llama2_70b())
    }

    #[test]
    fn a100_holds_more_layers_than_t4() {
        let p = profile_70b();
        let cluster = p.cluster().clone();
        let a100 = cluster
            .node_ids()
            .find(|&id| cluster.node(id).gpu == GpuType::A100_40)
            .unwrap();
        let t4 = cluster
            .node_ids()
            .find(|&id| cluster.node(id).gpu == GpuType::T4)
            .unwrap();
        assert!(p.node_profile(a100).max_layers > p.node_profile(t4).max_layers);
        // A 40 GB A100 with a 50% weight budget holds roughly 11-12 layers of 70B.
        let a100_layers = p.node_profile(a100).max_layers;
        assert!((8..=14).contains(&a100_layers), "got {a100_layers}");
    }

    #[test]
    fn throughput_decreases_with_more_layers() {
        let p = profile_70b();
        let id = p.cluster().nodes()[0].id;
        let np = p.node_profile(id).clone();
        assert!(np.throughput(1) >= np.throughput(2));
        assert!(np.throughput(2) >= np.throughput(4));
        assert_eq!(np.throughput(0), 0.0);
        assert_eq!(np.throughput(np.max_layers_absolute + 1), 0.0);
        assert!(np.max_layers_absolute >= np.max_layers);
        // Over-packing beyond the recommended budget is possible but slower per token held.
        assert!(np.throughput(np.max_layers_absolute) <= np.throughput(np.max_layers));
        assert!(np.prompt_throughput(1) > np.throughput(1));
    }

    #[test]
    fn no_single_gpu_type_can_hold_llama70b_alone_in_type_counts_of_the_paper() {
        // §6.3: for LLaMA 70B, nodes of a single GPU type cannot serve a
        // replica while leaving enough VRAM for KV cache... except A100s
        // (4x40GB = 160 GB; half is 80 GB < 140 GB of weights) - in fact none
        // of the three types can alone.
        let p = profile_70b();
        let cluster = p.cluster().clone();
        for gpu in [GpuType::A100_40, GpuType::L4, GpuType::T4] {
            let ids: Vec<_> = cluster
                .node_ids()
                .filter(|&id| cluster.node(id).gpu == gpu)
                .collect();
            assert!(
                !p.can_hold_model(&ids),
                "{gpu} alone should not hold LLaMA 70B"
            );
        }
        // But the full cluster can.
        let all: Vec<_> = cluster.node_ids().collect();
        assert!(p.can_hold_model(&all));
    }

    #[test]
    fn each_gpu_type_can_hold_llama30b_alone() {
        // §6.3: for LLaMA 30B each GPU type has enough nodes for its own pipeline.
        let p =
            ClusterProfile::analytic(ClusterSpec::single_cluster_24(), ModelConfig::llama_30b());
        let cluster = p.cluster().clone();
        for gpu in [GpuType::A100_40, GpuType::L4, GpuType::T4] {
            let ids: Vec<_> = cluster
                .node_ids()
                .filter(|&id| cluster.node(id).gpu == gpu)
                .collect();
            assert!(p.can_hold_model(&ids), "{gpu} nodes should hold LLaMA 30B");
        }
    }

    #[test]
    fn scaled_profile_splits_compute_and_kv() {
        let p = profile_70b();
        let n = p.cluster().num_nodes();
        // Unit shares and no overrides reproduce the base profile exactly.
        let identity = p.scaled(&vec![1.0; n], &vec![None; n]);
        assert_eq!(identity, p);
        // A half share halves compute and NIC throughput but keeps layer
        // capacities (weight placement limits are fleet-level concerns).
        let mut shares = vec![1.0; n];
        shares[0] = 0.5;
        let mut overrides = vec![None; n];
        overrides[0] = Some(p.node_profile(NodeId(0)).vram_bytes * 0.5);
        let scaled = p.scaled(&shares, &overrides);
        let base0 = p.node_profile(NodeId(0));
        let scaled0 = scaled.node_profile(NodeId(0));
        assert_eq!(
            scaled0.decode_tokens_per_layer_sec,
            base0.decode_tokens_per_layer_sec * 0.5
        );
        assert_eq!(scaled0.max_layers, base0.max_layers);
        assert!(scaled.kv_capacity_tokens(NodeId(0), 4) < p.kv_capacity_tokens(NodeId(0), 4));
        // Untouched nodes stay identical.
        assert_eq!(scaled.node_profile(NodeId(1)), p.node_profile(NodeId(1)));
    }

    #[test]
    fn coordinator_links_carry_tokens_not_activations() {
        let p = profile_70b();
        let id = p.cluster().nodes()[0].id;
        let to_node = p.link_profile(None, Some(id));
        let between = p.link_profile(Some(id), Some(p.cluster().nodes()[1].id));
        assert_eq!(to_node.bytes_per_token, TOKEN_WIRE_BYTES);
        assert_eq!(between.bytes_per_token, p.model().activation_bytes());
        assert!(to_node.tokens_per_sec > between.tokens_per_sec);
    }

    #[test]
    fn kv_capacity_positive_and_decreasing_in_layers() {
        let p = profile_70b();
        let id = p.cluster().nodes()[0].id;
        let max = p.node_profile(id).max_layers;
        let at_half = p.kv_capacity_tokens(id, max / 2);
        let at_max = p.kv_capacity_tokens(id, max);
        assert!(at_half > at_max);
        assert!(at_max > 0.0);
        assert_eq!(p.kv_capacity_tokens(id, 0), 0.0);
    }

    #[test]
    fn upper_bound_and_pipeline_stages() {
        let p = profile_70b();
        assert!(p.throughput_upper_bound() > 0.0);
        // Weakest node is a T4 holding ~4 layers of 70B -> about 20 stages.
        let stages = p.min_pipeline_stages();
        assert!((15..=30).contains(&stages), "got {stages}");
    }
}
