//! Property-based tests for placement, flow-graph and scheduling invariants.

use helix_cluster::{ClusterBuilder, ClusterProfile, GpuType, ModelConfig, NodeId, Region};
use helix_core::{
    heuristics, FlowGraphBuilder, IdleClusterState, LayerRange, ModelPlacement, RandomScheduler,
    Scheduler, Topology,
};
use proptest::prelude::*;

/// Builds a random small heterogeneous cluster profile for a short model.
fn random_profile(a100s: usize, l4s: usize, t4s: usize, num_layers: usize) -> ClusterProfile {
    let cluster = ClusterBuilder::new("prop")
        .intra_region(1_000.0, 1.0)
        .add_nodes(GpuType::A100_40, a100s, 1, Region(0))
        .add_nodes(GpuType::L4, l4s, 1, Region(0))
        .add_nodes(GpuType::T4, t4s, 1, Region(0))
        .build();
    let mut model = ModelConfig::llama2_70b();
    model.num_layers = num_layers;
    ClusterProfile::analytic(cluster, model)
}

/// Builds a placement from per-node (start, len) pairs, clamped to be valid
/// ranges inside the model (but not necessarily VRAM-feasible).
fn placement_from(profile: &ClusterProfile, raw: &[(usize, usize)]) -> ModelPlacement {
    let num_layers = profile.model().num_layers;
    let mut placement = ModelPlacement::empty(profile.cluster().num_nodes());
    for (i, id) in profile.cluster().node_ids().enumerate() {
        if let Some(&(start, len)) = raw.get(i) {
            let len = (len % profile.node_profile(id).max_layers.max(1)).max(1);
            let len = len.min(num_layers);
            let start = start % (num_layers - len + 1);
            placement.assign(id, LayerRange::new(start, start + len));
        }
    }
    placement
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any placement's max flow is bounded by the cluster throughput upper
    /// bound and by the total capacity of entry links.
    #[test]
    fn placement_flow_respects_upper_bound(
        raw in prop::collection::vec((0usize..20, 1usize..12), 6..9),
        num_layers in 6usize..16,
    ) {
        let profile = random_profile(1, 3, 4, num_layers);
        let placement = placement_from(&profile, &raw);
        let builder = FlowGraphBuilder::new(&profile);
        if let Ok(graph) = builder.build(&placement) {
            let flow = graph.max_flow();
            prop_assert!(flow.value <= profile.throughput_upper_bound() * 1.0001);
            prop_assert!(flow.value >= 0.0);
            // Flow through any node never exceeds its capacity.
            for id in profile.cluster().node_ids() {
                if let (Some(f), Some(cap)) = (graph.node_flow(&flow, id), graph.node_capacity(id)) {
                    prop_assert!(f <= cap + 1e-6);
                }
            }
        }
    }

    /// Partial inference can only add valid connections, so it never lowers
    /// the max flow of a placement.
    #[test]
    fn partial_inference_is_monotone(
        raw in prop::collection::vec((0usize..20, 1usize..12), 6..9),
        num_layers in 6usize..16,
    ) {
        let profile = random_profile(1, 3, 4, num_layers);
        let placement = placement_from(&profile, &raw);
        let with = FlowGraphBuilder::new(&profile).partial_inference(true).build(&placement);
        let without = FlowGraphBuilder::new(&profile).partial_inference(false).build(&placement);
        if let (Ok(w), Ok(wo)) = (with, without) {
            prop_assert!(w.max_flow().value >= wo.max_flow().value - 1e-6);
        }
    }

    /// Pruning the connection set never increases the max flow.
    #[test]
    fn pruning_is_monotone_decreasing(
        raw in prop::collection::vec((0usize..20, 1usize..12), 6..9),
        degree in 1usize..6,
    ) {
        let profile = random_profile(1, 3, 4, 12);
        let placement = placement_from(&profile, &raw);
        let full = FlowGraphBuilder::new(&profile).build(&placement);
        let pruned = FlowGraphBuilder::new(&profile).prune_to_degree(degree).build(&placement);
        if let (Ok(f), Ok(p)) = (full, pruned) {
            prop_assert!(p.max_flow().value <= f.max_flow().value + 1e-6);
        }
    }

    /// The heuristic placements are always valid and always admit a complete
    /// pipeline on clusters that can hold the model.
    #[test]
    fn heuristics_always_produce_valid_placements(
        a100s in 1usize..3,
        l4s in 1usize..5,
        t4s in 1usize..6,
        num_layers in 8usize..24,
    ) {
        let profile = random_profile(a100s, l4s, t4s, num_layers);
        for placement in [
            heuristics::swarm_placement(&profile),
            heuristics::petals_placement(&profile),
        ].into_iter().flatten() {
            prop_assert!(placement.validate(&profile).is_ok());
            prop_assert!(placement.has_complete_pipeline(num_layers));
        }
    }

    /// Every pipeline produced by any scheduler covers the model exactly once
    /// and in order, and only visits nodes that hold the layers they compute.
    #[test]
    fn scheduled_pipelines_cover_the_model(seed in 0u64..5000) {
        let profile = random_profile(1, 2, 3, 12);
        let placement = heuristics::petals_placement(&profile).unwrap();
        let topology = Topology::plan(&profile, &placement, true).unwrap();
        let mut scheduler = RandomScheduler::new(&topology, seed);
        let state = IdleClusterState;
        for _ in 0..5 {
            let pipeline = scheduler.schedule(&state).unwrap();
            prop_assert!(pipeline.covers_model(12));
            for stage in &pipeline.stages {
                let held = placement.range(stage.node).unwrap();
                prop_assert!(held.start <= stage.layers.start);
                prop_assert_eq!(held.end, stage.layers.end);
            }
        }
    }

    /// Layer-range containment and connection validity behave consistently.
    #[test]
    fn connection_validity_is_consistent_with_ranges(
        s1 in 0usize..10, l1 in 1usize..6,
        s2 in 0usize..10, l2 in 1usize..6,
    ) {
        let mut placement = ModelPlacement::empty(2);
        placement.assign(NodeId(0), LayerRange::new(s1, s1 + l1));
        placement.assign(NodeId(1), LayerRange::new(s2, s2 + l2));
        let strict = placement.connection_valid(NodeId(0), NodeId(1), false);
        let partial = placement.connection_valid(NodeId(0), NodeId(1), true);
        // Strict validity implies partial validity.
        if strict {
            prop_assert!(partial);
        }
        // Partial validity matches the paper's condition s_j <= e_i < e_j.
        prop_assert_eq!(partial, s2 <= s1 + l1 && s1 + l1 < s2 + l2);
    }
}
