//! Latency of the session front door: submit → completion through a live
//! `ServingSession` (coordinator thread, fabric thread, instant-execution
//! workers), and the amortised per-request cost of a pipelined burst.
//!
//! These measure the *control plane* of the session path — scheduling, the
//! control channel, fabric message passing, dynamic batching, KV paging and
//! the completion stream — with the instant execution model, so no time is
//! spent in the (modelled) GPU kernels.
//!
//! Run with `cargo bench -p helix-bench --bench session`; results are
//! recorded in `BENCH_session.json` at the repository root.

use criterion::{criterion_group, criterion_main, Criterion};
use helix_cluster::{ClusterProfile, ClusterSpec, ModelConfig};
use helix_core::{heuristics, Topology};
use helix_runtime::{ExecutionKind, RuntimeConfig, ServingBuilder, ServingSession};
use helix_workload::Request;
use std::hint::black_box;
use std::time::Duration;

fn topology() -> Topology {
    let profile =
        ClusterProfile::analytic(ClusterSpec::solver_quality_10(), ModelConfig::llama_30b());
    let placement = heuristics::swarm_placement(&profile).unwrap();
    Topology::plan(&profile, &placement, true).unwrap()
}

fn config() -> RuntimeConfig {
    RuntimeConfig {
        wall_per_virtual: 0.0001,
        execution: ExecutionKind::Instant,
        // The standing session outlives many samples; never trip the budget.
        max_wall: Duration::from_secs(3600),
        ..RuntimeConfig::default()
    }
}

fn session(topology: &Topology) -> ServingSession {
    ServingBuilder::new()
        .topology(topology)
        .config(config())
        .build()
        .unwrap()
}

fn request(id: u64) -> Request {
    Request {
        id,
        prompt_tokens: 64,
        output_tokens: 4,
        arrival_time: 0.0,
        ..Request::default()
    }
}

fn bench_session_path(c: &mut Criterion) {
    let topology = topology();
    let mut group = c.benchmark_group("session_path");
    group.sample_size(10);

    // One standing live session; each iteration is one full round trip:
    // submit → coordinator schedules → fabric delivers → workers execute the
    // prompt + 3 decode iterations → completion streams back.
    let mut live = session(&topology);
    let mut next_id = 0u64;
    group.bench_function("submit_to_completion", |b| {
        b.iter(|| {
            let ticket = live.submit(request(next_id));
            next_id += 1;
            black_box(live.wait_completion(ticket).unwrap().completed_at)
        })
    });

    // Twenty requests in flight at once: the amortised per-request cost when
    // the session pipeline is kept full (divide by 20).
    group.bench_function("pipelined_burst_of_20", |b| {
        b.iter(|| {
            let tickets: Vec<_> = (0..20)
                .map(|_| {
                    let ticket = live.submit(request(next_id));
                    next_id += 1;
                    ticket
                })
                .collect();
            live.drain().unwrap();
            for ticket in tickets {
                black_box(live.wait_completion(ticket).unwrap());
            }
        })
    });
    let report = live.finish().unwrap();
    assert_eq!(report.completed() as u64, next_id);

    // Baseline: the legacy batch loop (build + serve + teardown) for the
    // same 20-request burst, for an apples-to-oranges sanity anchor.
    group.bench_function("batch_build_serve_20", |b| {
        b.iter(|| {
            let batch = session(&topology);
            let workload = helix_workload::Workload::new((0..20u64).map(request).collect());
            black_box(batch.serve(&workload).unwrap().completed())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_session_path);
criterion_main!(benches);
