//! The live worker set shared by the coordinator, the network fabric and the
//! serving front door.
//!
//! The pre-session runtime fixed its worker set at build time: the fabric
//! owned an immutable `HashMap` of delivery channels and online re-planning
//! could only re-weight the workers that already existed.  The registry makes
//! membership dynamic: the coordinator can [`spawn`](WorkerSpawner::spawn) a
//! worker for a (node, model) pair the moment a re-plan's `PlacementDelta`
//! adds that tenancy, and [`detach`](WorkerRegistry::detach) one once its
//! in-flight pipelines have drained — while the fabric keeps routing over
//! whatever the set currently is.
//!
//! Workers are tasks on the data plane's executor, so the registry keeps no
//! join handles: a worker finishes when it processes its shutdown, and the
//! executor's `drain` runs every task to completion at teardown.

use crate::clock::VirtualClock;
use crate::exec::{AnalyticExecution, ExecutionModel, InstantExecution};
use crate::message::{Envelope, PlanUpdate, RuntimeMsg};
use crate::runtime::ExecutionKind;
use crate::worker::{self, SharedWorkerStats, WorkerConfig, WorkerStats};
use helix_cluster::{ClusterProfile, ModelId, NodeId};
use minirt::channel::{unbounded, Sender};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// Key of one worker: the (compute node, fleet model) pair it serves.
pub(crate) type WorkerKey = (NodeId, ModelId);

/// Report-facing facts about one worker that outlive its task.
#[derive(Debug, Clone)]
pub(crate) struct WorkerMeta {
    /// Human-readable node name from the cluster spec.
    pub name: String,
    /// Layers the worker's node holds for its model.
    pub layers: usize,
}

#[derive(Default)]
struct RegistryInner {
    /// Delivery channel per live worker; detached workers are removed here
    /// (the fabric drops messages for them) but keep their stats and meta.
    txs: HashMap<WorkerKey, Sender<RuntimeMsg>>,
    /// Shared statistics of every worker ever registered.
    stats: HashMap<WorkerKey, SharedWorkerStats>,
    /// Report metadata of every worker ever registered.
    meta: HashMap<WorkerKey, WorkerMeta>,
}

/// Thread-safe, mutable worker membership: who exists, how to reach them,
/// and the statistics they share.
///
/// Reads vastly outnumber membership changes (the fabric resolves a route
/// per message, the coordinator's scheduler view reads stats per candidate),
/// so the map sits behind an `RwLock`: routing and observation take shared
/// read locks and only spawn/retire take the write lock.
#[derive(Default)]
pub(crate) struct WorkerRegistry {
    inner: RwLock<RegistryInner>,
}

impl WorkerRegistry {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Registers a newly spawned worker under `key`.
    ///
    /// A pair that is re-added after an earlier incarnation retired seeds
    /// the new worker's cumulative counters (busy/nominal seconds, batches,
    /// tokens, rejections) from its predecessor, so the final report's
    /// per-(node, model) totals stay complete and observation windows —
    /// which mark cumulative counters — stay monotonic.
    pub(crate) fn register(
        &self,
        key: WorkerKey,
        tx: Sender<RuntimeMsg>,
        stats: SharedWorkerStats,
        meta: WorkerMeta,
    ) {
        let mut inner = self.inner.write();
        if let Some(previous) = inner.stats.get(&key) {
            let prev = previous.lock().clone();
            let mut fresh = stats.lock();
            fresh.busy_secs += prev.busy_secs;
            fresh.nominal_busy_secs += prev.nominal_busy_secs;
            fresh.batches += prev.batches;
            fresh.prompt_tokens += prev.prompt_tokens;
            fresh.decode_tokens += prev.decode_tokens;
            fresh.kv_rejections += prev.kv_rejections;
            fresh.kv_peak_utilization = fresh.kv_peak_utilization.max(prev.kv_peak_utilization);
        }
        inner.txs.insert(key, tx);
        inner.stats.insert(key, stats);
        inner.meta.insert(key, meta);
    }

    /// Whether a live (routable) worker exists for `key`.
    pub(crate) fn is_live(&self, key: WorkerKey) -> bool {
        self.inner.read().txs.contains_key(&key)
    }

    /// The delivery channel of a live worker, if any.
    pub(crate) fn route(&self, key: WorkerKey) -> Option<Sender<RuntimeMsg>> {
        self.inner.read().txs.get(&key).cloned()
    }

    /// Sends `msg` to every live worker of `node`, across models.
    pub(crate) fn send_to_node(&self, node: NodeId, msg: RuntimeMsg) {
        let inner = self.inner.read();
        for (&(n, _), tx) in &inner.txs {
            if n == node {
                let _ = tx.send(msg.clone());
            }
        }
    }

    /// The live worker keys of one model.
    pub(crate) fn live_keys_for_model(&self, model: ModelId) -> Vec<WorkerKey> {
        let inner = self.inner.read();
        inner
            .txs
            .keys()
            .copied()
            .filter(|&(_, m)| m == model)
            .collect()
    }

    /// The shared statistics handle of one worker (live or detached).
    pub(crate) fn stats(&self, key: WorkerKey) -> Option<SharedWorkerStats> {
        self.inner.read().stats.get(&key).cloned()
    }

    /// Updates the report metadata of one worker after an in-place plan
    /// update changed its layer assignment.
    pub(crate) fn update_meta(&self, key: WorkerKey, layers: usize) {
        let mut inner = self.inner.write();
        if let Some(meta) = inner.meta.get_mut(&key) {
            meta.layers = layers;
        }
    }

    /// Clones every *live* worker's current statistics, sorted by key for
    /// deterministic iteration (detached workers stop being observed).
    pub(crate) fn live_stats_snapshot(&self) -> Vec<(WorkerKey, WorkerStats)> {
        let inner = self.inner.read();
        let mut out: Vec<(WorkerKey, WorkerStats)> = inner
            .txs
            .keys()
            .map(|&key| (key, inner.stats[&key].lock().clone()))
            .collect();
        out.sort_by_key(|&(key, _)| key);
        out
    }

    /// Report rows for every worker ever registered, sorted by (node, model)
    /// — the same order the pre-session runtime reported in.
    pub(crate) fn report_rows(&self) -> Vec<(WorkerKey, WorkerMeta, WorkerStats)> {
        let inner = self.inner.read();
        let mut out: Vec<(WorkerKey, WorkerMeta, WorkerStats)> = inner
            .meta
            .iter()
            .map(|(&key, meta)| {
                let stats = inner.stats[&key].lock().clone();
                (key, meta.clone(), stats)
            })
            .collect();
        out.sort_by_key(|&(key, _, _)| key);
        out
    }

    /// Retires one worker: sends it a shutdown and removes its delivery
    /// channel so the fabric stops routing to it.  Its statistics and report
    /// metadata survive; its task runs to completion on the executor.
    ///
    /// The caller is responsible for only detaching workers whose in-flight
    /// pipelines have drained (drain-then-switch).
    pub(crate) fn detach(&self, key: WorkerKey) {
        let mut inner = self.inner.write();
        if let Some(tx) = inner.txs.remove(&key) {
            let _ = tx.send(RuntimeMsg::Shutdown);
        }
    }

    /// Sends a shutdown to every live worker.
    pub(crate) fn shutdown_all(&self) {
        let inner = self.inner.read();
        for tx in inner.txs.values() {
            let _ = tx.send(RuntimeMsg::Shutdown);
        }
    }
}

/// Everything needed to spawn one more worker mid-run: the executor, the
/// clock, the fabric ingress, the execution-model choice and the KV-pool
/// parameters the original build used.
pub(crate) struct WorkerSpawner {
    pub executor: minirt::Executor,
    pub clock: VirtualClock,
    pub fabric: Sender<Envelope>,
    pub execution: ExecutionKind,
    pub tokens_per_page: usize,
    pub kv_overflow_penalty: f64,
    pub registry: Arc<WorkerRegistry>,
}

impl WorkerSpawner {
    /// Builds the execution model a worker of `node` should run under the
    /// current plan.
    fn execution_for(&self, profile: &ClusterProfile, node: NodeId) -> Arc<dyn ExecutionModel> {
        match self.execution {
            ExecutionKind::Analytic => Arc::new(AnalyticExecution::new(profile.node_profile(node))),
            ExecutionKind::Instant => Arc::new(InstantExecution),
        }
    }

    /// Spawns and registers a worker task for `(node, model)` with the given
    /// plan facts.  If a live worker already exists for the pair, its plan is
    /// updated **in place** instead: the worker swaps its execution model and
    /// re-sizes its KV pool without dropping queued work — surviving
    /// tenancies track a re-plan just like the simulator's re-split engines.
    pub(crate) fn spawn(
        &self,
        profile: &ClusterProfile,
        node: NodeId,
        model: ModelId,
        name: &str,
        layers: usize,
        kv_capacity_tokens: f64,
    ) {
        if self.registry.is_live((node, model)) {
            if let Some(tx) = self.registry.route((node, model)) {
                let _ = tx.send(RuntimeMsg::UpdatePlan(PlanUpdate {
                    execution: self.execution_for(profile, node),
                    kv_capacity_tokens,
                    layers,
                }));
            }
            self.registry.update_meta((node, model), layers);
            return;
        }
        let (tx, rx) = unbounded::<RuntimeMsg>();
        let stats: SharedWorkerStats = Arc::new(Mutex::new(WorkerStats::default()));
        let config = WorkerConfig {
            node,
            model,
            activation_bytes: profile.model().activation_bytes(),
            kv_capacity_tokens,
            tokens_per_page: self.tokens_per_page,
            kv_overflow_penalty: self.kv_overflow_penalty,
        };
        let _handle = worker::spawn_worker(
            &self.executor,
            config,
            self.execution_for(profile, node),
            self.clock,
            rx,
            self.fabric.clone(),
            Arc::clone(&stats),
        );
        self.registry.register(
            (node, model),
            tx,
            stats,
            WorkerMeta {
                name: name.to_string(),
                layers,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_entry(registry: &WorkerRegistry, key: WorkerKey) -> Sender<RuntimeMsg> {
        let (tx, _rx) = unbounded::<RuntimeMsg>();
        let stats: SharedWorkerStats = Arc::new(Mutex::new(WorkerStats::default()));
        registry.register(
            key,
            tx.clone(),
            stats,
            WorkerMeta {
                name: format!("n{}", key.0.index()),
                layers: 4,
            },
        );
        tx
    }

    #[test]
    fn detach_stops_routing_but_keeps_the_report_row() {
        let registry = WorkerRegistry::new();
        let key = (NodeId(3), ModelId(1));
        let _tx = dummy_entry(&registry, key);
        assert!(registry.is_live(key));
        assert!(registry.route(key).is_some());

        registry.detach(key);
        assert!(!registry.is_live(key));
        assert!(registry.route(key).is_none());
        // Stats and meta survive detachment for the final report.
        assert!(registry.stats(key).is_some());
        let rows = registry.report_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, key);
    }

    #[test]
    fn respawned_pair_inherits_its_predecessors_counters() {
        let registry = WorkerRegistry::new();
        let key = (NodeId(1), ModelId(0));
        let _tx = dummy_entry(&registry, key);
        {
            let stats = registry.stats(key).unwrap();
            let mut s = stats.lock();
            s.busy_secs = 3.0;
            s.batches = 7;
            s.decode_tokens = 40;
        }
        registry.detach(key);

        // Re-adding the tenancy must not lose the first incarnation's work
        // from the report, nor make cumulative counters go backwards.
        let _tx2 = dummy_entry(&registry, key);
        let seeded = registry.stats(key).unwrap().lock().clone();
        assert_eq!(seeded.batches, 7);
        assert_eq!(seeded.decode_tokens, 40);
        assert!((seeded.busy_secs - 3.0).abs() < 1e-12);
        registry.shutdown_all();
    }

    #[test]
    fn report_rows_are_sorted_by_node_then_model() {
        let registry = WorkerRegistry::new();
        for key in [
            (NodeId(2), ModelId(0)),
            (NodeId(0), ModelId(1)),
            (NodeId(0), ModelId(0)),
        ] {
            let _ = dummy_entry(&registry, key);
        }
        let keys: Vec<WorkerKey> = registry.report_rows().iter().map(|r| r.0).collect();
        assert_eq!(
            keys,
            vec![
                (NodeId(0), ModelId(0)),
                (NodeId(0), ModelId(1)),
                (NodeId(2), ModelId(0)),
            ]
        );
        assert_eq!(registry.live_keys_for_model(ModelId(0)).len(), 2);
        registry.shutdown_all();
    }

    #[test]
    fn update_meta_rewrites_the_report_layer_count() {
        let registry = WorkerRegistry::new();
        let key = (NodeId(0), ModelId(0));
        let _tx = dummy_entry(&registry, key);
        registry.update_meta(key, 9);
        assert_eq!(registry.report_rows()[0].1.layers, 9);
    }
}
