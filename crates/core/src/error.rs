//! Error type shared by the placement planner and schedulers.

use helix_cluster::{ModelId, NodeId};
use std::error::Error;
use std::fmt;

/// Errors produced by Helix planning and scheduling.
#[derive(Debug, Clone, PartialEq)]
pub enum HelixError {
    /// A placement assigned a node an invalid layer range.
    InvalidLayerRange {
        /// The offending node.
        node: NodeId,
        /// Start layer (inclusive).
        start: usize,
        /// End layer (exclusive).
        end: usize,
        /// Total number of model layers.
        num_layers: usize,
    },
    /// A placement exceeds a node's VRAM budget for weights.
    ExceedsNodeCapacity {
        /// The offending node.
        node: NodeId,
        /// Layers the placement asks the node to hold.
        layers: usize,
        /// Maximum layers the node can hold.
        max_layers: usize,
    },
    /// The placement cannot serve any request end-to-end (no source→sink path
    /// covering all layers).
    NoCompletePipeline,
    /// The planner could not find any feasible placement under the
    /// configured constraints and budget.
    NoPlacementFound,
    /// The underlying MILP solver failed.
    Milp(helix_milp::MilpError),
    /// The underlying flow computation failed.
    Flow(helix_maxflow::FlowError),
    /// A scheduler was asked to schedule before any pipeline exists or after
    /// all candidates were masked out.
    NoCandidateAvailable {
        /// Human-readable context, e.g. which vertex had no candidates.
        context: String,
    },
    /// A request referenced a model the fleet does not serve.
    UnknownModel {
        /// The requested model.
        model: ModelId,
        /// Number of models the fleet serves.
        num_models: usize,
    },
    /// A fleet was wired with the wrong number of per-model schedulers.
    SchedulerCountMismatch {
        /// Models the fleet serves.
        models: usize,
        /// Schedulers supplied.
        schedulers: usize,
    },
    /// A partial-layer migration cannot be resolved against the current
    /// placement.
    InvalidMigration {
        /// The model whose layers were to move.
        model: ModelId,
        /// The source node.
        from: NodeId,
        /// The destination node.
        to: NodeId,
        /// The moved layer range.
        layers: crate::placement::LayerRange,
        /// Why the migration is invalid.
        why: &'static str,
    },
    /// A fleet placement over-commits a node's VRAM across models.
    FleetVramOverflow {
        /// The over-committed node.
        node: NodeId,
        /// Bytes of weights the fleet places on the node.
        needed_bytes: f64,
        /// Bytes of VRAM available for weights on the node.
        budget_bytes: f64,
    },
}

impl fmt::Display for HelixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HelixError::InvalidLayerRange { node, start, end, num_layers } => write!(
                f,
                "invalid layer range [{start}, {end}) on {node} for a model with {num_layers} layers"
            ),
            HelixError::ExceedsNodeCapacity { node, layers, max_layers } => write!(
                f,
                "placement puts {layers} layers on {node} which can hold at most {max_layers}"
            ),
            HelixError::NoCompletePipeline => {
                write!(f, "placement admits no complete pipeline from the first to the last layer")
            }
            HelixError::NoPlacementFound => {
                write!(f, "no feasible model placement found within the search budget")
            }
            HelixError::Milp(e) => write!(f, "milp solver error: {e}"),
            HelixError::Flow(e) => write!(f, "flow computation error: {e}"),
            HelixError::NoCandidateAvailable { context } => {
                write!(f, "no schedulable candidate available: {context}")
            }
            HelixError::UnknownModel { model, num_models } => {
                write!(f, "request for {model} but the fleet serves {num_models} model(s)")
            }
            HelixError::SchedulerCountMismatch { models, schedulers } => write!(
                f,
                "a fleet serving {models} model(s) needs one scheduler per model, got {schedulers}"
            ),
            HelixError::InvalidMigration { model, from, to, layers, why } => write!(
                f,
                "cannot migrate layers {layers} of {model} from {from} to {to}: {why}"
            ),
            HelixError::FleetVramOverflow { node, needed_bytes, budget_bytes } => write!(
                f,
                "fleet placement puts {needed_bytes:.0} bytes of weights on {node} whose weight budget is {budget_bytes:.0} bytes"
            ),
        }
    }
}

impl Error for HelixError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            HelixError::Milp(e) => Some(e),
            HelixError::Flow(e) => Some(e),
            _ => None,
        }
    }
}

impl From<helix_milp::MilpError> for HelixError {
    fn from(e: helix_milp::MilpError) -> Self {
        HelixError::Milp(e)
    }
}

impl From<helix_maxflow::FlowError> for HelixError {
    fn from(e: helix_maxflow::FlowError) -> Self {
        HelixError::Flow(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_and_convert() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HelixError>();
        let e = HelixError::ExceedsNodeCapacity {
            node: NodeId(1),
            layers: 9,
            max_layers: 4,
        };
        assert!(e.to_string().contains("9 layers"));
        let from_milp: HelixError = helix_milp::MilpError::Infeasible.into();
        assert!(matches!(from_milp, HelixError::Milp(_)));
        assert!(from_milp.source().is_some());
        let from_flow: HelixError = helix_maxflow::FlowError::SourceIsSink.into();
        assert!(matches!(from_flow, HelixError::Flow(_)));
    }
}
