//! The live serving front door.
//!
//! A [`ServingSession`] is a long-lived handle over the wired data plane
//! (coordinator, workers, fabric): requests are submitted without blocking,
//! completions stream back as they happen, and a small control plane accepts
//! mid-run perturbations ([`inject_speed`](ServingSession::inject_speed)),
//! placement deltas that can *spawn new workers*
//! ([`apply_placement_delta`](ServingSession::apply_placement_delta)) and
//! drain-aware worker retirement.  The legacy batch call is a thin
//! convenience wrapper: [`ServingSession::serve`] on a fresh session runs the
//! exact same blocking loop the pre-session runtime ran, so its report is
//! bit-identical to the old `ServingRuntime::serve`.
//!
//! The whole data plane — coordinator, workers, fabric — is a set of async
//! tasks on one executor.  The batch path drives it inline on the calling
//! thread; once the session goes live (first `submit`, delta or retirement)
//! a single dedicated `helix-dataplane` thread drives it, so the OS thread
//! count stays O(1) however many nodes the fleet has.

use crate::coordinator::{CoordinatorArtifacts, CoordinatorMsg, SessionControl};
use crate::error::RuntimeError;
use crate::message::RuntimeMsg;
use crate::metrics::{RequestOutcome, RuntimeReport};
use crate::runtime::Wired;
use helix_cluster::{ModelId, NodeId};
use helix_core::{PlacementDelta, ReplicationPolicy};
use helix_workload::{Request, TicketId, Workload};
use minirt::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::VecDeque;
use std::thread::JoinHandle;

/// What the data-plane thread hands back when the live loop ends.
type LiveResult = (
    Result<Vec<RequestOutcome>, RuntimeError>,
    CoordinatorArtifacts,
);

/// The live half of a session: channels to the coordinator task on the
/// data-plane thread.
struct Live {
    control_tx: Sender<SessionControl>,
    completion_rx: Receiver<RequestOutcome>,
    handle: JoinHandle<LiveResult>,
}

/// A live handle over a running serving system.
///
/// Built by [`ServingBuilder`](crate::ServingBuilder); see the
/// [crate-level documentation](crate) for an end-to-end example.
///
/// # Lifecycle
///
/// * [`submit`](Self::submit) hands a request to the coordinator and returns
///   a [`TicketId`] immediately; admission honours the request's
///   `arrival_time` (virtual seconds), exactly like the batch path.
/// * [`try_completions`](Self::try_completions) /
///   [`wait_completion`](Self::wait_completion) collect finished requests.
/// * [`drain`](Self::drain) blocks until everything submitted so far has
///   completed; [`finish`](Self::finish) drains, shuts the data plane down
///   and returns the final [`RuntimeReport`].
/// * [`serve`](Self::serve) is the batch convenience wrapper: on a session
///   with no live activity it drives the batch loop inline on the calling
///   thread (the same code path as the pre-session runtime, so the report is
///   bit-identical); on a live session it submits everything, drains and
///   finishes.
pub struct ServingSession {
    wired: Wired,
    live: Option<Live>,
    /// Completions pulled off the channel but not yet handed to the caller.
    undelivered: VecDeque<RequestOutcome>,
    submitted: usize,
    delivered: usize,
    /// Set when the data-plane thread died; the session can only report the
    /// failure once (the error is returned to whoever observed it first).
    failed: bool,
}

impl std::fmt::Debug for ServingSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingSession")
            .field("live", &self.live.is_some())
            .field("submitted", &self.submitted)
            .field("delivered", &self.delivered)
            .field("failed", &self.failed)
            .finish_non_exhaustive()
    }
}

impl ServingSession {
    pub(crate) fn from_wired(wired: Wired) -> Self {
        ServingSession {
            wired,
            live: None,
            undelivered: VecDeque::new(),
            submitted: 0,
            delivered: 0,
            failed: false,
        }
    }

    /// Whether the data plane is running on its own thread (true after the
    /// first `submit`, delta or retirement).
    pub fn is_live(&self) -> bool {
        self.live.is_some()
    }

    /// Starts the data-plane thread if it is not running yet: one thread
    /// driving the executor that runs the coordinator's live loop alongside
    /// every worker task and the fabric task.
    fn ensure_live(&mut self) {
        if self.live.is_some() || self.failed {
            return;
        }
        let mut coordinator = self
            .wired
            .coordinator
            .take()
            .expect("coordinator present until the session goes live");
        let executor = self.wired.executor.clone();
        let (control_tx, control_rx) = unbounded();
        let (completion_tx, completion_rx) = unbounded();
        let handle = std::thread::Builder::new()
            .name("helix-dataplane".to_string())
            .spawn(move || {
                let result = executor.block_on(coordinator.run_live(control_rx, completion_tx));
                let artifacts = coordinator.take_artifacts();
                (result, artifacts)
            })
            .expect("spawning the data-plane thread never fails");
        self.live = Some(Live {
            control_tx,
            completion_rx,
            handle,
        });
    }

    /// Queues one control message and wakes the coordinator's waker-based
    /// wait so it drains the control channel immediately.
    fn send_control(&self, msg: SessionControl) -> bool {
        let Some(live) = &self.live else {
            return false;
        };
        let sent = live.control_tx.send(msg).is_ok();
        let _ = self.wired.wake_tx.send(CoordinatorMsg::Wake);
        sent
    }

    /// Submits one request without blocking and returns its ticket.
    ///
    /// The request is admitted once its `arrival_time` (virtual seconds since
    /// the session was built) passes — submit a whole trace up front and the
    /// coordinator replays its arrival process.  Request ids should be unique
    /// within the session; the ticket wraps the id.
    pub fn submit(&mut self, request: Request) -> TicketId {
        self.ensure_live();
        self.submitted += 1;
        self.send_control(SessionControl::Submit(request));
        TicketId(request.id)
    }

    /// Returns every completion that has arrived since the last call,
    /// without blocking.
    pub fn try_completions(&mut self) -> Vec<RequestOutcome> {
        if let Some(live) = &self.live {
            while let Ok(outcome) = live.completion_rx.try_recv() {
                self.undelivered.push_back(outcome);
            }
        }
        self.delivered += self.undelivered.len();
        self.undelivered.drain(..).collect()
    }

    /// Blocks until the request behind `ticket` completes and returns its
    /// outcome.  Completions of *other* requests that arrive while waiting
    /// are buffered for later [`try_completions`](Self::try_completions) /
    /// `wait_completion` calls.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::WallClockBudgetExceeded`] once this wait has
    /// lasted longer than the configured wall budget (a ticket that was
    /// never submitted can never complete), and propagates a coordinator
    /// failure.  The budget bounds each wait, not the session's lifetime.
    pub fn wait_completion(&mut self, ticket: TicketId) -> Result<RequestOutcome, RuntimeError> {
        let wait_started = self.wired.clock.wall_elapsed();
        let deadline = self
            .wired
            .clock
            .instant_at_wall(wait_started + self.wired.max_wall);
        loop {
            if let Some(pos) = self.undelivered.iter().position(|o| o.id == ticket.0) {
                self.delivered += 1;
                return Ok(self.undelivered.remove(pos).expect("position just found"));
            }
            // Check the budget on *every* iteration, not only when the
            // channel goes quiet: a steady stream of other tickets'
            // completions must not starve the check (a never-submitted
            // ticket would otherwise wait forever on a busy session).
            let waited = self.wired.clock.wall_elapsed().saturating_sub(wait_started);
            if waited > self.wired.max_wall {
                return Err(RuntimeError::WallClockBudgetExceeded {
                    budget: self.wired.max_wall,
                    completed: self.delivered + self.undelivered.len(),
                    total: self.submitted,
                });
            }
            let Some(live) = &self.live else {
                return Err(RuntimeError::Disconnected("serving session"));
            };
            // Block on the channel's condvar until a completion arrives or
            // the budget expires — no 10 ms polling interval.
            match live.completion_rx.recv_deadline(deadline) {
                Ok(outcome) => self.undelivered.push_back(outcome),
                // The next iteration's budget check reports the exceeded
                // budget.
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return Err(self.coordinator_died()),
            }
        }
    }

    /// Injects a hardware slowdown on every worker of `node`: their batches
    /// take `factor`× the cost model's prediction from now on (1.0 restores
    /// nominal speed).  The workers *measure* the resulting gap; an adaptive
    /// session reacts to the measurement, never to the injected value.
    pub fn inject_speed(&self, node: NodeId, factor: f64) {
        self.wired
            .registry
            .send_to_node(node, RuntimeMsg::SetSpeed(factor));
    }

    /// Applies a placement delta to the standing fleet plan, asynchronously:
    /// the coordinator re-plans with the observations already priced in,
    /// swaps the affected models' schedulers and KV budgets for new requests,
    /// **spawns a worker** for every (node, model) tenancy the delta added —
    /// closing the mid-run scale-out loop — and retires workers the plan
    /// dropped once their in-flight pipelines drain.
    ///
    /// An infeasible delta (e.g. one that breaks a model's pipeline) leaves
    /// the current plan serving; applied deltas show up in the final
    /// report's `replans` log with [`ReplanReason::Manual`].
    ///
    /// [`ReplanReason::Manual`]: helix_core::ReplanReason::Manual
    pub fn apply_placement_delta(&mut self, delta: PlacementDelta) {
        self.ensure_live();
        self.send_control(SessionControl::ApplyDelta(delta));
    }

    /// Requests the retirement of one worker.  The coordinator refuses pairs
    /// the active plan still schedules onto; accepted retirements take
    /// effect once the worker's in-flight pipelines drain.
    pub fn retire_worker(&mut self, node: NodeId, model: ModelId) {
        self.ensure_live();
        self.send_control(SessionControl::Retire(node, model));
    }

    /// Fails `node` at virtual time `at`: its workers are detached, every
    /// in-flight pipeline crossing it is promoted onto its replica standbys
    /// (when the replication policy trickled its KV there) or aborted and
    /// re-admitted from scratch, and the fleet re-plans around the hole.
    /// The fail-over shows up in the final report's `failovers` log.
    pub fn fail_node(&mut self, node: NodeId, at: f64) {
        self.ensure_live();
        self.send_control(SessionControl::FailNode(node, at));
    }

    /// Installs the replication policy governing subsequently admitted
    /// requests: hot sequences (expected decode length at or above the
    /// policy threshold) trickle their KV to standby tenancies as decode
    /// proceeds, making them promotable if their primary fails.
    pub fn set_replication(&mut self, policy: ReplicationPolicy) {
        self.ensure_live();
        self.send_control(SessionControl::SetReplication(policy));
    }

    /// Blocks until every request submitted so far has completed.
    ///
    /// # Errors
    ///
    /// Propagates the coordinator's error if the drain cannot complete
    /// (stall, wall budget, disconnect).
    pub fn drain(&mut self) -> Result<(), RuntimeError> {
        if self.live.is_none() {
            // Nothing was ever submitted.
            return Ok(());
        }
        let (ack_tx, ack_rx) = unbounded();
        if !self.send_control(SessionControl::Drain(ack_tx)) {
            return Err(self.coordinator_died());
        }
        match ack_rx.recv_blocking() {
            Ok(()) => Ok(()),
            Err(_) => Err(self.coordinator_died()),
        }
    }

    /// Drains, shuts the whole data plane down (workers, fabric, coordinator)
    /// and returns the final report.  The data-plane thread is joined and
    /// every task run to completion before this method returns, even on
    /// error.
    pub fn finish(mut self) -> Result<RuntimeReport, RuntimeError> {
        if self.failed {
            return self.wired.shutdown_and_report(
                Err(RuntimeError::Disconnected("serving session")),
                CoordinatorArtifacts::default(),
            );
        }
        match self.live.take() {
            Some(live) => {
                let _ = live.control_tx.send(SessionControl::Finish);
                let _ = self.wired.wake_tx.send(CoordinatorMsg::Wake);
                drop(live.control_tx);
                let (result, artifacts) = match live.handle.join() {
                    Ok(result) => result,
                    Err(_) => (
                        Err(RuntimeError::Disconnected("serving session")),
                        CoordinatorArtifacts::default(),
                    ),
                };
                self.wired.shutdown_and_report(result, artifacts)
            }
            None => self
                .wired
                .shutdown_and_report(Ok(Vec::new()), CoordinatorArtifacts::default()),
        }
    }

    /// Serves a whole workload to completion: the batch convenience wrapper.
    ///
    /// On a session with no live activity this drives the batch loop inline
    /// on the calling thread — the identical admission and completion logic
    /// the pre-session `ServingRuntime::serve` ran, so the report is
    /// bit-identical to the old batch surface.  On a session that is already
    /// live it submits every request, drains and finishes.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::WallClockBudgetExceeded`] if the configured
    /// wall-clock budget runs out, [`RuntimeError::Stalled`] if no request
    /// can make progress, and propagates scheduling errors.
    pub fn serve(mut self, workload: &Workload) -> Result<RuntimeReport, RuntimeError> {
        if self.live.is_none() && !self.failed {
            let mut coordinator = self
                .wired
                .coordinator
                .take()
                .expect("coordinator present until the session goes live");
            // Drive the whole data plane — coordinator, workers, fabric —
            // inline on this thread until the workload completes.
            let outcome = self.wired.executor.block_on(coordinator.run(workload));
            let artifacts = coordinator.take_artifacts();
            drop(coordinator);
            return self.wired.shutdown_and_report(outcome, artifacts);
        }
        for request in workload.requests() {
            self.submit(*request);
        }
        if let Err(e) = self.drain() {
            // Still tear the whole data plane down (workers, fabric,
            // coordinator) before surfacing the drain error.
            let _ = self.finish();
            return Err(e);
        }
        self.finish()
    }

    /// Tears the live half down after the data-plane thread died and
    /// recovers its error.
    fn coordinator_died(&mut self) -> RuntimeError {
        self.failed = true;
        let Some(live) = self.live.take() else {
            return RuntimeError::Disconnected("serving session");
        };
        drop(live.control_tx);
        match live.handle.join() {
            Ok((Err(e), _)) => e,
            _ => RuntimeError::Disconnected("serving session"),
        }
    }
}
