//! LLM model configurations and per-token cost accounting.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one model of a multi-model fleet sharing a cluster.
///
/// The single-model pipeline is the `ModelId(0)` special case: every
/// request, pipeline and worker in a one-model deployment carries the
/// default id and behaves exactly as before the fleet generalisation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct ModelId(pub usize);

impl ModelId {
    /// The id as a dense index into per-model tables.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "model{}", self.0)
    }
}

/// Identifier of a shared prompt prefix (a system prompt, a few-shot
/// template, a session header).
///
/// Requests carrying the same `PrefixId` share the same leading
/// `prefix_tokens` of their prompts, so a prefix-aware KV pool computes and
/// stores that range once per node and later requests attach to the cached
/// pages instead of re-prefilling them (the RadixAttention / paged-sharing
/// idea).  The id is opaque: traces may derive it from a session id, a
/// template hash or an explicit `prefix` column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PrefixId(pub u64);

impl fmt::Display for PrefixId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prefix{}", self.0)
    }
}

/// Architecture description of a decoder-only Transformer LLM.
///
/// Only the quantities Helix needs are captured: number of layers (the unit
/// of placement), hidden size (activation transmission size), parameter
/// counts (weight memory and FLOPs per token) and KV-head count (KV-cache
/// size per token).
///
/// # Example
///
/// ```rust
/// use helix_cluster::ModelConfig;
///
/// let llama70b = ModelConfig::llama2_70b();
/// assert_eq!(llama70b.num_layers, 80);
/// // Activation of one token is ~16 KB in FP16, matching paper Fig. 2.
/// assert!((llama70b.activation_bytes() - 16_384.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable model name.
    pub name: String,
    /// Number of Transformer layers.
    pub num_layers: usize,
    /// Hidden state dimension.
    pub hidden_size: usize,
    /// Feed-forward intermediate dimension.
    pub intermediate_size: usize,
    /// Number of attention heads.
    pub num_heads: usize,
    /// Number of KV heads (< `num_heads` for grouped-query attention).
    pub num_kv_heads: usize,
    /// Vocabulary size (embedding/unembedding parameters).
    pub vocab_size: usize,
    /// Number of weight matrices in the MLP block (3 for gated SwiGLU MLPs
    /// like LLaMA, 2 for classic GELU MLPs like GPT-3).
    pub mlp_matrices: f64,
    /// Bytes per parameter / activation element (2 for FP16).
    pub bytes_per_param: f64,
}

impl ModelConfig {
    /// LLaMA-1 30B (60 layers, hidden 6656) — "LLaMA 30B" in the paper.
    pub fn llama_30b() -> Self {
        ModelConfig {
            name: "LLaMA-30B".into(),
            num_layers: 60,
            hidden_size: 6656,
            intermediate_size: 17_920,
            num_heads: 52,
            num_kv_heads: 52,
            vocab_size: 32_000,
            mlp_matrices: 3.0,
            bytes_per_param: 2.0,
        }
    }

    /// LLaMA-2 13B (40 layers, hidden 5120) — a small co-tenant for
    /// multi-model fleets sharing a cluster with a larger model.
    pub fn llama_13b() -> Self {
        ModelConfig {
            name: "LLaMA-2-13B".into(),
            num_layers: 40,
            hidden_size: 5120,
            intermediate_size: 13_824,
            num_heads: 40,
            num_kv_heads: 40,
            vocab_size: 32_000,
            mlp_matrices: 3.0,
            bytes_per_param: 2.0,
        }
    }

    /// LLaMA-2 70B (80 layers, hidden 8192, GQA with 8 KV heads) —
    /// "LLaMA 70B" in the paper.
    pub fn llama2_70b() -> Self {
        ModelConfig {
            name: "LLaMA-2-70B".into(),
            num_layers: 80,
            hidden_size: 8192,
            intermediate_size: 28_672,
            num_heads: 64,
            num_kv_heads: 8,
            vocab_size: 32_000,
            mlp_matrices: 3.0,
            bytes_per_param: 2.0,
        }
    }

    /// GPT-3 175B (96 layers, hidden 12288) — used in Table 1.
    pub fn gpt3_175b() -> Self {
        ModelConfig {
            name: "GPT-3-175B".into(),
            num_layers: 96,
            hidden_size: 12_288,
            intermediate_size: 49_152,
            num_heads: 96,
            num_kv_heads: 96,
            vocab_size: 50_257,
            mlp_matrices: 2.0,
            bytes_per_param: 2.0,
        }
    }

    /// Grok-1 314B (64 layers, hidden 6144, MoE approximated as dense for
    /// memory accounting) — used in Table 1.
    pub fn grok1_314b() -> Self {
        ModelConfig {
            name: "Grok-1-314B".into(),
            num_layers: 64,
            hidden_size: 6144,
            // Sized so total parameters come out near 314B when treated densely.
            intermediate_size: 262_144,
            num_heads: 48,
            num_kv_heads: 8,
            vocab_size: 131_072,
            mlp_matrices: 3.0,
            bytes_per_param: 2.0,
        }
    }

    /// LLaMA-3 405B (126 layers, hidden 16384) — used in Table 1.
    pub fn llama3_405b() -> Self {
        ModelConfig {
            name: "LLaMA-3-405B".into(),
            num_layers: 126,
            hidden_size: 16_384,
            intermediate_size: 53_248,
            num_heads: 128,
            num_kv_heads: 8,
            vocab_size: 128_256,
            mlp_matrices: 3.0,
            bytes_per_param: 2.0,
        }
    }

    /// Parameters in one Transformer layer.
    ///
    /// Attention contributes `2 h^2 + 2 h * h * kv/heads` (Q,O full width;
    /// K,V shrunk by grouped-query attention) and the MLP contributes
    /// `mlp_matrices * h * intermediate`.
    pub fn layer_params(&self) -> f64 {
        let h = self.hidden_size as f64;
        let inter = self.intermediate_size as f64;
        let kv_frac = self.num_kv_heads as f64 / self.num_heads as f64;
        let attention = 2.0 * h * h + 2.0 * h * h * kv_frac;
        let mlp = self.mlp_matrices * h * inter;
        attention + mlp
    }

    /// Parameters in the input/output embeddings.
    pub fn embedding_params(&self) -> f64 {
        2.0 * self.hidden_size as f64 * self.vocab_size as f64
    }

    /// Total parameter count.
    pub fn total_params(&self) -> f64 {
        self.layer_params() * self.num_layers as f64 + self.embedding_params()
    }

    /// Bytes of VRAM needed to store one layer's weights.
    pub fn layer_weight_bytes(&self) -> f64 {
        self.layer_params() * self.bytes_per_param
    }

    /// FLOPs to run one token through one layer (2 FLOPs per parameter).
    pub fn layer_flops_per_token(&self) -> f64 {
        2.0 * self.layer_params()
    }

    /// Bytes transmitted for one token's activation between pipeline stages.
    pub fn activation_bytes(&self) -> f64 {
        self.hidden_size as f64 * self.bytes_per_param
    }

    /// Bytes of KV cache stored per token per layer.
    pub fn kv_bytes_per_token_per_layer(&self) -> f64 {
        let kv_frac = self.num_kv_heads as f64 / self.num_heads as f64;
        2.0 * self.hidden_size as f64 * self.bytes_per_param * kv_frac
    }

    /// Minimum number of GPUs of a given VRAM size (in GB) needed to hold the
    /// model weights when only `weight_fraction` of each GPU is available for
    /// weights (paper Table 1 uses 0.5).
    pub fn min_gpus(&self, gpu_memory_gb: f64, weight_fraction: f64) -> usize {
        let weight_bytes = self.total_params() * self.bytes_per_param;
        let usable = gpu_memory_gb * 1e9 * weight_fraction;
        (weight_bytes / usable).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_id_defaults_to_zero_and_displays() {
        assert_eq!(ModelId::default(), ModelId(0));
        assert_eq!(ModelId(3).index(), 3);
        assert_eq!(ModelId(1).to_string(), "model1");
        assert!(ModelId(0) < ModelId(1));
    }

    #[test]
    fn llama13b_parameter_count_is_about_13b() {
        let m = ModelConfig::llama_13b();
        let total = m.total_params();
        assert!(total > 11e9 && total < 15e9, "got {total}");
    }

    #[test]
    fn llama70b_parameter_count_is_about_70b() {
        let m = ModelConfig::llama2_70b();
        let total = m.total_params();
        assert!(total > 62e9 && total < 75e9, "got {total}");
    }

    #[test]
    fn llama30b_parameter_count_is_about_30b() {
        let m = ModelConfig::llama_30b();
        let total = m.total_params();
        assert!(total > 27e9 && total < 36e9, "got {total}");
    }

    #[test]
    fn gpt3_parameter_count_is_about_175b() {
        let m = ModelConfig::gpt3_175b();
        let total = m.total_params();
        assert!(total > 155e9 && total < 195e9, "got {total}");
    }

    #[test]
    fn llama3_405b_parameter_count() {
        let m = ModelConfig::llama3_405b();
        let total = m.total_params();
        assert!(total > 360e9 && total < 450e9, "got {total}");
    }

    #[test]
    fn activation_size_matches_paper_figure_2() {
        // Fig. 2 quotes 16 KB activations for the example model (hidden 8192 FP16).
        let m = ModelConfig::llama2_70b();
        assert_eq!(m.activation_bytes(), 16_384.0);
    }

    #[test]
    fn gqa_shrinks_kv_cache() {
        let llama70b = ModelConfig::llama2_70b();
        let llama30b = ModelConfig::llama_30b();
        // 70B uses 8/64 GQA so its per-token KV is smaller than 30B's MHA
        // despite the larger hidden size.
        assert!(llama70b.kv_bytes_per_token_per_layer() < llama30b.kv_bytes_per_token_per_layer());
    }

    #[test]
    fn table1_min_gpu_counts_have_the_right_shape() {
        // Paper Table 1: L4 (24 GB) / A100 (40 GB) / H100 (80 GB), half VRAM for weights.
        let rows = [
            (ModelConfig::llama2_70b(), 12usize, 7usize, 4usize),
            (ModelConfig::gpt3_175b(), 30, 18, 9),
            (ModelConfig::grok1_314b(), 53, 32, 16),
            (ModelConfig::llama3_405b(), 68, 41, 21),
        ];
        for (model, l4, a100, h100) in rows {
            let got_l4 = model.min_gpus(24.0, 0.5);
            let got_a100 = model.min_gpus(40.0, 0.5);
            let got_h100 = model.min_gpus(80.0, 0.5);
            // Analytic parameter counts differ slightly from the paper's
            // (which use published totals), so allow a small relative slack.
            let close = |got: usize, want: usize| {
                (got as f64 - want as f64).abs() <= (want as f64 * 0.15).max(1.0)
            };
            assert!(close(got_l4, l4), "{}: L4 {got_l4} vs {l4}", model.name);
            assert!(
                close(got_a100, a100),
                "{}: A100 {got_a100} vs {a100}",
                model.name
            );
            assert!(
                close(got_h100, h100),
                "{}: H100 {got_h100} vs {h100}",
                model.name
            );
        }
    }

    #[test]
    fn flops_and_weights_scale_with_layers() {
        let m = ModelConfig::llama2_70b();
        assert!(m.layer_flops_per_token() > 1e9);
        assert!(m.layer_weight_bytes() * m.num_layers as f64 > 100e9);
        assert!(m.min_gpus(40.0, 0.5) > m.min_gpus(80.0, 0.5));
    }
}
