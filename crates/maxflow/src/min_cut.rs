//! Minimum s-t cut extraction from a maximum flow.

use crate::graph::{EdgeId, FlowNetwork, FlowResult, NodeId};
use crate::FLOW_EPS;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A minimum s-t cut: the source-side node set and the saturated edges that
/// cross it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinCut {
    /// Capacity of the cut (equals the max-flow value).
    pub capacity: f64,
    /// Nodes reachable from the source in the residual graph.
    pub source_side: Vec<NodeId>,
    /// Forward edges crossing from the source side to the sink side.
    pub cut_edges: Vec<EdgeId>,
}

impl MinCut {
    /// Whether `node` lies on the source side of the cut.
    pub fn contains(&self, node: NodeId) -> bool {
        self.source_side.contains(&node)
    }
}

/// Computes a minimum s-t cut from a previously computed maximum flow.
///
/// `flow` must be the [`FlowResult`] returned by a max-flow run on the same
/// `network` with the same `source`/`sink`; the cut is derived from residual
/// reachability, so passing a non-maximum flow yields a cut whose capacity is
/// larger than the flow value.
///
/// # Example
///
/// ```rust
/// use helix_maxflow::{min_cut, FlowNetwork};
///
/// let mut net = FlowNetwork::new();
/// let s = net.add_node("s");
/// let a = net.add_node("a");
/// let t = net.add_node("t");
/// net.add_edge(s, a, 10.0);
/// let bottleneck = net.add_edge(a, t, 4.0);
/// let flow = net.max_flow(s, t);
/// let cut = min_cut(&net, &flow, s, t);
/// assert_eq!(cut.cut_edges, vec![bottleneck]);
/// assert_eq!(cut.capacity, 4.0);
/// ```
pub fn min_cut(network: &FlowNetwork, flow: &FlowResult, source: NodeId, sink: NodeId) -> MinCut {
    let n = network.node_count();
    // Residual reachability from the source: an edge u->v is traversable if it
    // has slack (cap - flow > eps); a reverse edge v->u is traversable if the
    // forward edge carries flow.
    let mut residual_adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in network.edges() {
        let f = flow.edge_flows.get(e.id.index()).copied().unwrap_or(0.0);
        if e.capacity - f > FLOW_EPS {
            residual_adj[e.from.index()].push(e.to.index());
        }
        if f > FLOW_EPS {
            residual_adj[e.to.index()].push(e.from.index());
        }
    }
    let mut reach = vec![false; n];
    reach[source.index()] = true;
    let mut queue = VecDeque::new();
    queue.push_back(source.index());
    while let Some(u) = queue.pop_front() {
        for &v in &residual_adj[u] {
            if !reach[v] {
                reach[v] = true;
                queue.push_back(v);
            }
        }
    }
    debug_assert!(
        !reach[sink.index()],
        "sink reachable in residual graph: flow was not maximum"
    );

    let mut cut_edges = Vec::new();
    let mut capacity = 0.0;
    for e in network.edges() {
        if reach[e.from.index()] && !reach[e.to.index()] {
            cut_edges.push(e.id);
            capacity += e.capacity;
        }
    }
    let source_side = (0..n).filter(|&i| reach[i]).map(NodeId).collect();
    MinCut {
        capacity,
        source_side,
        cut_edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_capacity_equals_max_flow() {
        let mut net = FlowNetwork::new();
        let s = net.add_node("s");
        let a = net.add_node("a");
        let b = net.add_node("b");
        let t = net.add_node("t");
        net.add_edge(s, a, 3.0);
        net.add_edge(s, b, 5.0);
        net.add_edge(a, t, 4.0);
        net.add_edge(b, t, 2.0);
        net.add_edge(a, b, 1.0);
        let flow = net.max_flow(s, t);
        let cut = min_cut(&net, &flow, s, t);
        assert!((cut.capacity - flow.value).abs() < 1e-9);
        assert!(cut.contains(s));
        assert!(!cut.contains(t));
    }

    #[test]
    fn identifies_single_bottleneck_edge() {
        let mut net = FlowNetwork::new();
        let s = net.add_node("s");
        let a = net.add_node("a");
        let b = net.add_node("b");
        let t = net.add_node("t");
        net.add_edge(s, a, 100.0);
        let narrow = net.add_edge(a, b, 2.5);
        net.add_edge(b, t, 100.0);
        let flow = net.max_flow(s, t);
        let cut = min_cut(&net, &flow, s, t);
        assert_eq!(cut.cut_edges, vec![narrow]);
        assert_eq!(cut.source_side.len(), 2);
    }

    #[test]
    fn disconnected_graph_has_empty_cut() {
        let mut net = FlowNetwork::new();
        let s = net.add_node("s");
        let t = net.add_node("t");
        let flow = net.max_flow(s, t);
        let cut = min_cut(&net, &flow, s, t);
        assert_eq!(cut.capacity, 0.0);
        assert!(cut.cut_edges.is_empty());
    }
}
