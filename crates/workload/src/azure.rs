//! Azure-Conversation-like length distribution generator.

use crate::request::Request;
use crate::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// Configuration of the synthetic Azure-Conversation-style trace.
///
/// Defaults are calibrated so the generated lengths reproduce the statistics
/// the paper reports for the pruned trace (average input 763, average output
/// 232, caps 2048 / 1024).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AzureTraceConfig {
    /// Target mean prompt length in tokens.
    pub mean_input_tokens: f64,
    /// Target mean output length in tokens.
    pub mean_output_tokens: f64,
    /// Maximum prompt length (longer samples are resampled/capped).
    pub max_input_tokens: usize,
    /// Maximum output length.
    pub max_output_tokens: usize,
    /// Shape (sigma of the underlying normal) of the input length
    /// distribution; larger values make the distribution heavier-tailed.
    pub input_sigma: f64,
    /// Shape of the output length distribution.
    pub output_sigma: f64,
}

impl Default for AzureTraceConfig {
    fn default() -> Self {
        AzureTraceConfig {
            mean_input_tokens: 763.0,
            mean_output_tokens: 232.0,
            max_input_tokens: 2048,
            max_output_tokens: 1024,
            input_sigma: 0.9,
            output_sigma: 0.8,
        }
    }
}

impl AzureTraceConfig {
    /// Generates `n` requests with arrival time zero (offline setting); use
    /// [`Workload::with_arrivals`] to assign arrival times.
    pub fn generate(&self, n: usize, seed: u64) -> Workload {
        let mut rng = StdRng::seed_from_u64(seed);
        // A log-normal with parameters (mu, sigma) has mean exp(mu + sigma^2/2).
        // Capping at max reduces the realised mean, so aim slightly above the
        // target and rely on the calibration test to keep us honest.
        let input_mu = self.calibrated_mu(
            self.mean_input_tokens,
            self.input_sigma,
            self.max_input_tokens,
        );
        let output_mu = self.calibrated_mu(
            self.mean_output_tokens,
            self.output_sigma,
            self.max_output_tokens,
        );
        let input_dist = LogNormal::new(input_mu, self.input_sigma).expect("sigma is positive");
        let output_dist = LogNormal::new(output_mu, self.output_sigma).expect("sigma is positive");
        let requests = (0..n)
            .map(|id| {
                let prompt = Self::sample_capped(&input_dist, self.max_input_tokens, &mut rng);
                let output = Self::sample_capped(&output_dist, self.max_output_tokens, &mut rng);
                Request {
                    id: id as u64,
                    prompt_tokens: prompt,
                    output_tokens: output,
                    ..Request::default()
                }
            })
            .collect();
        Workload::new(requests)
    }

    /// Chooses `mu` such that the *capped* log-normal roughly hits the target
    /// mean: start from the uncapped formula and apply a small correction for
    /// the probability mass that gets clipped at `max`.
    fn calibrated_mu(&self, target_mean: f64, sigma: f64, max: usize) -> f64 {
        let uncapped = target_mean.ln() - sigma * sigma / 2.0;
        // Iterate a couple of fixed-point corrections using a quick Monte
        // Carlo estimate of the capped mean; cheap and deterministic.
        let mut mu = uncapped;
        let mut rng = StdRng::seed_from_u64(0xA2);
        for _ in 0..8 {
            let dist = LogNormal::new(mu, sigma).expect("sigma is positive");
            let est: f64 = (0..4000)
                .map(|_| dist.sample(&mut rng).min(max as f64).max(1.0))
                .sum::<f64>()
                / 4000.0;
            mu += (target_mean.ln() - est.max(1.0).ln()) * 0.8;
        }
        mu
    }

    fn sample_capped(dist: &LogNormal<f64>, max: usize, rng: &mut StdRng) -> usize {
        let v = dist.sample(rng);
        (v.round() as usize).clamp(1, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_configuration_hits_target_means() {
        let w = AzureTraceConfig::default().generate(8000, 11);
        let stats = w.statistics();
        assert!(
            (stats.mean_input_tokens - 763.0).abs() < 60.0,
            "{}",
            stats.mean_input_tokens
        );
        assert!(
            (stats.mean_output_tokens - 232.0).abs() < 25.0,
            "{}",
            stats.mean_output_tokens
        );
    }

    #[test]
    fn custom_configuration_is_respected() {
        let config = AzureTraceConfig {
            mean_input_tokens: 100.0,
            mean_output_tokens: 50.0,
            max_input_tokens: 256,
            max_output_tokens: 128,
            ..Default::default()
        };
        let w = config.generate(4000, 2);
        let stats = w.statistics();
        assert!(stats.max_input_tokens <= 256);
        assert!(stats.max_output_tokens <= 128);
        assert!((stats.mean_input_tokens - 100.0).abs() < 20.0);
        assert!((stats.mean_output_tokens - 50.0).abs() < 10.0);
    }

    #[test]
    fn lengths_are_heavy_tailed_like_the_real_trace() {
        let w = AzureTraceConfig::default().generate(8000, 13);
        let stats = w.statistics();
        // The distribution has many short prompts and a long tail: the first
        // few buckets should hold a substantial fraction of requests while
        // requests also exist beyond 4x the mean.
        let short: usize = stats.input_histogram.iter().take(4).sum();
        assert!(short as f64 > 0.3 * stats.num_requests as f64);
        assert!(stats.max_input_tokens > 1800);
    }
}
