//! Result types for MILP solves.

use serde::{Deserialize, Serialize};

/// How the branch & bound search terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SolveStatus {
    /// The incumbent is provably optimal (tree exhausted or gap closed).
    Optimal,
    /// A feasible incumbent exists but optimality was not proven before the
    /// time / node budget ran out.
    Feasible,
    /// The search stopped because the incumbent reached the caller-supplied
    /// early-stop bound (paper §4.5: stop when close to the throughput upper
    /// bound).
    EarlyStopped,
}

/// Result of a MILP solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MilpResult {
    /// Objective value of the incumbent, in the model's own sense.
    pub objective: f64,
    /// Value of every variable in the incumbent, indexed by
    /// [`VarId::index`](crate::VarId::index).
    pub values: Vec<f64>,
    /// Termination status.
    pub status: SolveStatus,
    /// Best proven bound on the optimal objective (an upper bound when
    /// maximising, a lower bound when minimising).
    pub best_bound: f64,
    /// Number of branch & bound nodes explored.
    pub nodes_explored: u64,
    /// Wall-clock time spent solving, in seconds.
    pub solve_seconds: f64,
}

impl MilpResult {
    /// Relative optimality gap `|bound - objective| / max(1, |objective|)`.
    pub fn gap(&self) -> f64 {
        (self.best_bound - self.objective).abs() / self.objective.abs().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_is_relative() {
        let r = MilpResult {
            objective: 100.0,
            values: vec![],
            status: SolveStatus::Feasible,
            best_bound: 110.0,
            nodes_explored: 5,
            solve_seconds: 0.1,
        };
        assert!((r.gap() - 0.1).abs() < 1e-12);
        let tiny = MilpResult {
            objective: 0.5,
            best_bound: 0.6,
            ..r
        };
        assert!((tiny.gap() - 0.1).abs() < 1e-12);
    }
}
