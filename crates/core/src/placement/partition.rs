//! Cluster partitioning for very large deployments (paper §4.5).
//!
//! The MILP planner scales to the cluster sizes the paper evaluates (24–42
//! nodes), but §4.5 notes that "for further scaling of Helix to hundreds or
//! even thousands of nodes, one viable approach is to first partition the
//! nodes into multiple smaller clusters using heuristics and then apply Helix
//! independently".  This module implements that approach: it groups nodes
//! into partitions that each can hold a full model replica (preferring to
//! keep regions together so no partition straddles a slow inter-region link),
//! plans a placement for every partition independently, and combines the
//! results into one placement whose replicas serve traffic side by side.

use crate::error::HelixError;
use crate::placement::refine::{AnnealingOptions, FlowAnnealingPlanner};
use crate::placement::{LayerRange, ModelPlacement};
use helix_cluster::{ClusterBuilder, ClusterProfile, NodeId};
use std::collections::BTreeMap;

/// Options controlling how the cluster is partitioned and how each partition
/// is planned.
#[derive(Debug, Clone)]
pub struct PartitionOptions {
    /// Upper bound on the number of nodes per partition.  Partitions stop
    /// growing once they can hold the model *and* reach this size.
    pub max_partition_size: usize,
    /// Slack factor on model capacity: a partition is considered able to hold
    /// the model once its summed layer capacity reaches `capacity_slack ×
    /// num_layers`.  Values above 1.0 leave headroom for KV cache and load
    /// balancing.
    pub capacity_slack: f64,
    /// Keep nodes of the same region together (avoids replicas that straddle
    /// slow inter-region links).
    pub group_by_region: bool,
    /// Planning budget used for each partition.
    pub annealing: AnnealingOptions,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions {
            max_partition_size: 16,
            capacity_slack: 1.2,
            group_by_region: true,
            annealing: AnnealingOptions::default(),
        }
    }
}

/// One planned partition: a disjoint subset of nodes serving its own model
/// replica.
#[derive(Debug, Clone)]
pub struct Partition {
    /// The nodes of this partition (ids in the *original* cluster).
    pub nodes: Vec<NodeId>,
    /// The placement found for this partition, expressed on the original
    /// cluster's node ids (nodes outside the partition are unassigned).
    pub placement: ModelPlacement,
    /// Max-flow throughput of the partition's placement (tokens/s).
    pub throughput: f64,
}

/// The result of partitioned planning.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    partitions: Vec<Partition>,
    num_nodes: usize,
}

impl PartitionPlan {
    /// The individual partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Number of independent model replicas (one per partition).
    pub fn num_replicas(&self) -> usize {
        self.partitions.len()
    }

    /// Sum of the partitions' planned throughputs.
    pub fn total_throughput(&self) -> f64 {
        self.partitions.iter().map(|p| p.throughput).sum()
    }

    /// The union of all partition placements: a single placement for the full
    /// cluster in which every partition serves its own replica.
    pub fn combined_placement(&self) -> ModelPlacement {
        let mut combined = ModelPlacement::empty(self.num_nodes);
        for partition in &self.partitions {
            for (node, range) in partition.placement.iter() {
                combined.assign(node, range);
            }
        }
        combined
    }
}

/// Plans placements for clusters too large to optimise in one piece.
///
/// # Example
///
/// ```rust
/// use helix_cluster::{ClusterProfile, ClusterSpec, ModelConfig};
/// use helix_core::placement::partition::{PartitionOptions, PartitionedPlanner};
///
/// let profile = ClusterProfile::analytic(
///     ClusterSpec::geo_distributed_24(),
///     ModelConfig::llama_30b(),
/// );
/// let planner = PartitionedPlanner::new(&profile)
///     .with_options(PartitionOptions { max_partition_size: 10, ..Default::default() });
/// let plan = planner.solve().unwrap();
/// assert!(plan.num_replicas() >= 2);
/// assert!(plan.total_throughput() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct PartitionedPlanner<'a> {
    profile: &'a ClusterProfile,
    options: PartitionOptions,
}

impl<'a> PartitionedPlanner<'a> {
    /// Creates a planner with default options.
    pub fn new(profile: &'a ClusterProfile) -> Self {
        PartitionedPlanner {
            profile,
            options: PartitionOptions::default(),
        }
    }

    /// Overrides the partitioning options.
    pub fn with_options(mut self, options: PartitionOptions) -> Self {
        self.options = options;
        self
    }

    /// The options in effect.
    pub fn options(&self) -> &PartitionOptions {
        &self.options
    }

    /// Computes the node groups without planning placements for them.
    ///
    /// Every group can hold at least one full model replica; groups respect
    /// region boundaries when `group_by_region` is set and the regions are
    /// large enough.
    pub fn node_groups(&self) -> Vec<Vec<NodeId>> {
        let profile = self.profile;
        let cluster = profile.cluster();
        let num_layers = profile.model().num_layers;
        let needed = (num_layers as f64 * self.options.capacity_slack).ceil() as usize;

        // Order nodes region by region (or as one big group), strongest first
        // within each region so every partition gets a share of strong nodes.
        let mut ordered: Vec<NodeId> = Vec::with_capacity(cluster.num_nodes());
        if self.options.group_by_region {
            let mut by_region: BTreeMap<u32, Vec<NodeId>> = BTreeMap::new();
            for node in cluster.nodes() {
                by_region.entry(node.region.0).or_default().push(node.id);
            }
            for (_, mut nodes) in by_region {
                nodes.sort_by_key(|&id| std::cmp::Reverse(profile.node_profile(id).max_layers));
                ordered.extend(nodes);
            }
        } else {
            ordered.extend(cluster.node_ids());
            ordered.sort_by_key(|&id| std::cmp::Reverse(profile.node_profile(id).max_layers));
        }

        let mut groups: Vec<Vec<NodeId>> = Vec::new();
        let mut current: Vec<NodeId> = Vec::new();
        let mut current_capacity = 0usize;
        for id in ordered {
            current.push(id);
            current_capacity += profile.node_profile(id).max_layers;
            let can_hold = current_capacity >= needed;
            let full = current.len() >= self.options.max_partition_size;
            if can_hold && (full || current.len() >= self.options.max_partition_size / 2) {
                groups.push(std::mem::take(&mut current));
                current_capacity = 0;
            }
        }
        if !current.is_empty() {
            // Leftover nodes that cannot hold a replica on their own join the
            // last complete group (or form the only group for tiny clusters).
            let leftover_capacity: usize = current
                .iter()
                .map(|&id| profile.node_profile(id).max_layers)
                .sum();
            if leftover_capacity >= needed || groups.is_empty() {
                groups.push(current);
            } else if let Some(last) = groups.last_mut() {
                last.extend(current);
            }
        }
        groups
    }

    /// Plans each partition independently and returns the combined plan.
    ///
    /// # Errors
    ///
    /// Returns [`HelixError::NoCompletePipeline`] if the whole cluster cannot
    /// hold even one model replica, and propagates per-partition planning
    /// errors.
    pub fn solve(&self) -> Result<PartitionPlan, HelixError> {
        let groups = self.node_groups();
        if groups.is_empty() {
            return Err(HelixError::NoCompletePipeline);
        }
        let mut partitions = Vec::with_capacity(groups.len());
        for nodes in groups {
            let (sub_profile, id_map) = self.sub_profile(&nodes);
            let planner = FlowAnnealingPlanner::new(&sub_profile)
                .with_options(self.options.annealing.clone());
            let (sub_placement, throughput) = planner.solve()?;
            // Map the sub-cluster placement back onto the original node ids.
            let mut placement = ModelPlacement::empty(self.profile.cluster().num_nodes());
            for (sub_node, range) in sub_placement.iter() {
                placement.assign(
                    id_map[sub_node.index()],
                    LayerRange::new(range.start, range.end),
                );
            }
            partitions.push(Partition {
                nodes,
                placement,
                throughput,
            });
        }
        Ok(PartitionPlan {
            partitions,
            num_nodes: self.profile.cluster().num_nodes(),
        })
    }

    /// Builds a standalone profile containing only `nodes`, preserving each
    /// node's GPU type, GPU count, region and NIC bandwidth as well as the
    /// original cluster's intra/inter-region network characteristics.
    /// Returns the profile and the mapping from sub-cluster node index to the
    /// original [`NodeId`].
    fn sub_profile(&self, nodes: &[NodeId]) -> (ClusterProfile, Vec<NodeId>) {
        let cluster = self.profile.cluster();
        let mut builder = ClusterBuilder::new(format!("{}-partition", cluster.name))
            .intra_region(
                cluster.intra_region_bandwidth_mbps,
                cluster.intra_region_latency_ms,
            )
            .inter_region(
                cluster.inter_region_bandwidth_mbps,
                cluster.inter_region_latency_ms,
            )
            .coordinator_region(cluster.coordinator_region);
        let mut id_map = Vec::with_capacity(nodes.len());
        for &id in nodes {
            let node = cluster.node(id);
            builder = builder.nic_bandwidth(node.nic_bandwidth_mbps).add_nodes(
                node.gpu,
                1,
                node.gpu_count,
                node.region,
            );
            id_map.push(id);
        }
        let sub_cluster = builder.build();
        (
            ClusterProfile::analytic(sub_cluster, self.profile.model().clone()),
            id_map,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow_graph::FlowGraphBuilder;
    use helix_cluster::{ClusterSpec, ModelConfig};

    fn quick_options(max_partition_size: usize) -> PartitionOptions {
        PartitionOptions {
            max_partition_size,
            annealing: AnnealingOptions {
                iterations: 200,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn groups_cover_all_nodes_exactly_once_and_can_hold_the_model() {
        let profile =
            ClusterProfile::analytic(ClusterSpec::single_cluster_24(), ModelConfig::llama_30b());
        let planner = PartitionedPlanner::new(&profile).with_options(quick_options(8));
        let groups = planner.node_groups();
        assert!(groups.len() >= 2, "24 nodes with max size 8 should split");
        let mut seen = [false; 24];
        for group in &groups {
            let capacity: usize = group
                .iter()
                .map(|&id| profile.node_profile(id).max_layers)
                .sum();
            assert!(
                capacity >= profile.model().num_layers,
                "every group must hold a full replica"
            );
            for &id in group {
                assert!(!seen[id.index()], "node {id:?} appears twice");
                seen[id.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every node belongs to a group");
    }

    #[test]
    fn region_grouping_keeps_partitions_inside_regions_when_possible() {
        let profile =
            ClusterProfile::analytic(ClusterSpec::geo_distributed_24(), ModelConfig::llama_30b());
        let planner = PartitionedPlanner::new(&profile).with_options(quick_options(12));
        let groups = planner.node_groups();
        let cluster = profile.cluster();
        // At least one group should be entirely within a single region (the
        // A100-only region can hold LLaMA 30B by itself).
        let single_region_groups = groups
            .iter()
            .filter(|group| {
                let first = cluster.node(group[0]).region;
                group.iter().all(|&id| cluster.node(id).region == first)
            })
            .count();
        assert!(single_region_groups >= 1, "groups: {groups:?}");
    }

    #[test]
    fn solve_produces_disjoint_replicas_with_additive_throughput() {
        let profile =
            ClusterProfile::analytic(ClusterSpec::single_cluster_24(), ModelConfig::llama_30b());
        let planner = PartitionedPlanner::new(&profile).with_options(quick_options(8));
        let plan = planner.solve().unwrap();
        assert!(plan.num_replicas() >= 2);
        assert!(plan.total_throughput() > 0.0);

        let combined = plan.combined_placement();
        combined.validate(&profile).unwrap();
        let graph = FlowGraphBuilder::new(&profile).build(&combined).unwrap();
        let flow = graph.max_flow();
        // Disjoint replicas add up: the combined placement's max flow must be
        // at least (almost) the sum of per-partition throughputs, and each
        // partition contributes something.
        assert!(
            flow.value >= 0.95 * plan.total_throughput(),
            "combined flow {} vs partition sum {}",
            flow.value,
            plan.total_throughput()
        );
        for partition in plan.partitions() {
            assert!(partition.throughput > 0.0);
            assert!(partition.placement.num_assigned() >= 1);
            assert!(partition.placement.num_assigned() <= partition.nodes.len());
        }
    }

    #[test]
    fn small_clusters_collapse_to_a_single_partition() {
        let profile =
            ClusterProfile::analytic(ClusterSpec::solver_quality_10(), ModelConfig::llama_30b());
        let planner = PartitionedPlanner::new(&profile).with_options(quick_options(32));
        let groups = planner.node_groups();
        assert_eq!(groups.len(), 1);
        let plan = planner.solve().unwrap();
        assert_eq!(plan.num_replicas(), 1);
        let combined = plan.combined_placement();
        assert!(combined.has_complete_pipeline(profile.model().num_layers));
    }
}
