//! High-availability behaviour on the prototype runtime: KV replication to
//! standby tenancies, replica promotion with bounded token loss when a node
//! is killed mid-run, the abort-and-readmit fallback, and the drain-gated
//! prefix-router regression (a failed node must be evicted from every
//! router even when the re-plan around it is infeasible).

use helix_cluster::{
    ClusterBuilder, ClusterProfile, GpuType, ModelConfig, ModelId, NodeId, Region,
};
use helix_core::fleet::{fleet_profiles, FleetPlacement};
use helix_core::{
    FleetScheduler, FleetTopology, IwrrScheduler, LayerRange, ModelPlacement, ReplicationPolicy,
    Topology,
};
use helix_runtime::{RuntimeConfig, RuntimeReport, ServingBuilder, ServingSession};
use helix_workload::{PrefixId, Request};
use std::time::Duration;

/// Two-stage pipeline with every stage doubled: nodes 0 and 2 hold the
/// bottom half, nodes 1 and 3 the top half — the same shape as the
/// simulator HA suite, so any single node can fail and the other replica
/// of its stage absorbs both the re-plan and the promoted pipelines.
fn redundant_topology() -> Topology {
    let cluster = ClusterBuilder::new("ha-redundant-4")
        .intra_region(10_000.0, 1.0)
        .add_nodes(GpuType::A100_80, 4, 1, Region(0))
        .build();
    let profile = ClusterProfile::analytic(cluster, ModelConfig::llama_13b());
    let layers = profile.model().num_layers;
    let half = layers / 2;
    let mut placement = ModelPlacement::empty(4);
    placement.assign(NodeId(0), LayerRange::new(0, half));
    placement.assign(NodeId(2), LayerRange::new(0, half));
    placement.assign(NodeId(1), LayerRange::new(half, layers));
    placement.assign(NodeId(3), LayerRange::new(half, layers));
    placement.validate(&profile).unwrap();
    Topology::plan(&profile, &placement, true).unwrap()
}

/// Analytic execution at a strong virtual-time speed-up: the failure needs
/// real in-flight decode to interrupt, which instant execution would finish
/// before the injected timestamp ever arrives.
fn live_config() -> RuntimeConfig {
    RuntimeConfig {
        // Large enough that analytic batch durations dominate the per-event
        // wall overhead (waker hops, channel sends): the virtual clock is
        // wall-driven, and the failure must land while decode is genuinely
        // in flight — not while every pipeline is still stuck in per-event
        // overhead with zero tokens produced.
        wall_per_virtual: 0.01,
        max_wall: Duration::from_secs(20),
        ..RuntimeConfig::default()
    }
}

fn steady_requests(n: u64, prompt: usize, output: usize, spacing: f64) -> Vec<Request> {
    (0..n)
        .map(|i| Request {
            id: i,
            prompt_tokens: prompt,
            output_tokens: output,
            arrival_time: spacing * i as f64,
            model: ModelId(0),
            ..Request::default()
        })
        .collect()
}

fn run_failover(policy: ReplicationPolicy) -> RuntimeReport {
    let topology = redundant_topology();
    let scheduler = IwrrScheduler::from_topology(&topology).unwrap();
    let mut session: ServingSession = ServingBuilder::new()
        .topology(&topology)
        .scheduler(Box::new(scheduler))
        .config(live_config())
        .build()
        .unwrap();
    session.set_replication(policy);
    for request in steady_requests(48, 64, 24, 0.05) {
        session.submit(request);
    }
    session.fail_node(NodeId(0), 3.0);
    session.drain().unwrap();
    session.finish().unwrap()
}

/// The headline fail-over guarantee, now on the threaded surface: with RF=2
/// a mid-run node failure loses zero requests, promotes replicas instead of
/// aborting, and recomputes strictly fewer tokens than abort-and-readmit.
#[test]
fn rf2_failover_promotes_replicas_with_bounded_token_loss() {
    let report = run_failover(ReplicationPolicy::rf2(0, 16));

    assert_eq!(report.completed(), 48, "no request may be lost to the kill");
    assert_eq!(report.failovers.len(), 1);
    let record = &report.failovers[0];
    assert_eq!(record.node, NodeId(0));
    assert!(
        !record.promoted.is_empty(),
        "RF=2 failure should promote replicas, got {record:?}"
    );
    assert!(
        record.aborted.is_empty(),
        "every doomed pipeline had a standby, got {record:?}"
    );
    assert!(
        record.tokens_recomputed < record.abort_recompute_tokens,
        "promotion must beat abort-and-readmit: {} vs {}",
        record.tokens_recomputed,
        record.abort_recompute_tokens
    );
    assert!(record.replica_tokens_used > 0);

    // The trickle itself showed up as replica traffic.
    assert!(report.replication.chunks > 0);
    assert!(report.replication.tokens > 0);
    assert!(report.replication.bytes > 0.0);

    // Outcomes stay well-formed across the promotion hand-over.
    for outcome in &report.outcomes {
        assert!(outcome.completed_at >= outcome.first_token_at);
    }
}

/// Control run: with replication disabled the same failure falls back to
/// abort-and-readmit — nothing is promoted, every doomed token is
/// recomputed, and no request is lost.
#[test]
fn disabled_replication_falls_back_to_abort_and_readmit() {
    let report = run_failover(ReplicationPolicy::disabled());

    assert_eq!(report.completed(), 48);
    assert_eq!(report.failovers.len(), 1);
    let record = &report.failovers[0];
    assert!(record.promoted.is_empty());
    assert!(!record.aborted.is_empty());
    assert_eq!(record.tokens_recomputed, record.abort_recompute_tokens);
    assert_eq!(record.replica_tokens_used, 0);
    assert_eq!(report.replication.tokens, 0);
}

/// Regression for the drain-gated eviction path: when the re-plan around a
/// failed node is *infeasible* (here: a second model whose only replica
/// lives on the failed node), the old plan keeps serving — and before the
/// fix the prefix routers kept pointing cached prefixes at the dead node,
/// so post-failure sharers dispatched into a black hole and the drain
/// stalled.  `fail_node` must evict the node from every router regardless
/// of whether the re-plan lands.
#[test]
fn infeasible_replan_still_evicts_failed_node_from_prefix_routers() {
    let cluster = ClusterBuilder::new("ha-drain-3")
        .intra_region(10_000.0, 1.0)
        .add_nodes(GpuType::A100_80, 3, 1, Region(0))
        .build();
    let profiles = fleet_profiles(
        &cluster,
        &[ModelConfig::llama_13b(), ModelConfig::llama_13b()],
    );
    let layers = profiles[0].model().num_layers;
    let half = layers / 2;
    // Model 0: doubled bottom stage (nodes 0 and 2), single top stage.
    let mut doubled = ModelPlacement::empty(3);
    doubled.assign(NodeId(0), LayerRange::new(0, half));
    doubled.assign(NodeId(2), LayerRange::new(0, half));
    doubled.assign(NodeId(1), LayerRange::new(half, layers));
    // Model 1: sole replica on node 0 — killing node 0 makes the fleet
    // re-plan infeasible, which is exactly the path under test.
    let mut sole = ModelPlacement::empty(3);
    sole.assign(NodeId(0), LayerRange::new(0, layers));
    let placement = FleetPlacement::new(vec![doubled, sole]);
    placement.validate(&profiles).unwrap();
    let fleet = FleetTopology::plan(&profiles, &placement, true).unwrap();
    let schedulers = FleetScheduler::iwrr(&fleet).unwrap();

    let mut session: ServingSession = ServingBuilder::new()
        .fleet(&fleet)
        .schedulers(schedulers)
        .config(RuntimeConfig {
            wall_per_virtual: 0.0005,
            max_wall: Duration::from_secs(10),
            ..RuntimeConfig::default()
        })
        .build()
        .unwrap();

    // Wave 1 (completes before the kill): adopt two prefixes on model 0 —
    // IWRR alternation homes one per pipeline, so exactly one of them homes
    // on the doomed node — plus one model-1 request on the sole replica.
    let prefixed = |id: u64, prefix: u64, at: f64| Request {
        id,
        prompt_tokens: 48,
        output_tokens: 2,
        arrival_time: at,
        model: ModelId(0),
        prefix: Some(PrefixId(prefix)),
        prefix_tokens: 32,
        ..Request::default()
    };
    session.submit(prefixed(0, 0, 0.0));
    session.submit(prefixed(1, 1, 0.0));
    session.submit(Request {
        id: 2,
        prompt_tokens: 32,
        output_tokens: 2,
        arrival_time: 0.0,
        model: ModelId(1),
        ..Request::default()
    });
    session.drain().unwrap();

    // Kill node 0; the model-1 tenancy has nowhere to go, so the re-plan is
    // infeasible and the old (holed) plan keeps serving.
    session.fail_node(NodeId(0), 1.5);

    // Wave 2 (after the kill): sharers of both prefixes.  The sharer whose
    // prefix homed on node 0 must *miss* (home evicted) and re-adopt on the
    // live pipeline instead of dispatching at the dead home.
    session.submit(prefixed(3, 0, 2.5));
    session.submit(prefixed(4, 1, 2.5));
    session.submit(prefixed(5, 0, 2.6));
    session.submit(prefixed(6, 1, 2.6));
    session.drain().unwrap();
    let report = session.finish().unwrap();

    assert_eq!(
        report.completed(),
        7,
        "post-failure sharers must re-route, not stall on the dead home"
    );
    assert_eq!(report.failovers.len(), 1);
    assert_eq!(report.failovers[0].node, NodeId(0));
    // At least one wave-2 sharer still hit a (live) cached home.
    assert!(report.prefix.prefix_hits >= 1);
    // Nothing ran on node 0 after the kill: its decode work is bounded by
    // what wave 1 could have produced.
    let node0_decode: u64 = report
        .nodes
        .iter()
        .filter(|n| n.node == NodeId(0))
        .map(|n| n.decode_tokens)
        .sum();
    assert!(
        node0_decode <= 3 * 2 * 2,
        "dead node kept decoding: {node0_decode} tokens"
    );
}
