//! Offline stub of the `crossbeam` API surface this workspace uses.
//!
//! Only `crossbeam::channel::{unbounded, Sender, Receiver, RecvTimeoutError}`
//! are needed; `std::sync::mpsc` provides the same semantics for this usage
//! (multi-producer single-consumer, unbounded, disconnect on drop), so the
//! stub simply re-exports it.  See `vendor/README.md` for why this exists.

pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_and_disconnect() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        drop(tx);
        drop(tx2);
        assert!(matches!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        ));
    }
}
