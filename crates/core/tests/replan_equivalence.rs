//! Property test: online re-planning is exact.
//!
//! For any valid sequence of placement deltas and observation snapshots,
//! [`FleetTopology::replan`] — which re-derives shares only for touched
//! nodes and re-solves only affected models on standing warm evaluators —
//! must produce node capacities, flows, KV capacities, link capacities,
//! link splits and IWRR weights **bit-identical** to a from-scratch
//! [`FleetTopology::plan_observed`] of the mutated placement under the same
//! observations.  The incremental path may not drift from the canonical one,
//! not even after several chained re-plans.

use helix_cluster::{ClusterProfile, ClusterSpec, ModelConfig, ModelId, NodeId};
use helix_core::fleet::{fleet_profiles, FleetPlacement, FleetTopology};
use helix_core::{IwrrScheduler, LayerRange, NodeObservations, PlacementDelta, Topology};
use proptest::prelude::*;

fn profiles() -> Vec<ClusterProfile> {
    fleet_profiles(
        &ClusterSpec::solver_quality_10(),
        &[ModelConfig::llama_13b(), ModelConfig::llama_13b()],
    )
}

/// A half-size chain placement both models can share node-for-node; the
/// overlap exercises multi-tenant compute/KV shares *and* cross-model link
/// splitting on every re-plan.
fn half_chain(profiles: &[ClusterProfile]) -> FleetPlacement {
    let cluster = profiles[0].cluster();
    let mut placement = helix_core::ModelPlacement::empty(cluster.num_nodes());
    let num_layers = profiles[0].model().num_layers;
    let mut start = 0usize;
    for id in cluster.node_ids() {
        if start >= num_layers {
            break;
        }
        let take = (profiles[0].node_profile(id).max_layers / 2).min(num_layers - start);
        if take == 0 {
            continue;
        }
        placement.assign(id, LayerRange::new(start, start + take));
        start += take;
    }
    assert!(placement.has_complete_pipeline(num_layers));
    FleetPlacement::new(vec![placement.clone(), placement])
}

/// Turns raw proptest picks into a delta that keeps the fleet placement
/// valid move-by-move (invalid picks are skipped), returning the delta and
/// the mutated placement it produces.
fn valid_delta(
    profiles: &[ClusterProfile],
    base: &FleetPlacement,
    moves: &[(usize, usize, usize, usize, bool)],
) -> (PlacementDelta, FleetPlacement) {
    let cluster = profiles[0].cluster();
    let nodes: Vec<NodeId> = cluster.node_ids().collect();
    let num_layers = profiles[0].model().num_layers;
    let mut delta = PlacementDelta::new();
    let mut placements = base.placements().to_vec();
    for &(model_pick, node_pick, start_pick, len_pick, remove) in moves {
        let m = model_pick % profiles.len();
        let node = nodes[node_pick % nodes.len()];
        let mut candidate = placements.clone();
        let change = if remove {
            candidate[m].clear(node);
            None
        } else {
            let max_layers = profiles[m].node_profile(node).max_layers.min(num_layers);
            if max_layers == 0 {
                continue;
            }
            let len = 1 + len_pick % max_layers;
            let start = start_pick % (num_layers - len + 1);
            let range = LayerRange::new(start, start + len);
            candidate[m].assign(node, range);
            Some(range)
        };
        let fleet_candidate = FleetPlacement::new(candidate);
        if fleet_candidate.validate(profiles).is_err() {
            continue;
        }
        placements = fleet_candidate.placements().to_vec();
        delta = match change {
            Some(range) => delta.assign(ModelId(m), node, range),
            None => delta.remove(ModelId(m), node),
        };
    }
    (delta, FleetPlacement::new(placements))
}

fn observations(
    picks: &[(usize, usize, u8)],
    num_nodes: usize,
    num_models: usize,
) -> NodeObservations {
    let mut observed = NodeObservations::new();
    for &(node_pick, model_pick, speed_pick) in picks {
        let speed = 0.2 + 0.8 * f64::from(speed_pick % 9) / 8.0;
        observed.record(
            NodeId(node_pick % num_nodes),
            ModelId(model_pick % num_models),
            100.0,
            speed,
            0.9,
        );
    }
    observed
}

/// Asserts two fleet plans are bit-identical across every surface a
/// downstream consumer reads.
fn assert_fleets_identical(replanned: &FleetTopology, scratch: &FleetTopology) {
    assert_eq!(replanned.num_models(), scratch.num_models());
    let cluster_nodes: Vec<NodeId> = replanned.profiles()[0].cluster().node_ids().collect();
    for m in 0..replanned.num_models() {
        let model = ModelId(m);
        let a: &Topology = replanned.model(model).unwrap();
        let b: &Topology = scratch.model(model).unwrap();
        assert_eq!(a.flow_value(), b.flow_value(), "model {m} flow value");
        assert_eq!(a.num_pipelines(), b.num_pipelines());
        assert_eq!(a.placement(), b.placement());
        let a_nodes: Vec<_> = a.nodes().collect();
        let b_nodes: Vec<_> = b.nodes().collect();
        assert_eq!(a_nodes.len(), b_nodes.len());
        for (x, y) in a_nodes.iter().zip(&b_nodes) {
            assert_eq!(x.node, y.node);
            assert_eq!(x.layers, y.layers);
            assert_eq!(x.capacity, y.capacity, "node {:?} capacity", x.node);
            assert_eq!(x.flow, y.flow, "node {:?} flow", x.node);
            assert_eq!(x.kv_capacity_tokens, y.kv_capacity_tokens);
        }
        assert_eq!(a.links().len(), b.links().len());
        for (x, y) in a.links().iter().zip(b.links()) {
            assert_eq!(x.from, y.from);
            assert_eq!(x.to, y.to);
            assert_eq!(x.capacity, y.capacity, "link {:?}→{:?}", x.from, x.to);
            assert_eq!(x.flow, y.flow, "link {:?}→{:?} flow", x.from, x.to);
        }
        // Shares (and therefore the scaled profiles planning ran on).
        for &node in &cluster_nodes {
            assert_eq!(
                replanned.compute_share(model, node),
                scratch.compute_share(model, node),
                "compute share of {node:?}"
            );
            for &to in &cluster_nodes {
                assert_eq!(
                    replanned.link_share(model, node, to),
                    scratch.link_share(model, node, to)
                );
            }
        }
        // IWRR weights come straight from the link flows; build both
        // schedulers to confirm the scheduling surface agrees too.
        let wa = IwrrScheduler::from_topology(a).unwrap();
        let wb = IwrrScheduler::from_topology(b).unwrap();
        for n in a.nodes() {
            for other in a.nodes() {
                assert_eq!(
                    wa.weight(Some(n.node), other.node),
                    wb.weight(Some(n.node), other.node)
                );
            }
            assert_eq!(wa.weight(None, n.node), wb.weight(None, n.node));
        }
    }
}

/// Builds a migration delta from raw proptest picks: each pick tries to move
/// the prefix or suffix half of some assigned range onto the chain-adjacent
/// node (skipping picks the placement cannot absorb), returning the delta
/// and the placement it resolves to.
fn valid_migration_delta(
    profiles: &[ClusterProfile],
    base: &FleetPlacement,
    picks: &[(usize, usize, bool)],
) -> (PlacementDelta, FleetPlacement) {
    let mut delta = PlacementDelta::new();
    let mut placements = base.placements().to_vec();
    for &(model_pick, node_pick, suffix) in picks {
        let m = model_pick % profiles.len();
        let assigned: Vec<(NodeId, LayerRange)> = placements[m].iter().collect();
        if assigned.len() < 2 {
            continue;
        }
        let i = node_pick % (assigned.len() - 1);
        // Move between chain neighbours so the destination merge stays
        // contiguous: suffix of i onto i+1, or prefix of i+1 onto i.
        let (from, to, moved) = if suffix {
            let (from, range) = assigned[i];
            if range.len() < 2 {
                continue;
            }
            let mid = range.start + range.len() / 2;
            (from, assigned[i + 1].0, LayerRange::new(mid, range.end))
        } else {
            let (from, range) = assigned[i + 1];
            if range.len() < 2 {
                continue;
            }
            let mid = range.start + range.len() / 2;
            (from, assigned[i].0, LayerRange::new(range.start, mid))
        };
        let candidate_delta = PlacementDelta::new().migrate(ModelId(m), from, to, moved);
        let Ok(resolved) = candidate_delta.resolve(&FleetPlacement::new(placements.clone())) else {
            continue;
        };
        let mut candidate = placements.clone();
        for &(model, node, range) in &resolved {
            match range {
                Some(r) => candidate[model.index()].assign(node, r),
                None => candidate[model.index()].clear(node),
            }
        }
        let fleet_candidate = FleetPlacement::new(candidate);
        if fleet_candidate.validate(profiles).is_err()
            || !fleet_candidate.placements()[m]
                .has_complete_pipeline(profiles[m].model().num_layers)
        {
            continue;
        }
        placements = fleet_candidate.placements().to_vec();
        delta = delta.migrate(ModelId(m), from, to, moved);
    }
    (delta, FleetPlacement::new(placements))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn replan_is_bit_identical_to_a_cold_plan_of_the_mutated_placement(
        moves in prop::collection::vec(
            (0usize..2, 0usize..32, 0usize..64, 0usize..16, prop::bool::ANY),
            0..8,
        ),
        obs_picks in prop::collection::vec((0usize..32, 0usize..2, 0u8..=255), 0..6),
        second_obs_picks in prop::collection::vec((0usize..32, 0usize..2, 0u8..=255), 0..4),
    ) {
        let profiles = profiles();
        let base = half_chain(&profiles);
        let mut fleet = FleetTopology::plan(&profiles, &base, true).unwrap();
        let n = profiles[0].cluster().num_nodes();

        // First re-plan: a delta plus an observation snapshot.
        let (delta, mutated) = valid_delta(&profiles, &base, &moves);
        let observed = observations(&obs_picks, n, 2);
        fleet.replan(&delta, &observed).unwrap();
        prop_assert_eq!(fleet.placement(), &mutated);
        let scratch = FleetTopology::plan_observed(&profiles, &mutated, true, &observed).unwrap();
        assert_fleets_identical(&fleet, &scratch);

        // Second re-plan from the already-replanned state (the standing
        // evaluators and cached shares must not drift): new observations,
        // no placement change.
        let observed2 = observations(&second_obs_picks, n, 2);
        fleet.replan(&PlacementDelta::new(), &observed2).unwrap();
        let scratch2 =
            FleetTopology::plan_observed(&profiles, &mutated, true, &observed2).unwrap();
        assert_fleets_identical(&fleet, &scratch2);
    }

    /// The migration half of the bit-identity contract: a layer-range
    /// migration delta (including chained migrations over the already-moved
    /// placement) replans bit-identically — capacities, flows, KV budgets,
    /// link splits, IWRR weights — to `plan_observed` of the placement the
    /// migrations resolve to.
    #[test]
    fn migration_replan_is_bit_identical_to_a_cold_plan(
        picks in prop::collection::vec((0usize..2, 0usize..16, prop::bool::ANY), 1..5),
        second_picks in prop::collection::vec((0usize..2, 0usize..16, prop::bool::ANY), 0..3),
        obs_picks in prop::collection::vec((0usize..32, 0usize..2, 0u8..=255), 0..4),
    ) {
        let profiles = profiles();
        let base = half_chain(&profiles);
        let mut fleet = FleetTopology::plan(&profiles, &base, true).unwrap();
        let n = profiles[0].cluster().num_nodes();

        // First re-plan: one or more migrations plus an observation snapshot.
        let (delta, mutated) = valid_migration_delta(&profiles, &base, &picks);
        let observed = observations(&obs_picks, n, 2);
        let outcome = fleet.replan(&delta, &observed).unwrap();
        prop_assert_eq!(fleet.placement(), &mutated);
        prop_assert_eq!(outcome.migrations.len(), delta.migrations().len());
        let scratch = FleetTopology::plan_observed(&profiles, &mutated, true, &observed).unwrap();
        assert_fleets_identical(&fleet, &scratch);

        // Chained migrations: a second migration delta resolved against the
        // *already migrated* placement must not drift either.
        let (delta2, mutated2) = valid_migration_delta(&profiles, &mutated, &second_picks);
        fleet.replan(&delta2, &observed).unwrap();
        prop_assert_eq!(fleet.placement(), &mutated2);
        let scratch2 =
            FleetTopology::plan_observed(&profiles, &mutated2, true, &observed).unwrap();
        assert_fleets_identical(&fleet, &scratch2);
    }
}

/// The minimality half of the acceptance criterion: a single-node delta on a
/// *disjoint* fleet re-solves only the model owning the node, warm.
#[test]
fn single_node_delta_resolves_only_the_owning_model() {
    let profiles = fleet_profiles(
        &ClusterSpec::single_cluster_24(),
        &[ModelConfig::llama_30b(), ModelConfig::llama_13b()],
    );
    let planner = helix_core::FleetAnnealingPlanner::new(&profiles).with_options(
        helix_core::FleetAnnealingOptions {
            iterations: 300,
            ..Default::default()
        },
    );
    let (placement, _) = planner.solve().unwrap();
    let mut fleet = FleetTopology::plan(&profiles, &placement, true).unwrap();
    let flows_before: Vec<f64> = fleet
        .topologies()
        .iter()
        .map(Topology::flow_value)
        .collect();

    // Shrink one of model 1's layer ranges by one layer (keeping validity).
    let (node, range) = placement.placements()[1]
        .iter()
        .find(|(node, range)| {
            range.len() > 1 && {
                let mut mutated = placement.placements()[1].clone();
                mutated.assign(*node, LayerRange::new(range.start, range.end - 1));
                mutated.has_complete_pipeline(profiles[1].model().num_layers)
                    && mutated.validate(&profiles[1]).is_ok()
            }
        })
        .expect("some range is shrinkable");
    let delta = PlacementDelta::new().assign(
        ModelId(1),
        node,
        LayerRange::new(range.start, range.end - 1),
    );
    let outcome = fleet.replan(&delta, &NodeObservations::new()).unwrap();

    assert_eq!(
        outcome.affected,
        vec![ModelId(1)],
        "only the owner re-solves"
    );
    assert_eq!(outcome.warm_flow_values.len(), 1);
    // Model 0 was not re-planned: identical flow value, no standing
    // evaluator was ever built for it.
    assert_eq!(
        fleet.model(ModelId(0)).unwrap().flow_value(),
        flows_before[0]
    );
    assert_eq!(fleet.standing_warm_solves(ModelId(0)), None);
    assert!(fleet.standing_warm_solves(ModelId(1)).is_some());
    // And the result still equals the cold plan of the mutated placement.
    let mut mutated = placement.placements().to_vec();
    mutated[1].assign(node, LayerRange::new(range.start, range.end - 1));
    let scratch = FleetTopology::plan(&profiles, &FleetPlacement::new(mutated), true).unwrap();
    assert_fleets_identical(&fleet, &scratch);
}
