//! Offline stub of the `rand` 0.8 API surface this workspace uses.
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64), the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, `gen`, `gen_bool` and
//! `gen_range` over integer and float ranges.  Streams are deterministic for
//! a given seed but are NOT the same streams as the real `rand` crate; all
//! in-tree determinism tests only require seed-stability, which this gives.
//! See `vendor/README.md` for why this stub exists.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// An RNG constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG seeded from a single `u64` (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an [`RngCore`] without bounds
/// (the stub's stand-in for `Standard: Distribution<T>`).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that can be sampled uniformly (the stub's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = StandardSample::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit: $t = StandardSample::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform over its standard domain; `[0, 1)`
    /// for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Standard RNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the stub's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10usize);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-3..=3i64);
            assert!((-3..=3).contains(&w));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
