//! Prefix-aware KV sharing: compute shared prefixes once per node.
//!
//! Serving workloads reuse long prompt prefixes — system prompts, few-shot
//! templates, multi-turn session history.  This example tags a workload with
//! shared prefixes (`Workload::with_shared_prefixes`), serves it on both
//! execution surfaces, and compares against the cache-blind twin of the same
//! workload (`Workload::without_prefixes`): identical token counts and
//! arrivals, but no request may share KV pages or skip prefill.
//!
//! Cache-aware routing (a `PrefixRouter` layered on the IWRR scheduler)
//! sends each sharer to the pipeline already holding its prefix; the shared
//! pool refcounts the resident pages so the prefix is materialised once per
//! node; prefill skips the shared range.  Both surfaces report what that
//! saved: hits, misses, skipped prefill tokens and shared pages.
//!
//! Run with: `cargo run --release --example prefix_sharing`
//!
//! CI runs this as a smoke test: it asserts the cache-aware run saves
//! prefill work and serves at least as fast as the cache-blind baseline.

use helix::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's 10-node study cluster serving LLaMA-2 13B.
    let profile =
        ClusterProfile::analytic(ClusterSpec::solver_quality_10(), ModelConfig::llama_13b());
    let placement = heuristics::swarm_placement(&profile)?;
    let topology = Topology::plan(&profile, &placement, true)?;

    // A prefill-dominated burst: 256-token prompts of which 224 are one of
    // eight shared templates, 8 output tokens, everything arriving at once
    // (so each template keeps a sharer in flight and its home stays warm).
    let requests: Vec<Request> = (0..80u64)
        .map(|id| Request {
            id,
            prompt_tokens: 256,
            output_tokens: 8,
            arrival_time: 0.0,
            ..Request::default()
        })
        .collect();
    let aware = Workload::new(requests).with_shared_prefixes(8, 224, 0.9);
    let blind = aware.clone().without_prefixes();

    // Simulator: the deterministic throughput comparison.
    let serve = |workload: &Workload| -> Result<FleetRunReport, Box<dyn std::error::Error>> {
        let scheduler = IwrrScheduler::from_topology(&topology)?;
        let sim = ClusterSimulator::new(&topology, Box::new(scheduler));
        let mut session = SimSession::new(sim, SimulationConfig::offline(3600.0).with_warmup(0.0));
        for request in workload.requests() {
            session.submit(*request);
        }
        Ok(session.finish())
    };
    let aware_report = serve(&aware)?;
    let blind_report = serve(&blind)?;
    let aware_tps = aware_report.metrics.overall.decode_throughput();
    let blind_tps = blind_report.metrics.overall.decode_throughput();
    println!("== simulator ==");
    println!(
        "  cache-aware : {:>7.1} tok/s  (hits {}, misses {}, {} prefill tokens skipped, {} shared pages)",
        aware_tps,
        aware_report.prefix.prefix_hits,
        aware_report.prefix.prefix_misses,
        aware_report.prefix.prefill_tokens_saved,
        aware_report.prefix.shared_pages,
    );
    println!("  cache-blind : {:>7.1} tok/s", blind_tps);
    println!("  speed-up    : {:>7.2}x", aware_tps / blind_tps.max(1e-9));

    // Prototype runtime: the same workload through the threaded surface.
    let runtime = |workload: &Workload| -> Result<RuntimeReport, Box<dyn std::error::Error>> {
        let session = ServingBuilder::new()
            .topology(&topology)
            .config(RuntimeConfig {
                wall_per_virtual: 0.0001,
                ..RuntimeConfig::default()
            })
            .build()?;
        Ok(session.serve(workload)?)
    };
    let rt_aware = runtime(&aware)?;
    println!("\n== prototype runtime ==");
    println!(
        "  completed {} requests; hits {}, misses {}, {} prefill tokens skipped, {} shared pages",
        rt_aware.completed(),
        rt_aware.prefix.prefix_hits,
        rt_aware.prefix.prefix_misses,
        rt_aware.prefix.prefill_tokens_saved,
        rt_aware.prefix.shared_pages,
    );

    // The smoke assertions CI relies on: sharing saved real prefill work on
    // both surfaces, and the cache-aware run is at least as fast as the
    // cache-blind baseline on the deterministic surface.
    assert!(
        aware_report.prefix.prefill_tokens_saved > 0,
        "the simulator skipped prefill work for shared prefixes"
    );
    assert!(
        rt_aware.prefix.prefill_tokens_saved > 0,
        "the runtime skipped prefill work for shared prefixes"
    );
    assert_eq!(rt_aware.completed(), 80);
    assert!(
        aware_tps >= blind_tps,
        "cache-aware throughput ({aware_tps:.1} tok/s) is at least cache-blind ({blind_tps:.1} tok/s)"
    );
    println!("\nprefix sharing smoke checks passed");
    Ok(())
}
