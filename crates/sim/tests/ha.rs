//! High-availability behaviour on the simulator surface: KV replication to
//! standby tenancies, replica promotion with bounded token loss on node
//! failure, the abort-and-readmit fallback, flap/straggler/partition
//! perturbations, and the shared-prefix refcount leak regressions
//! (migration-seeded copies and fail-over purges must both release cleanly).

use helix_cluster::{
    ClusterBuilder, ClusterProfile, ClusterSpec, GpuType, ModelConfig, ModelId, NodeId, Region,
};
use helix_core::{
    IwrrScheduler, LayerRange, ModelPlacement, ReplanReason, ReplicationPolicy, Topology,
};
use helix_sim::{ClusterSimulator, FleetRunReport, PerturbationEvent, SimulationConfig};
use helix_workload::{Request, Workload};

/// Two-stage pipeline with every stage doubled: nodes 0 and 2 hold the
/// bottom half, nodes 1 and 3 the top half.  Any single node can fail and
/// the other replica of its stage both absorbs the re-plan and acts as the
/// replication standby.
fn redundant_profile() -> (ClusterProfile, ModelPlacement) {
    let cluster = ClusterBuilder::new("ha-redundant-4")
        .intra_region(10_000.0, 1.0)
        .add_nodes(GpuType::A100_80, 4, 1, Region(0))
        .build();
    let profile = ClusterProfile::analytic(cluster, ModelConfig::llama_13b());
    let layers = profile.model().num_layers;
    let half = layers / 2;
    let mut placement = ModelPlacement::empty(4);
    placement.assign(NodeId(0), LayerRange::new(0, half));
    placement.assign(NodeId(2), LayerRange::new(0, half));
    placement.assign(NodeId(1), LayerRange::new(half, layers));
    placement.assign(NodeId(3), LayerRange::new(half, layers));
    placement.validate(&profile).unwrap();
    (profile, placement)
}

/// Same doubled-stage shape split across two regions: regions 0 and 1 each
/// hold a complete pipeline, so partitioning either region away leaves the
/// other serving.
fn two_region_profile() -> (ClusterProfile, ModelPlacement) {
    let cluster = ClusterBuilder::new("ha-two-region")
        .intra_region(10_000.0, 1.0)
        .inter_region(2_000.0, 20.0)
        .add_nodes(GpuType::A100_80, 2, 1, Region(0))
        .add_nodes(GpuType::A100_80, 2, 1, Region(1))
        .build();
    let profile = ClusterProfile::analytic(cluster, ModelConfig::llama_13b());
    let layers = profile.model().num_layers;
    let half = layers / 2;
    let mut placement = ModelPlacement::empty(4);
    placement.assign(NodeId(0), LayerRange::new(0, half));
    placement.assign(NodeId(1), LayerRange::new(half, layers));
    placement.assign(NodeId(2), LayerRange::new(0, half));
    placement.assign(NodeId(3), LayerRange::new(half, layers));
    placement.validate(&profile).unwrap();
    (profile, placement)
}

/// Single chain over the solver-quality cluster (the replanning suite's
/// shape): each node holds a distinct slab, so a partial-layer migration has
/// real KV to hand over.
fn chain_profile() -> (ClusterProfile, ModelPlacement) {
    let profile =
        ClusterProfile::analytic(ClusterSpec::solver_quality_10(), ModelConfig::llama_13b());
    let num_layers = profile.model().num_layers;
    let mut placement = ModelPlacement::empty(profile.cluster().num_nodes());
    let mut start = 0;
    for id in profile.cluster().node_ids() {
        if start >= num_layers {
            break;
        }
        let take = (profile.node_profile(id).max_layers / 2)
            .max(1)
            .min(num_layers - start);
        placement.assign(id, LayerRange::new(start, start + take));
        start += take;
    }
    assert!(placement.has_complete_pipeline(num_layers));
    (profile, placement)
}

/// The first adjacent chain pair whose suffix-half move keeps the placement
/// valid (mirrors the conformance suite's `migratable_pair`).
fn migratable_pair(
    profile: &ClusterProfile,
    placement: &ModelPlacement,
) -> (NodeId, NodeId, LayerRange) {
    let assigned: Vec<(NodeId, LayerRange)> = placement.iter().collect();
    assigned
        .windows(2)
        .find_map(|w| {
            let (from, range) = w[0];
            let (to, to_range) = w[1];
            if range.len() < 2 {
                return None;
            }
            let mid = range.start + range.len() / 2;
            let mut mutated = placement.clone();
            mutated.assign(from, LayerRange::new(range.start, mid));
            mutated.assign(to, LayerRange::new(mid, to_range.end));
            (mutated.validate(profile).is_ok()
                && mutated.has_complete_pipeline(profile.model().num_layers))
            .then_some((from, to, LayerRange::new(mid, range.end)))
        })
        .expect("some adjacent chain pair is migratable")
}

fn simulator(profile: &ClusterProfile, placement: &ModelPlacement) -> ClusterSimulator {
    let topology = Topology::plan(profile, placement, true).unwrap();
    let scheduler = IwrrScheduler::from_topology(&topology).unwrap();
    ClusterSimulator::new(&topology, Box::new(scheduler))
}

fn steady_requests(n: u64, prompt: usize, output: usize, spacing: f64) -> Workload {
    Workload::new(
        (0..n)
            .map(|i| Request {
                id: i,
                prompt_tokens: prompt,
                output_tokens: output,
                arrival_time: spacing * i as f64,
                model: ModelId(0),
                ..Request::default()
            })
            .collect(),
    )
}

fn run_failover(policy: ReplicationPolicy) -> FleetRunReport {
    let (profile, placement) = redundant_profile();
    let mut sim = simulator(&profile, &placement);
    sim.set_replication(policy);
    let workload = steady_requests(48, 64, 24, 0.05);
    sim.run_with_events(
        &workload,
        SimulationConfig::offline(600.0).with_warmup(0.0),
        &[PerturbationEvent::NodeFailure {
            at: 3.0,
            node: NodeId(0),
        }],
        None,
    )
}

/// The headline fail-over guarantee: with RF=2 a mid-run node failure loses
/// zero requests, promotes replicas instead of aborting, and recomputes
/// strictly fewer tokens than the abort-and-readmit fallback would have.
#[test]
fn rf2_failover_promotes_replicas_with_bounded_token_loss() {
    let report = run_failover(ReplicationPolicy::rf2(0, 16));

    assert_eq!(report.metrics.overall.completed_requests, 48);
    assert_eq!(report.failovers.len(), 1);
    let record = &report.failovers[0];
    assert_eq!(record.node, NodeId(0));
    assert!(
        !record.promoted.is_empty(),
        "RF=2 failure should promote replicas, got {record:?}"
    );
    assert!(
        record.aborted.is_empty(),
        "every doomed pipeline had a standby, got {record:?}"
    );
    assert!(
        record.tokens_recomputed < record.abort_recompute_tokens,
        "promotion must beat abort-and-readmit: {} vs {}",
        record.tokens_recomputed,
        record.abort_recompute_tokens
    );
    assert!(record.replica_tokens_used > 0);

    // The trickle itself showed up as replica traffic.
    assert!(report.replication.chunks > 0);
    assert!(report.replication.tokens > 0);
    assert!(report.replication.bytes > 0.0);
}

/// Control run: with replication disabled the same failure falls back to
/// abort-and-readmit — nothing is promoted, every doomed token is recomputed,
/// and no request is lost (availability without the bounded-loss bonus).
#[test]
fn disabled_replication_falls_back_to_abort_and_readmit() {
    let report = run_failover(ReplicationPolicy::disabled());

    assert_eq!(report.metrics.overall.completed_requests, 48);
    assert_eq!(report.failovers.len(), 1);
    let record = &report.failovers[0];
    assert!(record.promoted.is_empty());
    assert!(!record.aborted.is_empty());
    assert_eq!(record.tokens_recomputed, record.abort_recompute_tokens);
    assert_eq!(record.replica_tokens_used, 0);
    assert_eq!(report.replication.tokens, 0);
}

/// Regression for the migration leak: partial-layer migration seeds
/// shared-prefix copies on the destination.  Before the fix those copies
/// were never released (the prefix entry stayed on the source's books and
/// sharers decremented the wrong node), so KV residency never drained.
/// After the fix the prefix entry *moves* with the migration and completions
/// follow the forwarding chain, leaving every engine empty at the end.
#[test]
fn migrated_prefix_residency_releases_cleanly_at_completion() {
    let (profile, placement) = chain_profile();
    let (from, to, moved) = migratable_pair(&profile, &placement);
    let mut sim = simulator(&profile, &placement);
    let workload = steady_requests(40, 96, 8, 0.2).with_shared_prefixes(4, 64, 1.0);
    let report = sim.run_with_events(
        &workload,
        SimulationConfig::offline(600.0).with_warmup(0.0),
        &[PerturbationEvent::Migrate {
            at: 2.0,
            model: ModelId(0),
            from,
            to,
            layers: moved,
        }],
        None,
    );

    assert_eq!(report.metrics.overall.completed_requests, 40);
    assert!(report.prefix.prefix_hits + report.prefix.prefix_misses > 0);
    for node in profile.cluster().node_ids() {
        if let Some(engine) = sim.engine(node, ModelId(0)) {
            assert_eq!(
                engine.kv_used_tokens(),
                0.0,
                "node {node:?} leaked KV residency after all requests completed"
            );
        }
    }
}

/// Fail-over with shared-prefix sharers in flight: the purge must release
/// prefix references on every engine the doomed pipelines touched (including
/// replica standbys), and resumed incarnations must release their seeded KV
/// at completion — no residual pages anywhere once the run drains.
#[test]
fn node_failure_with_prefix_sharers_leaves_no_kv_residue() {
    let (profile, placement) = redundant_profile();
    let mut sim = simulator(&profile, &placement);
    sim.set_replication(ReplicationPolicy::rf2(0, 16));
    let workload = steady_requests(32, 96, 12, 0.1).with_shared_prefixes(4, 64, 1.0);
    let report = sim.run_with_events(
        &workload,
        SimulationConfig::offline(600.0).with_warmup(0.0),
        &[PerturbationEvent::NodeFailure {
            at: 2.0,
            node: NodeId(0),
        }],
        None,
    );

    assert_eq!(report.metrics.overall.completed_requests, 32);
    assert_eq!(report.failovers.len(), 1);
    for node in profile.cluster().node_ids() {
        if let Some(engine) = sim.engine(node, ModelId(0)) {
            assert_eq!(
                engine.kv_used_tokens(),
                0.0,
                "node {node:?} leaked KV residency across the fail-over"
            );
        }
    }
}

/// A flapping node goes down mid-run and rejoins after `down_secs`: the
/// fail-over re-routes its pipelines, the rejoin hands its layer ranges
/// back (a `NodeRejoin` re-plan), and the health directory reflects the
/// recovery.  No request is lost across the flap.
#[test]
fn flapping_node_rejoins_and_serves_again() {
    let (profile, placement) = redundant_profile();
    let mut sim = simulator(&profile, &placement);
    sim.set_replication(ReplicationPolicy::rf2(0, 16));
    let workload = steady_requests(48, 64, 24, 0.1);
    let report = sim.run_with_events(
        &workload,
        SimulationConfig::offline(600.0).with_warmup(0.0),
        &[PerturbationEvent::NodeFlap {
            at: 3.0,
            node: NodeId(0),
            down_secs: 6.0,
        }],
        None,
    );

    assert_eq!(report.metrics.overall.completed_requests, 48);
    assert_eq!(report.failovers.len(), 1);
    assert!(report
        .replans
        .iter()
        .any(|r| matches!(r.reason, ReplanReason::NodeFailure { node } if node == NodeId(0))));
    assert!(report
        .replans
        .iter()
        .any(|r| matches!(r.reason, ReplanReason::NodeRejoin { node } if node == NodeId(0))));
    // The rejoined node holds layers again and is no longer marked down.
    let topology = sim.model_topology(ModelId(0)).unwrap();
    assert!(topology.node(NodeId(0)).is_some());
    assert!(sim.node_health().down_nodes(9.5).is_empty());
}

/// A straggler is a soft perturbation: the node slows down, is marked
/// degraded, and recovers on schedule — no fail-over, no re-plan, every
/// request completes.
#[test]
fn straggler_degrades_then_recovers_without_failover() {
    let (profile, placement) = redundant_profile();
    let mut sim = simulator(&profile, &placement);
    let workload = steady_requests(32, 64, 16, 0.1);
    let report = sim.run_with_events(
        &workload,
        SimulationConfig::offline(600.0).with_warmup(0.0),
        &[PerturbationEvent::NodeStraggler {
            at: 2.0,
            node: NodeId(1),
            factor: 4.0,
            recover_secs: 5.0,
        }],
        None,
    );

    assert_eq!(report.metrics.overall.completed_requests, 32);
    assert!(report.failovers.is_empty());
    let _ = profile;
}

/// A region partition takes every node of the region down at once and heals
/// later: the surviving region absorbs the traffic, the healed nodes rejoin
/// with their old ranges, and no request is lost.
#[test]
fn region_partition_heals_and_nodes_rejoin() {
    let (profile, placement) = two_region_profile();
    let mut sim = simulator(&profile, &placement);
    let workload = steady_requests(48, 64, 16, 0.1);
    let report = sim.run_with_events(
        &workload,
        SimulationConfig::offline(600.0).with_warmup(0.0),
        &[PerturbationEvent::RegionPartition {
            at: 3.0,
            region: Region(1),
            heal_secs: 6.0,
        }],
        None,
    );

    assert_eq!(report.metrics.overall.completed_requests, 48);
    // Both partitioned nodes rejoined with their pre-failure ranges.
    for node in [NodeId(2), NodeId(3)] {
        assert!(report
            .replans
            .iter()
            .any(|r| matches!(r.reason, ReplanReason::NodeRejoin { node: n } if n == node)));
        let topology = sim.model_topology(ModelId(0)).unwrap();
        assert!(topology.node(node).is_some());
    }
    let _ = placement;
}
