//! Directed flow-network representation.
//!
//! The network stores edges in a flat arena with "residual twin" edges, the
//! classic adjacency-list layout used by push-relabel and Dinic.  Capacities
//! are `f64` because Helix edge capacities are tokens/second derived from
//! profiled throughputs and bandwidths (paper §4.3) and are not integral.

use crate::error::FlowError;
use crate::{dinic, edmonds_karp, push_relabel, MaxFlowAlgorithm, FLOW_EPS};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a node in a [`FlowNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Returns the underlying index of this node.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a directed edge in a [`FlowNetwork`].
///
/// Edge ids refer to *forward* edges only (the ones added by
/// [`FlowNetwork::add_edge`]); residual twins are an implementation detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EdgeId(pub(crate) usize);

impl EdgeId {
    /// Returns the underlying index of this edge.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A view of one forward edge together with its current flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeRef {
    /// Identifier of the edge.
    pub id: EdgeId,
    /// Tail (origin) node.
    pub from: NodeId,
    /// Head (destination) node.
    pub to: NodeId,
    /// Capacity of the edge.
    pub capacity: f64,
    /// Flow currently assigned to the edge (0 before any max-flow run).
    pub flow: f64,
}

/// Internal arena edge: forward edges sit at even indices, their residual
/// twins at the following odd index.
#[derive(Debug, Clone)]
pub(crate) struct ArenaEdge {
    pub(crate) to: usize,
    pub(crate) cap: f64,
    /// Remaining residual capacity (cap - flow for forward edges, flow for twins).
    pub(crate) residual: f64,
}

/// Opaque snapshot of a network's capacities and standing flow, produced by
/// [`FlowNetwork::snapshot_flows`].
#[derive(Debug, Clone)]
pub struct FlowSnapshot {
    /// `(capacity, residual)` per arena edge.
    state: Vec<(f64, f64)>,
}

impl FlowSnapshot {
    /// An empty snapshot to be filled by [`FlowNetwork::snapshot_flows_into`].
    pub fn empty() -> Self {
        FlowSnapshot { state: Vec::new() }
    }
}

/// Delta undo-log: a first-touch journal of the arena edges mutated since
/// [`FlowNetwork::begin_undo_log`].
///
/// Where [`FlowSnapshot`] copies all `E` arena edges up front, the journal
/// records `(index, capacity, residual)` only for edges actually written by
/// capacity updates, flow repair or a warm re-solve — rejected annealing
/// moves that touch a handful of edges roll back in O(touched), and a re-solve
/// that touches nothing rolls back for free.  De-duplication uses an
/// epoch-stamp array so each edge is recorded at most once per transaction
/// without clearing any per-edge state between transactions.
#[derive(Debug, Clone, Default)]
pub(crate) struct UndoJournal {
    /// Whether a transaction is open; when false every hook is a no-op.
    active: bool,
    /// `(arena index, capacity, residual)` at first touch, in touch order.
    entries: Vec<(usize, f64, f64)>,
    /// Epoch stamp per arena edge; `stamp[i] == epoch` means already recorded.
    stamp: Vec<u32>,
    /// Current transaction epoch (bumped by `begin`).
    epoch: u32,
}

impl UndoJournal {
    /// Records the pre-mutation state of one arena edge, once per transaction.
    #[inline]
    fn record(&mut self, idx: usize, cap: f64, residual: f64) {
        if self.stamp[idx] != self.epoch {
            self.stamp[idx] = self.epoch;
            self.entries.push((idx, cap, residual));
        }
    }

    /// Records a forward/twin arena pair about to be pushed on by a solver.
    #[inline]
    pub(crate) fn touch_pair(&mut self, eid: usize, edges: &[ArenaEdge]) {
        if self.active {
            self.record(eid, edges[eid].cap, edges[eid].residual);
            let twin = eid ^ 1;
            self.record(twin, edges[twin].cap, edges[twin].residual);
        }
    }
}

/// Result of a maximum-flow computation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowResult {
    /// Total flow value from source to sink.
    pub value: f64,
    /// Flow assigned to each forward edge, indexed by [`EdgeId::index`].
    pub edge_flows: Vec<f64>,
}

impl FlowResult {
    /// Flow over a particular forward edge.
    ///
    /// # Panics
    ///
    /// Panics if `edge` does not belong to the network that produced this
    /// result.
    pub fn flow(&self, edge: EdgeId) -> f64 {
        self.edge_flows[edge.0]
    }
}

/// A directed graph with non-negative edge capacities.
///
/// # Example
///
/// ```rust
/// use helix_maxflow::{FlowNetwork, MaxFlowAlgorithm};
///
/// let mut net = FlowNetwork::new();
/// let s = net.add_node("s");
/// let a = net.add_node("a");
/// let b = net.add_node("b");
/// let t = net.add_node("t");
/// net.add_edge(s, a, 3.0);
/// net.add_edge(s, b, 2.0);
/// net.add_edge(a, t, 2.0);
/// net.add_edge(b, t, 3.0);
/// net.add_edge(a, b, 5.0);
/// let flow = net.max_flow_with(s, t, MaxFlowAlgorithm::Dinic);
/// assert!((flow.value - 5.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlowNetwork {
    names: Vec<String>,
    name_index: HashMap<String, usize>,
    /// adjacency[v] = indices into `edges`
    pub(crate) adjacency: Vec<Vec<usize>>,
    pub(crate) edges: Vec<ArenaEdge>,
    /// Maps forward-edge id -> arena index (always 2 * id, kept explicit for clarity).
    forward: Vec<usize>,
    /// Delta undo-log for the warm-start rollback path.
    journal: UndoJournal,
}

impl FlowNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty network with room for `nodes` nodes and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        FlowNetwork {
            names: Vec::with_capacity(nodes),
            name_index: HashMap::with_capacity(nodes),
            adjacency: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges * 2),
            forward: Vec::with_capacity(edges),
            journal: UndoJournal::default(),
        }
    }

    /// Adds a node with a human-readable name and returns its id.
    ///
    /// Names do not need to be unique, but [`FlowNetwork::node_by_name`] only
    /// returns the first node registered under a given name.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let name = name.into();
        let id = self.names.len();
        self.name_index.entry(name.clone()).or_insert(id);
        self.names.push(name);
        self.adjacency.push(Vec::new());
        NodeId(id)
    }

    /// Looks up a node by the name given to [`FlowNetwork::add_node`].
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied().map(NodeId)
    }

    /// Returns the name of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not belong to this network.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.names[node.0]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of forward edges.
    pub fn edge_count(&self) -> usize {
        self.forward.len()
    }

    /// Iterates over node ids in insertion order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.names.len()).map(NodeId)
    }

    /// Adds a directed edge `from -> to` with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if either node is invalid or the capacity is negative/NaN; use
    /// [`FlowNetwork::try_add_edge`] for a fallible version.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, capacity: f64) -> EdgeId {
        self.try_add_edge(from, to, capacity)
            .expect("invalid edge passed to FlowNetwork::add_edge")
    }

    /// Adds a directed edge `from -> to` with the given capacity.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidNode`] if either endpoint is out of range
    /// and [`FlowError::InvalidCapacity`] if the capacity is negative or NaN.
    pub fn try_add_edge(
        &mut self,
        from: NodeId,
        to: NodeId,
        capacity: f64,
    ) -> Result<EdgeId, FlowError> {
        let len = self.names.len();
        for n in [from, to] {
            if n.0 >= len {
                return Err(FlowError::InvalidNode { index: n.0, len });
            }
        }
        if !capacity.is_finite() || capacity < 0.0 {
            return Err(FlowError::InvalidCapacity { capacity });
        }
        let id = self.forward.len();
        let fwd_idx = self.edges.len();
        self.edges.push(ArenaEdge {
            to: to.0,
            cap: capacity,
            residual: capacity,
        });
        self.edges.push(ArenaEdge {
            to: from.0,
            cap: 0.0,
            residual: 0.0,
        });
        self.adjacency[from.0].push(fwd_idx);
        self.adjacency[to.0].push(fwd_idx + 1);
        self.forward.push(fwd_idx);
        Ok(EdgeId(id))
    }

    /// Returns a view of a forward edge, with `flow = 0` (flows are only
    /// materialised in [`FlowResult`]).
    pub fn edge(&self, id: EdgeId) -> Result<EdgeRef, FlowError> {
        let idx = *self.forward.get(id.0).ok_or(FlowError::InvalidEdge {
            index: id.0,
            len: self.forward.len(),
        })?;
        let e = &self.edges[idx];
        let twin = &self.edges[idx + 1];
        Ok(EdgeRef {
            id,
            from: NodeId(twin.to),
            to: NodeId(e.to),
            capacity: e.cap,
            flow: e.cap - e.residual,
        })
    }

    /// Iterates over all forward edges.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        (0..self.forward.len()).map(|i| self.edge(EdgeId(i)).expect("edge ids are dense"))
    }

    /// Returns the ids of forward edges leaving `node`.
    pub fn out_edges(&self, node: NodeId) -> Vec<EdgeId> {
        self.adjacency
            .get(node.0)
            .map(|adj| {
                adj.iter()
                    .filter(|&&idx| idx % 2 == 0)
                    .map(|&idx| EdgeId(idx / 2))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Returns the ids of forward edges entering `node`.
    pub fn in_edges(&self, node: NodeId) -> Vec<EdgeId> {
        self.adjacency
            .get(node.0)
            .map(|adj| {
                adj.iter()
                    .filter(|&&idx| idx % 2 == 1)
                    .map(|&idx| EdgeId((idx - 1) / 2))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Total capacity of edges leaving `node`.
    pub fn out_capacity(&self, node: NodeId) -> f64 {
        self.out_edges(node)
            .iter()
            .map(|&e| {
                self.edge(e)
                    .expect("edge ids from out_edges are valid")
                    .capacity
            })
            .sum()
    }

    /// Computes the maximum flow from `source` to `sink` using the default
    /// algorithm (preflow-push, as used in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `source == sink` or either node is invalid.
    pub fn max_flow(&self, source: NodeId, sink: NodeId) -> FlowResult {
        self.max_flow_with(source, sink, MaxFlowAlgorithm::default())
    }

    /// Computes the maximum flow using the requested algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `source == sink` or either node is invalid.
    pub fn max_flow_with(
        &self,
        source: NodeId,
        sink: NodeId,
        algorithm: MaxFlowAlgorithm,
    ) -> FlowResult {
        self.try_max_flow(source, sink, algorithm)
            .expect("invalid source/sink passed to max_flow")
    }

    /// Fallible version of [`FlowNetwork::max_flow_with`].
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::SourceIsSink`] if the two endpoints coincide and
    /// [`FlowError::InvalidNode`] if either is out of range.
    pub fn try_max_flow(
        &self,
        source: NodeId,
        sink: NodeId,
        algorithm: MaxFlowAlgorithm,
    ) -> Result<FlowResult, FlowError> {
        let len = self.names.len();
        for n in [source, sink] {
            if n.0 >= len {
                return Err(FlowError::InvalidNode { index: n.0, len });
            }
        }
        if source == sink {
            return Err(FlowError::SourceIsSink);
        }
        let mut scratch = self.clone_arena();
        // Stateless solves work on a scratch arena; no undo-log to maintain.
        let mut no_journal = UndoJournal::default();
        let value = match algorithm {
            MaxFlowAlgorithm::PushRelabel => push_relabel::run(
                &mut scratch,
                &self.adjacency,
                len,
                source.0,
                sink.0,
                &mut no_journal,
            ),
            MaxFlowAlgorithm::Dinic => dinic::run(
                &mut scratch,
                &self.adjacency,
                len,
                source.0,
                sink.0,
                &mut no_journal,
            ),
            MaxFlowAlgorithm::EdmondsKarp => edmonds_karp::run(
                &mut scratch,
                &self.adjacency,
                len,
                source.0,
                sink.0,
                &mut no_journal,
            ),
        };
        let edge_flows = self
            .forward
            .iter()
            .map(|&idx| {
                let flow = scratch[idx].cap - scratch[idx].residual;
                if flow.abs() < FLOW_EPS {
                    0.0
                } else {
                    flow
                }
            })
            .collect();
        Ok(FlowResult { value, edge_flows })
    }

    /// Clones the arena in the zero-flow state, so stateless solves are
    /// independent of any standing flow left by
    /// [`FlowNetwork::resolve_from_residual`].
    pub(crate) fn clone_arena(&self) -> Vec<ArenaEdge> {
        let mut edges = self.edges.clone();
        for i in (0..edges.len()).step_by(2) {
            edges[i].residual = edges[i].cap;
            edges[i + 1].residual = 0.0;
        }
        edges
    }

    /// Current capacity of a forward edge.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidEdge`] if the id is out of range.
    pub fn capacity(&self, edge: EdgeId) -> Result<f64, FlowError> {
        self.edge(edge).map(|e| e.capacity)
    }

    /// Updates the capacity of a forward edge **in place**, preserving the
    /// flow currently stored on the edge (see
    /// [`FlowNetwork::resolve_from_residual`]).
    ///
    /// If the new capacity drops below the stored flow the edge becomes
    /// temporarily infeasible; the next call to `resolve_from_residual`
    /// repairs it by cancelling the overflow before re-solving.  This is the
    /// capacity-update half of the warm-start API used by the incremental
    /// placement planner.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidEdge`] if the id is out of range and
    /// [`FlowError::InvalidCapacity`] if the capacity is negative or NaN.
    pub fn set_capacity(&mut self, edge: EdgeId, capacity: f64) -> Result<(), FlowError> {
        if !capacity.is_finite() || capacity < 0.0 {
            return Err(FlowError::InvalidCapacity { capacity });
        }
        let idx = *self.forward.get(edge.0).ok_or(FlowError::InvalidEdge {
            index: edge.0,
            len: self.forward.len(),
        })?;
        let delta = capacity - self.edges[idx].cap;
        if delta == 0.0 {
            // Zero-delta short-circuit: nothing changes, nothing to journal.
            return Ok(());
        }
        self.journal_touch(idx);
        self.edges[idx].cap = capacity;
        self.edges[idx].residual += delta;
        Ok(())
    }

    /// Records the pre-mutation state of one arena edge into the active
    /// undo-log (no-op when no transaction is open).
    #[inline]
    fn journal_touch(&mut self, idx: usize) {
        if self.journal.active {
            let (cap, residual) = {
                let e = &self.edges[idx];
                (e.cap, e.residual)
            };
            self.journal.record(idx, cap, residual);
        }
    }

    /// Opens an undo-log transaction: every arena edge mutated by subsequent
    /// [`FlowNetwork::set_capacity`] or
    /// [`FlowNetwork::resolve_from_residual`] calls has its pre-mutation
    /// state recorded (once), until the transaction is closed by
    /// [`FlowNetwork::rollback_undo_log`] or
    /// [`FlowNetwork::discard_undo_log`].
    ///
    /// This is the O(touched) alternative to the O(E)
    /// [`FlowNetwork::snapshot_flows`]/[`FlowNetwork::restore_flows`] pair:
    /// rejected annealing moves perturb a handful of edges out of thousands,
    /// so rolling back only what was written dominates at fleet scale.
    /// Calling `begin_undo_log` while a transaction is open discards the old
    /// transaction and starts a fresh one.  The journal's buffers are reused
    /// across transactions, so a steady-state begin/rollback cycle does not
    /// allocate.
    pub fn begin_undo_log(&mut self) {
        self.journal.entries.clear();
        self.journal.stamp.resize(self.edges.len(), 0);
        self.journal.epoch = self.journal.epoch.wrapping_add(1);
        if self.journal.epoch == 0 {
            // u32 epoch wrapped: clear all stamps once and restart at 1.
            self.journal.stamp.fill(0);
            self.journal.epoch = 1;
        }
        self.journal.active = true;
    }

    /// Number of arena edges recorded by the open undo-log transaction
    /// (0 when no transaction is open or nothing was touched).
    pub fn undo_log_len(&self) -> usize {
        self.journal.entries.len()
    }

    /// Whether an undo-log transaction is open.
    pub fn undo_log_active(&self) -> bool {
        self.journal.active
    }

    /// Restores every edge recorded since [`FlowNetwork::begin_undo_log`] to
    /// its pre-transaction state and closes the transaction, returning the
    /// number of arena edges restored.
    ///
    /// Runs in O(touched); a transaction that touched nothing rolls back for
    /// free (no edge writes, no allocation).
    pub fn rollback_undo_log(&mut self) -> usize {
        let n = self.journal.entries.len();
        for i in 0..n {
            let (idx, cap, residual) = self.journal.entries[i];
            self.edges[idx].cap = cap;
            self.edges[idx].residual = residual;
        }
        self.journal.entries.clear();
        self.journal.active = false;
        n
    }

    /// Closes the open undo-log transaction without restoring anything,
    /// committing the mutations made since [`FlowNetwork::begin_undo_log`].
    pub fn discard_undo_log(&mut self) {
        self.journal.entries.clear();
        self.journal.active = false;
    }

    /// Captures the standing flow state (capacities and residuals) so a
    /// sequence of [`FlowNetwork::set_capacity`] +
    /// [`FlowNetwork::resolve_from_residual`] calls can be rolled back in
    /// O(E) without re-solving (see [`FlowNetwork::restore_flows`]).
    pub fn snapshot_flows(&self) -> FlowSnapshot {
        FlowSnapshot {
            state: self.edges.iter().map(|e| (e.cap, e.residual)).collect(),
        }
    }

    /// Like [`FlowNetwork::snapshot_flows`], but reuses `snapshot`'s storage
    /// (no allocation once warmed up) — for callers that snapshot on every
    /// iteration of a hot loop.
    pub fn snapshot_flows_into(&self, snapshot: &mut FlowSnapshot) {
        snapshot.state.clear();
        snapshot
            .state
            .extend(self.edges.iter().map(|e| (e.cap, e.residual)));
    }

    /// Restores the capacities and flow state captured by
    /// [`FlowNetwork::snapshot_flows`].
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::InvalidEdge`] if the snapshot was taken on a
    /// network with a different edge count.
    pub fn restore_flows(&mut self, snapshot: &FlowSnapshot) -> Result<(), FlowError> {
        if snapshot.state.len() != self.edges.len() {
            return Err(FlowError::InvalidEdge {
                index: snapshot.state.len(),
                len: self.edges.len(),
            });
        }
        // A bulk restore supersedes any open undo-log transaction.
        self.discard_undo_log();
        for (edge, &(cap, residual)) in self.edges.iter_mut().zip(&snapshot.state) {
            edge.cap = cap;
            edge.residual = residual;
        }
        Ok(())
    }

    /// Discards any flow stored on the network, returning every edge to the
    /// zero-flow residual state.  Any open undo-log transaction is discarded.
    pub fn reset_flows(&mut self) {
        self.discard_undo_log();
        for i in (0..self.edges.len()).step_by(2) {
            self.edges[i].residual = self.edges[i].cap;
            self.edges[i + 1].residual = 0.0;
        }
    }

    /// Re-solves the maximum flow **from the residual state left by the
    /// previous solve**, instead of from scratch.
    ///
    /// Unlike [`FlowNetwork::max_flow_with`] — which clones the arena and
    /// leaves the network untouched — this method maintains a standing flow
    /// on the network itself.  Calling it repeatedly after
    /// [`FlowNetwork::set_capacity`] updates gives warm-started re-solving:
    ///
    /// 1. edges whose capacity dropped below their stored flow are clamped,
    ///    and the resulting conservation violations are repaired by
    ///    cancelling flow along the paths and cycles that carried it;
    /// 2. the chosen algorithm then augments from the repaired feasible flow,
    ///    touching only the residual network.
    ///
    /// For small capacity changes (the single-node placement moves of the
    /// annealing planner) step 2 starts from an almost-maximum flow and does
    /// a fraction of the work of a cold solve.  The result is identical to a
    /// from-scratch solve up to floating-point tolerance, for every
    /// algorithm.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::SourceIsSink`] if the endpoints coincide and
    /// [`FlowError::InvalidNode`] if either is out of range.
    pub fn resolve_from_residual(
        &mut self,
        source: NodeId,
        sink: NodeId,
        algorithm: MaxFlowAlgorithm,
    ) -> Result<FlowResult, FlowError> {
        let n = self.names.len();
        for node in [source, sink] {
            if node.0 >= n {
                return Err(FlowError::InvalidNode {
                    index: node.0,
                    len: n,
                });
            }
        }
        if source == sink {
            return Err(FlowError::SourceIsSink);
        }
        let max_cap = self.edges.iter().map(|e| e.cap).fold(0.0_f64, f64::max);
        let eps = (max_cap * 1e-12).max(FLOW_EPS);

        self.repair_infeasible_flow(source.0, sink.0, eps);

        match algorithm {
            MaxFlowAlgorithm::PushRelabel => push_relabel::run(
                &mut self.edges,
                &self.adjacency,
                n,
                source.0,
                sink.0,
                &mut self.journal,
            ),
            MaxFlowAlgorithm::Dinic => dinic::run(
                &mut self.edges,
                &self.adjacency,
                n,
                source.0,
                sink.0,
                &mut self.journal,
            ),
            MaxFlowAlgorithm::EdmondsKarp => edmonds_karp::run(
                &mut self.edges,
                &self.adjacency,
                n,
                source.0,
                sink.0,
                &mut self.journal,
            ),
        };

        // Read the value and per-edge flows off the standing arena: the
        // algorithms only report the flow pushed *this* run, not the total.
        let mut value = 0.0;
        for &idx in &self.adjacency[source.0] {
            if idx % 2 == 0 {
                value += self.edges[idx].cap - self.edges[idx].residual;
            } else {
                // Forward edge into the source: its flow re-enters the source.
                value -= self.edges[idx].residual;
            }
        }
        if value.abs() < eps {
            value = 0.0;
        }
        let edge_flows = self
            .forward
            .iter()
            .map(|&idx| {
                let flow = self.edges[idx].cap - self.edges[idx].residual;
                if flow.abs() < FLOW_EPS {
                    0.0
                } else {
                    flow
                }
            })
            .collect();
        Ok(FlowResult { value, edge_flows })
    }

    /// Clamps edges whose stored flow exceeds their (possibly just reduced)
    /// capacity and restores flow conservation by cancelling the overflow
    /// along the flow paths and cycles that carried it.
    fn repair_infeasible_flow(&mut self, source: usize, sink: usize, eps: f64) {
        let n = self.names.len();
        let mut imbalance = vec![0.0f64; n];
        let mut any = false;
        for i in (0..self.edges.len()).step_by(2) {
            if self.edges[i].residual < 0.0 {
                let overflow = -self.edges[i].residual;
                self.journal_touch(i);
                self.journal_touch(i + 1);
                self.edges[i].residual = 0.0;
                self.edges[i + 1].residual = self.edges[i].cap;
                if overflow > eps {
                    let from = self.edges[i + 1].to;
                    let to = self.edges[i].to;
                    imbalance[from] += overflow;
                    imbalance[to] -= overflow;
                    any = true;
                }
            }
        }
        if !any {
            return;
        }
        // Deficits first (they may terminate at excess nodes and settle both
        // sides at once), then remaining excesses drain back towards the
        // source.
        for node in 0..n {
            if node == source || node == sink {
                continue;
            }
            while imbalance[node] < -eps {
                self.cancel_walk(node, source, sink, &mut imbalance, eps, true);
            }
        }
        for node in 0..n {
            if node == source || node == sink {
                continue;
            }
            while imbalance[node] > eps {
                self.cancel_walk(node, source, sink, &mut imbalance, eps, false);
            }
        }
    }

    /// Cancels one unit-path of flow starting at an imbalanced node.
    ///
    /// `forward = true` repairs a deficit (outflow exceeds inflow) by walking
    /// *with* the flow until the sink, the source or an excess node is
    /// reached; `forward = false` repairs an excess by walking *against* the
    /// flow.  Cycles encountered along the way are cancelled outright.
    fn cancel_walk(
        &mut self,
        start: usize,
        source: usize,
        sink: usize,
        imbalance: &mut [f64],
        eps: f64,
        forward: bool,
    ) {
        let n = self.names.len();
        // Arena indices of the flow-carrying edges on the current path; for
        // forward walks these are forward-edge indices, for backward walks
        // twin indices.
        let mut path: Vec<usize> = Vec::new();
        let mut position: Vec<Option<usize>> = vec![None; n];
        let mut current = start;
        position[current] = Some(0);
        loop {
            // A flow-carrying edge incident to `current` in the walk
            // direction: forward walks follow forward edges with positive
            // flow (twin residual > eps); backward walks follow twin entries
            // with positive residual (= flow on the forward edge into
            // `current`).
            let next_arena = self.adjacency[current].iter().copied().find(|&idx| {
                if forward {
                    idx % 2 == 0
                        && self.edges[idx ^ 1].residual > eps
                        && self.edges[idx].to != current
                } else {
                    idx % 2 == 1 && self.edges[idx].residual > eps && self.edges[idx].to != current
                }
            });
            let Some(arena_idx) = next_arena else {
                // Numerical dust: no flow edge left to cancel against.
                imbalance[start] = 0.0;
                return;
            };
            let next = self.edges[arena_idx].to;
            if let Some(cycle_start) = position[next] {
                // Cancel the cycle portion and retry from `next`.
                let cycle = &path[cycle_start..];
                let amount = cycle
                    .iter()
                    .chain(std::iter::once(&arena_idx))
                    .map(|&idx| {
                        if forward {
                            self.edges[idx ^ 1].residual
                        } else {
                            self.edges[idx].residual
                        }
                    })
                    .fold(f64::INFINITY, f64::min);
                for &idx in cycle.iter().chain(std::iter::once(&arena_idx)) {
                    self.journal_touch(idx);
                    self.journal_touch(idx ^ 1);
                    if forward {
                        self.edges[idx].residual += amount;
                        self.edges[idx ^ 1].residual -= amount;
                    } else {
                        self.edges[idx ^ 1].residual += amount;
                        self.edges[idx].residual -= amount;
                    }
                }
                // Clear path positions past the cycle start and rewind.
                for &idx in &path[cycle_start..] {
                    let node = self.edges[idx].to;
                    position[node] = None;
                }
                path.truncate(cycle_start);
                current = next;
                position[current] = Some(path.len());
                continue;
            }
            path.push(arena_idx);
            let terminal_excess = if forward {
                imbalance[next] > eps
            } else {
                imbalance[next] < -eps
            };
            if next == sink || next == source || terminal_excess {
                let magnitude = imbalance[start].abs();
                let bottleneck = path
                    .iter()
                    .map(|&idx| {
                        if forward {
                            self.edges[idx ^ 1].residual
                        } else {
                            self.edges[idx].residual
                        }
                    })
                    .fold(f64::INFINITY, f64::min);
                let mut amount = magnitude.min(bottleneck);
                if terminal_excess {
                    amount = amount.min(imbalance[next].abs());
                }
                for &idx in &path {
                    self.journal_touch(idx);
                    self.journal_touch(idx ^ 1);
                    if forward {
                        self.edges[idx].residual += amount;
                        self.edges[idx ^ 1].residual -= amount;
                    } else {
                        self.edges[idx ^ 1].residual += amount;
                        self.edges[idx].residual -= amount;
                    }
                }
                if forward {
                    imbalance[start] += amount;
                    if terminal_excess {
                        imbalance[next] -= amount;
                    }
                } else {
                    imbalance[start] -= amount;
                    if terminal_excess {
                        imbalance[next] += amount;
                    }
                }
                return;
            }
            current = next;
            position[current] = Some(path.len());
        }
    }

    /// Checks that `flows` (indexed like [`FlowResult::edge_flows`]) is a
    /// feasible source→sink flow: within capacity and conserving flow at every
    /// node other than `source` and `sink`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::NotAFlow`] naming the first node at which flow
    /// conservation is violated, or [`FlowError::InvalidCapacity`] if an edge
    /// flow exceeds its capacity.
    pub fn validate_flow(
        &self,
        flows: &[f64],
        source: NodeId,
        sink: NodeId,
    ) -> Result<(), FlowError> {
        let mut balance = vec![0.0f64; self.node_count()];
        for (i, &f) in flows.iter().enumerate().take(self.forward.len()) {
            let e = self.edge(EdgeId(i)).expect("dense edge ids");
            if f < -FLOW_EPS || f > e.capacity + 1e-6 {
                return Err(FlowError::InvalidCapacity { capacity: f });
            }
            balance[e.from.0] -= f;
            balance[e.to.0] += f;
        }
        for (node, &b) in balance.iter().enumerate() {
            if node == source.0 || node == sink.0 {
                continue;
            }
            if b.abs() > 1e-6 {
                return Err(FlowError::NotAFlow { node, imbalance: b });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (FlowNetwork, NodeId, NodeId) {
        let mut net = FlowNetwork::new();
        let s = net.add_node("s");
        let a = net.add_node("a");
        let b = net.add_node("b");
        let t = net.add_node("t");
        net.add_edge(s, a, 4.0);
        net.add_edge(s, b, 2.0);
        net.add_edge(a, t, 3.0);
        net.add_edge(b, t, 3.0);
        net.add_edge(a, b, 10.0);
        (net, s, t)
    }

    #[test]
    fn add_node_and_lookup() {
        let mut net = FlowNetwork::new();
        let a = net.add_node("alpha");
        let b = net.add_node("beta");
        assert_eq!(net.node_count(), 2);
        assert_eq!(net.node_by_name("alpha"), Some(a));
        assert_eq!(net.node_by_name("beta"), Some(b));
        assert_eq!(net.node_by_name("gamma"), None);
        assert_eq!(net.node_name(a), "alpha");
    }

    #[test]
    fn duplicate_names_resolve_to_first() {
        let mut net = FlowNetwork::new();
        let a = net.add_node("x");
        let _b = net.add_node("x");
        assert_eq!(net.node_by_name("x"), Some(a));
        assert_eq!(net.node_count(), 2);
    }

    #[test]
    fn add_edge_rejects_bad_input() {
        let mut net = FlowNetwork::new();
        let a = net.add_node("a");
        let b = net.add_node("b");
        assert!(matches!(
            net.try_add_edge(a, NodeId(7), 1.0),
            Err(FlowError::InvalidNode { .. })
        ));
        assert!(matches!(
            net.try_add_edge(a, b, -1.0),
            Err(FlowError::InvalidCapacity { .. })
        ));
        assert!(matches!(
            net.try_add_edge(a, b, f64::NAN),
            Err(FlowError::InvalidCapacity { .. })
        ));
        assert!(net.try_add_edge(a, b, 0.0).is_ok());
    }

    #[test]
    fn edge_views_report_endpoints_and_capacity() {
        let (net, s, t) = diamond();
        let e0 = net.edge(EdgeId(0)).unwrap();
        assert_eq!(e0.from, s);
        assert_eq!(e0.capacity, 4.0);
        assert_eq!(net.edge_count(), 5);
        assert!(net.edge(EdgeId(42)).is_err());
        let out_s = net.out_edges(s);
        assert_eq!(out_s.len(), 2);
        let in_t = net.in_edges(t);
        assert_eq!(in_t.len(), 2);
        assert_eq!(net.out_capacity(s), 6.0);
    }

    #[test]
    fn max_flow_diamond_all_algorithms_agree() {
        let (net, s, t) = diamond();
        for alg in [
            MaxFlowAlgorithm::PushRelabel,
            MaxFlowAlgorithm::Dinic,
            MaxFlowAlgorithm::EdmondsKarp,
        ] {
            let r = net.max_flow_with(s, t, alg);
            assert!((r.value - 6.0).abs() < 1e-9, "{alg:?} gave {}", r.value);
            net.validate_flow(&r.edge_flows, s, t).unwrap();
        }
    }

    #[test]
    fn max_flow_source_is_sink_errors() {
        let (net, s, _) = diamond();
        assert!(matches!(
            net.try_max_flow(s, s, MaxFlowAlgorithm::Dinic),
            Err(FlowError::SourceIsSink)
        ));
    }

    #[test]
    fn max_flow_disconnected_is_zero() {
        let mut net = FlowNetwork::new();
        let s = net.add_node("s");
        let t = net.add_node("t");
        let r = net.max_flow(s, t);
        assert_eq!(r.value, 0.0);
    }

    #[test]
    fn zero_capacity_edges_carry_no_flow() {
        let mut net = FlowNetwork::new();
        let s = net.add_node("s");
        let t = net.add_node("t");
        let e = net.add_edge(s, t, 0.0);
        let r = net.max_flow(s, t);
        assert_eq!(r.value, 0.0);
        assert_eq!(r.flow(e), 0.0);
    }

    #[test]
    fn validate_flow_detects_conservation_violation() {
        let (net, s, t) = diamond();
        // Push 1 unit on s->a but nothing out of a.
        let flows = vec![1.0, 0.0, 0.0, 0.0, 0.0];
        assert!(matches!(
            net.validate_flow(&flows, s, t),
            Err(FlowError::NotAFlow { .. })
        ));
    }

    #[test]
    fn parallel_edges_are_supported() {
        let mut net = FlowNetwork::new();
        let s = net.add_node("s");
        let t = net.add_node("t");
        net.add_edge(s, t, 2.0);
        net.add_edge(s, t, 3.0);
        let r = net.max_flow(s, t);
        assert!((r.value - 5.0).abs() < 1e-9);
    }

    #[test]
    fn self_loops_do_not_contribute_flow() {
        let mut net = FlowNetwork::new();
        let s = net.add_node("s");
        let a = net.add_node("a");
        let t = net.add_node("t");
        net.add_edge(s, a, 5.0);
        net.add_edge(a, a, 100.0);
        net.add_edge(a, t, 3.0);
        for alg in [
            MaxFlowAlgorithm::PushRelabel,
            MaxFlowAlgorithm::Dinic,
            MaxFlowAlgorithm::EdmondsKarp,
        ] {
            let r = net.max_flow_with(s, t, alg);
            assert!((r.value - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn antiparallel_edges_are_supported() {
        let mut net = FlowNetwork::new();
        let s = net.add_node("s");
        let a = net.add_node("a");
        let b = net.add_node("b");
        let t = net.add_node("t");
        net.add_edge(s, a, 10.0);
        net.add_edge(a, b, 4.0);
        net.add_edge(b, a, 7.0);
        net.add_edge(b, t, 10.0);
        let r = net.max_flow(s, t);
        assert!((r.value - 4.0).abs() < 1e-9);
    }

    #[test]
    fn node_display_and_edge_display() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(EdgeId(2).to_string(), "e2");
    }

    #[test]
    fn set_capacity_rejects_bad_input_and_updates_views() {
        let (mut net, _, _) = diamond();
        assert!(matches!(
            net.set_capacity(EdgeId(42), 1.0),
            Err(FlowError::InvalidEdge { .. })
        ));
        assert!(matches!(
            net.set_capacity(EdgeId(0), -1.0),
            Err(FlowError::InvalidCapacity { .. })
        ));
        assert!(matches!(
            net.set_capacity(EdgeId(0), f64::NAN),
            Err(FlowError::InvalidCapacity { .. })
        ));
        net.set_capacity(EdgeId(0), 7.5).unwrap();
        assert_eq!(net.capacity(EdgeId(0)).unwrap(), 7.5);
        assert_eq!(net.edge(EdgeId(0)).unwrap().capacity, 7.5);
    }

    #[test]
    fn warm_resolve_matches_cold_solve_after_capacity_increase() {
        let (mut net, s, t) = diamond();
        let first = net
            .resolve_from_residual(s, t, MaxFlowAlgorithm::PushRelabel)
            .unwrap();
        assert!((first.value - 6.0).abs() < 1e-9);
        // Raise the s->b edge: more flow becomes routable.
        net.set_capacity(EdgeId(1), 5.0).unwrap();
        let warm = net
            .resolve_from_residual(s, t, MaxFlowAlgorithm::PushRelabel)
            .unwrap();
        let cold = net.max_flow(s, t);
        assert!(
            (warm.value - cold.value).abs() < 1e-9,
            "warm {} cold {}",
            warm.value,
            cold.value
        );
        net.validate_flow(&warm.edge_flows, s, t).unwrap();
    }

    #[test]
    fn warm_resolve_repairs_capacity_decrease_below_flow() {
        let (mut net, s, t) = diamond();
        let _ = net
            .resolve_from_residual(s, t, MaxFlowAlgorithm::Dinic)
            .unwrap();
        // Choke the s->a edge below the flow it carries.
        net.set_capacity(EdgeId(0), 1.0).unwrap();
        let warm = net
            .resolve_from_residual(s, t, MaxFlowAlgorithm::Dinic)
            .unwrap();
        let cold = net.max_flow(s, t);
        assert!(
            (warm.value - cold.value).abs() < 1e-9,
            "warm {} cold {}",
            warm.value,
            cold.value
        );
        net.validate_flow(&warm.edge_flows, s, t).unwrap();
        // Restore: warm solve must recover the original maximum.
        net.set_capacity(EdgeId(0), 4.0).unwrap();
        let restored = net
            .resolve_from_residual(s, t, MaxFlowAlgorithm::Dinic)
            .unwrap();
        assert!((restored.value - 6.0).abs() < 1e-9);
        net.validate_flow(&restored.edge_flows, s, t).unwrap();
    }

    #[test]
    fn warm_resolve_handles_zeroed_and_restored_edges() {
        let (mut net, s, t) = diamond();
        let _ = net
            .resolve_from_residual(s, t, MaxFlowAlgorithm::EdmondsKarp)
            .unwrap();
        for e in 0..net.edge_count() {
            net.set_capacity(EdgeId(e), 0.0).unwrap();
        }
        let zero = net
            .resolve_from_residual(s, t, MaxFlowAlgorithm::EdmondsKarp)
            .unwrap();
        assert_eq!(zero.value, 0.0);
        // Bring the network back in a different shape.
        net.set_capacity(EdgeId(0), 2.0).unwrap();
        net.set_capacity(EdgeId(2), 2.0).unwrap();
        let back = net
            .resolve_from_residual(s, t, MaxFlowAlgorithm::EdmondsKarp)
            .unwrap();
        assert!((back.value - 2.0).abs() < 1e-9);
        net.validate_flow(&back.edge_flows, s, t).unwrap();
    }

    fn arena_state(net: &FlowNetwork) -> Vec<(f64, f64)> {
        net.edges.iter().map(|e| (e.cap, e.residual)).collect()
    }

    #[test]
    fn undo_log_rolls_back_capacity_change_and_resolve_exactly() {
        for alg in [
            MaxFlowAlgorithm::PushRelabel,
            MaxFlowAlgorithm::Dinic,
            MaxFlowAlgorithm::EdmondsKarp,
        ] {
            let (mut net, s, t) = diamond();
            let first = net.resolve_from_residual(s, t, alg).unwrap();
            assert!((first.value - 6.0).abs() < 1e-9);
            let before = arena_state(&net);

            net.begin_undo_log();
            net.set_capacity(EdgeId(0), 1.0).unwrap();
            let perturbed = net.resolve_from_residual(s, t, alg).unwrap();
            assert!(perturbed.value < first.value);
            assert!(net.undo_log_len() > 0, "{alg:?} recorded nothing");
            assert_ne!(arena_state(&net), before);

            let restored = net.rollback_undo_log();
            assert!(restored > 0);
            assert!(!net.undo_log_active());
            // Bit-identical to the pre-transaction state, not just equivalent.
            assert_eq!(arena_state(&net), before, "{alg:?} rollback diverged");
        }
    }

    #[test]
    fn undo_log_zero_delta_transaction_records_nothing() {
        let (mut net, s, t) = diamond();
        let _ = net
            .resolve_from_residual(s, t, MaxFlowAlgorithm::Dinic)
            .unwrap();
        let before = arena_state(&net);

        net.begin_undo_log();
        // Re-assert the capacities the edges already have: the zero-delta
        // short-circuit must skip the writes entirely...
        for id in 0..net.edge_count() {
            let cap = net.capacity(EdgeId(id)).unwrap();
            net.set_capacity(EdgeId(id), cap).unwrap();
        }
        // ...and a warm re-solve of an already-maximum flow finds no
        // augmenting path, so it touches no edges either.
        let re = net
            .resolve_from_residual(s, t, MaxFlowAlgorithm::Dinic)
            .unwrap();
        assert!((re.value - 6.0).abs() < 1e-9);
        assert_eq!(net.undo_log_len(), 0);
        assert_eq!(net.rollback_undo_log(), 0);
        assert_eq!(arena_state(&net), before);
    }

    #[test]
    fn undo_log_discard_commits_the_mutations() {
        let (mut net, s, t) = diamond();
        let _ = net
            .resolve_from_residual(s, t, MaxFlowAlgorithm::Dinic)
            .unwrap();
        net.begin_undo_log();
        net.set_capacity(EdgeId(1), 5.0).unwrap();
        let improved = net
            .resolve_from_residual(s, t, MaxFlowAlgorithm::Dinic)
            .unwrap();
        net.discard_undo_log();
        assert!(!net.undo_log_active());
        assert_eq!(net.capacity(EdgeId(1)).unwrap(), 5.0);
        let after = net
            .resolve_from_residual(s, t, MaxFlowAlgorithm::Dinic)
            .unwrap();
        assert!((after.value - improved.value).abs() < 1e-9);
    }

    #[test]
    fn undo_log_begin_restarts_an_open_transaction() {
        let (mut net, s, t) = diamond();
        let _ = net
            .resolve_from_residual(s, t, MaxFlowAlgorithm::Dinic)
            .unwrap();
        net.begin_undo_log();
        net.set_capacity(EdgeId(0), 1.0).unwrap();
        let _ = net
            .resolve_from_residual(s, t, MaxFlowAlgorithm::Dinic)
            .unwrap();
        let mid = arena_state(&net);
        // A fresh begin commits the first transaction implicitly.
        net.begin_undo_log();
        net.set_capacity(EdgeId(2), 1.0).unwrap();
        let _ = net
            .resolve_from_residual(s, t, MaxFlowAlgorithm::Dinic)
            .unwrap();
        net.rollback_undo_log();
        assert_eq!(arena_state(&net), mid);
    }

    #[test]
    fn undo_log_covers_infeasible_flow_repair() {
        let (mut net, s, t) = diamond();
        let _ = net
            .resolve_from_residual(s, t, MaxFlowAlgorithm::Dinic)
            .unwrap();
        let before = arena_state(&net);
        net.begin_undo_log();
        // Choke an edge below its standing flow: the next resolve must run
        // the repair path (clamp + cancellation walks), all journaled.
        net.set_capacity(EdgeId(0), 0.5).unwrap();
        let _ = net
            .resolve_from_residual(s, t, MaxFlowAlgorithm::Dinic)
            .unwrap();
        net.rollback_undo_log();
        assert_eq!(arena_state(&net), before);
        // The rolled-back network still resolves to the original maximum.
        let re = net
            .resolve_from_residual(s, t, MaxFlowAlgorithm::Dinic)
            .unwrap();
        assert!((re.value - 6.0).abs() < 1e-9);
    }

    #[test]
    fn reset_flows_clears_the_standing_solution() {
        let (mut net, s, t) = diamond();
        let _ = net
            .resolve_from_residual(s, t, MaxFlowAlgorithm::PushRelabel)
            .unwrap();
        assert!(net.edges().any(|e| e.flow > 0.0));
        net.reset_flows();
        assert!(net.edges().all(|e| e.flow == 0.0));
        let re = net
            .resolve_from_residual(s, t, MaxFlowAlgorithm::PushRelabel)
            .unwrap();
        assert!((re.value - 6.0).abs() < 1e-9);
    }
}
