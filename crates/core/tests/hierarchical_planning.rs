//! Conformance suite for the hierarchical (partition → parallel-anneal →
//! refine) fleet planner: thread-count determinism down to the IWRR weights,
//! validity of every pod-partitioned plan, and a quality bound against exact
//! joint annealing at equal move budget.

use helix_cluster::{ClusterBuilder, ClusterSpec, GpuType, ModelConfig, ModelId, Region};
use helix_core::fleet::{
    fleet_profiles, FleetAnnealingOptions, FleetAnnealingPlanner, FleetTopology,
};
use helix_core::{
    Endpoint, HierarchicalFleetPlanner, HierarchicalOptions, IwrrScheduler, PodPartitionOptions,
    PodPartitioner,
};
use proptest::prelude::*;

fn hierarchical_options(
    iterations: usize,
    threads: usize,
    max_pod_size: usize,
) -> HierarchicalOptions {
    HierarchicalOptions {
        pods: PodPartitionOptions {
            max_pod_size,
            ..Default::default()
        },
        annealing: FleetAnnealingOptions {
            iterations,
            ..Default::default()
        },
        threads,
        ..Default::default()
    }
}

/// The planner's fleet objective: equal-weight normalised throughput.
fn objective(profiles: &[helix_cluster::ClusterProfile], flows: &[f64]) -> f64 {
    flows
        .iter()
        .zip(profiles)
        .map(|(&f, p)| f / p.throughput_upper_bound().max(1e-9))
        .sum()
}

/// The hierarchical plan is a pure function of the seed: annealing 8 pods on
/// 1 thread and on 8 threads must agree bit-for-bit all the way down the
/// serving stack — placements, cold-evaluated flows, topology link
/// capacities and flows, and the IWRR scheduling weights derived from them.
#[test]
fn hierarchical_plan_is_bit_identical_across_thread_counts() {
    let profiles = fleet_profiles(
        &ClusterSpec::high_heterogeneity_42(),
        &[ModelConfig::llama_30b(), ModelConfig::llama_13b()],
    );
    let solve = |threads: usize| {
        HierarchicalFleetPlanner::new(&profiles)
            .with_options(hierarchical_options(800, threads, 14))
            .solve()
            .unwrap()
    };
    let one = solve(1);
    let eight = solve(8);

    assert!(!one.used_fallback, "42 nodes must plan hierarchically");
    assert_eq!(one.placement.placements(), eight.placement.placements());
    assert_eq!(one.flows.len(), eight.flows.len());
    for (a, b) in one.flows.iter().zip(&eight.flows) {
        assert_eq!(a.to_bits(), b.to_bits(), "cold flows must be bit-identical");
    }

    let topo_one = FleetTopology::plan(&profiles, &one.placement, true).unwrap();
    let topo_eight = FleetTopology::plan(&profiles, &eight.placement, true).unwrap();
    for (ta, tb) in topo_one.topologies().iter().zip(topo_eight.topologies()) {
        assert_eq!(ta.links().len(), tb.links().len());
        for (la, lb) in ta.links().iter().zip(tb.links()) {
            assert_eq!(la.from, lb.from);
            assert_eq!(la.to, lb.to);
            assert_eq!(la.capacity.to_bits(), lb.capacity.to_bits());
            assert_eq!(la.flow.to_bits(), lb.flow.to_bits());
        }

        // And the scheduler weights derived from the flows.
        let ep_node = |e: Endpoint| match e {
            Endpoint::Coordinator => None,
            Endpoint::Node(id) => Some(id),
        };
        let sched_a = IwrrScheduler::from_topology(ta).unwrap();
        let sched_b = IwrrScheduler::from_topology(tb).unwrap();
        for link in ta.links() {
            let Some(to) = ep_node(link.to) else { continue };
            let (Some(wa), Some(wb)) = (
                sched_a.weight(ep_node(link.from), to),
                sched_b.weight(ep_node(link.from), to),
            ) else {
                continue;
            };
            assert_eq!(wa.to_bits(), wb.to_bits(), "IWRR weights must agree");
        }
    }
}

/// Equal-budget quality bound (paper §4.5): on the 24- and 42-node fixtures
/// the hierarchical plan must reach at least 95% of exact joint annealing's
/// normalised fleet throughput.
#[test]
fn hierarchical_quality_within_5_percent_of_joint_annealing() {
    let fixtures: [(ClusterSpec, usize); 2] = [
        (ClusterSpec::single_cluster_24(), 12),
        (ClusterSpec::high_heterogeneity_42(), 14),
    ];
    let models = [ModelConfig::llama_30b(), ModelConfig::llama_13b()];
    let budget = 3000;
    for (cluster, max_pod_size) in fixtures {
        let name = cluster.name.clone();
        let profiles = fleet_profiles(&cluster, &models);

        let (joint_placement, joint_flows) = FleetAnnealingPlanner::new(&profiles)
            .with_options(FleetAnnealingOptions {
                iterations: budget,
                ..Default::default()
            })
            .solve()
            .unwrap();
        let joint = objective(&profiles, &joint_flows);

        let plan = HierarchicalFleetPlanner::new(&profiles)
            .with_options(hierarchical_options(budget, 0, max_pod_size))
            .solve()
            .unwrap();
        let hierarchical = objective(&profiles, &plan.flows);

        assert!(
            hierarchical >= 0.95 * joint,
            "{name}: hierarchical objective {hierarchical:.4} fell below 95% of \
             joint {joint:.4}"
        );
        let _ = joint_placement;
    }
}

/// Builds a multi-region heterogeneous cluster from proptest-drawn sizes.
fn random_cluster(regions: &[(usize, usize, usize)]) -> ClusterSpec {
    let mut builder = ClusterBuilder::new("prop-hier")
        .intra_region(5_000.0, 1.0)
        .inter_region(200.0, 30.0);
    for (r, &(a100s, l4s, t4s)) in regions.iter().enumerate() {
        let region = Region(r as u32);
        builder = builder
            .add_nodes(GpuType::A100_40, a100s, 1, region)
            .add_nodes(GpuType::L4, l4s, 1, region)
            .add_nodes(GpuType::T4, t4s, 1, region);
    }
    builder.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every successful pod partition is a valid plan skeleton: pods cover
    /// the cluster exactly once, every model owns at least one pod, and
    /// every pod's VRAM can hold its model outright.
    #[test]
    fn pod_partitions_are_always_valid(
        regions in prop::collection::vec((1usize..3, 2usize..5, 2usize..6), 2..4),
        max_pod_size in 6usize..16,
    ) {
        let cluster = random_cluster(&regions);
        let models = [ModelConfig::llama_30b(), ModelConfig::llama_13b()];
        let profiles = fleet_profiles(&cluster, &models);
        let result = PodPartitioner::new(&profiles)
            .with_options(PodPartitionOptions { max_pod_size, ..Default::default() })
            .partition();
        let Ok(map) = result else { return Ok(()); };

        let mut seen = vec![false; cluster.num_nodes()];
        for pod in map.pods() {
            let m = pod.model.index();
            let capacity: usize = pod
                .nodes
                .iter()
                .map(|&id| profiles[m].node_profile(id).max_layers)
                .sum();
            prop_assert!(capacity >= profiles[m].model().num_layers);
            for &id in &pod.nodes {
                prop_assert!(!seen[id.index()], "node in two pods");
                seen[id.index()] = true;
                prop_assert_eq!(map.pod_of(id), Some(pod.id));
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        for m in 0..models.len() {
            prop_assert!(map.pods_for(ModelId(m)).count() >= 1);
        }
    }

    /// Every hierarchical plan that solves is fully valid: per-node VRAM
    /// limits respected ([`FleetPlacement::validate`]), every model's
    /// pipeline complete from layer 0 to its last layer (no orphan layers),
    /// and every model serving positive throughput.
    #[test]
    fn hierarchical_plans_are_always_valid(
        regions in prop::collection::vec((1usize..2, 2usize..4, 2usize..5), 2..4),
        seed in 0u64..1000,
    ) {
        let cluster = random_cluster(&regions);
        let models = [ModelConfig::llama_30b(), ModelConfig::llama_13b()];
        let profiles = fleet_profiles(&cluster, &models);
        let planner = HierarchicalFleetPlanner::new(&profiles).with_options(HierarchicalOptions {
            pods: PodPartitionOptions { max_pod_size: 8, ..Default::default() },
            annealing: FleetAnnealingOptions {
                iterations: 150,
                seed,
                ..Default::default()
            },
            threads: 2,
            ..Default::default()
        });
        let Ok(plan) = planner.solve() else { return Ok(()); };

        prop_assert!(plan.placement.validate(&profiles).is_ok());
        for (m, placement) in plan.placement.placements().iter().enumerate() {
            let num_layers = profiles[m].model().num_layers;
            prop_assert!(
                placement.has_complete_pipeline(num_layers),
                "model {} placement leaves orphan layers", m
            );
            prop_assert!(plan.flows[m] > 0.0);
        }
    }
}
