//! Multi-region serving through the front tier: three regional fleets behind
//! one [`MultiRegionSession`], with a mid-run degradation, a short outage and
//! a rebalancing round.
//!
//! Each region runs its own flow-planned fleet (here: simulator-backed); the
//! front tier routes by locality tag, prefix affinity and consistent
//! hashing, re-weights the ring as health changes, and prices every
//! cross-region affinity move over the slow inter-region link.
//!
//! ```text
//! cargo run --release --example multi_region_serving
//! ```

use helix::prelude::*;

/// One region's fleet: a small homogeneous cluster, swarm-placed (plenty of
/// replication, so the example plans in milliseconds), served by IWRR.
fn regional_session(region: Region) -> SimSession {
    let spec = ClusterBuilder::new(format!("{region}-fleet"))
        .intra_region(10_000.0, 1.0)
        .add_nodes(GpuType::A100_80, 4, 8, region)
        .build();
    let profile = ClusterProfile::analytic(spec, ModelConfig::llama_13b());
    let placement = helix::core::heuristics::swarm_placement(&profile).expect("swarm placement");
    let topology = Topology::plan(&profile, &placement, true).expect("regional topology");
    let scheduler = IwrrScheduler::from_topology(&topology).expect("iwrr");
    let sim = ClusterSimulator::new(&topology, Box::new(scheduler));
    SimSession::new(
        sim,
        SimulationConfig::offline(600.0)
            .with_warmup(0.0)
            .with_admission_limit(64),
    )
}

fn main() {
    let regions = [Region(0), Region(1), Region(2)];
    let mut tier = MultiRegionSession::with_options(
        regions.iter().map(|&r| (r, regional_session(r))).collect(),
        FrontTierOptions::for_model(&ModelConfig::llama_13b()),
    );
    println!(
        "front tier over {:?}: {} ring points, heartbeat interval {}s",
        tier.regions(),
        tier.ring().len(),
        tier.directory().options().heartbeat_interval_secs,
    );

    // 300 requests: a third carry a user-locality tag, half share one of
    // twelve prompt prefixes, the rest are placed by consistent hashing.
    let mut requests = Workload::azure_like(300, 7)
        .with_arrivals(ArrivalPattern::Offline, 3)
        .with_shared_prefixes(12, 64, 0.5)
        .requests()
        .to_vec();
    for request in requests.iter_mut().filter(|r| r.id % 3 == 0) {
        request.region = Some(regions[(request.id / 3 % 3) as usize]);
    }
    let total = requests.len() as u64;

    // First half of the traffic against a healthy fleet-of-fleets.
    for request in requests.iter().take(150) {
        tier.submit(*request);
    }

    // Sixty seconds in, every region heartbeats (a silent region would decay
    // Healthy → Degraded → Down on its own).  Then region 1 degrades (it
    // keeps a quarter of its ring weight) and region 2 goes down outright:
    // its buffered requests re-route, its prefix homes drain to the
    // survivors as priced transfers.
    for region in regions {
        tier.heartbeat(region, 60.0);
    }
    tier.mark_degraded(Region(1));
    tier.mark_down(Region(2));
    println!(
        "\nafter 60s: region1 {:?} (weight {:.2}), region2 {:?} — {} requests rerouted",
        tier.health(Region(1)),
        tier.ring().weight(Region(1)).unwrap_or(0.0),
        tier.health(Region(2)),
        tier.stats().reroutes,
    );

    // Second half lands while the fleet is sick; a rebalance round then
    // drains affinity away from the overloaded survivors.
    for request in requests.iter().skip(150) {
        tier.submit(*request);
    }
    let moves = tier.rebalance();
    println!("rebalance planned {} move(s)", moves.len());

    // Region 2 recovers before the run ends.
    for region in [Region(0), Region(1)] {
        tier.heartbeat(region, 120.0);
    }
    tier.mark_healthy(Region(2));

    let report = tier.finish().expect("the tier finishes");

    println!(
        "\n{:<10} {:>10} {:>10} {:>14}",
        "region", "routed", "completed", "decode tok"
    );
    for region in &report.regions {
        println!(
            "{:<10} {:>10} {:>10} {:>14}",
            region.region.to_string(),
            region.submitted,
            region.report.completed_requests(),
            region.report.decode_tokens(),
        );
    }
    let stats = &report.stats;
    println!(
        "\nrouting: {} locality, {} affinity ({} hits, {:.0}% hit rate), {} ring, {} reroutes",
        stats.locality_routes,
        stats.affinity_hits + stats.affinity_misses,
        stats.affinity_hits,
        stats.affinity_hit_rate() * 100.0,
        stats.ring_routes,
        stats.reroutes,
    );
    println!(
        "cross-region transfers: {} ({} homes drained, {:.1} MB, {:.2}s link time)",
        report.transfers.len(),
        stats.affinity_drains,
        report.transfers.iter().map(|t| t.bytes).sum::<f64>() / 1e6,
        report
            .transfers
            .iter()
            .map(|t| t.transfer_secs)
            .sum::<f64>(),
    );

    // The contract the front tier exists for: an outage mid-run loses
    // nothing, and prefix affinity keeps paying off across regions.
    assert_eq!(
        report.completed_requests(),
        total,
        "every request completes despite the outage"
    );
    assert_eq!(stats.total_routed(), total);
    assert!(
        stats.affinity_hit_rate() > 0.0,
        "prefix sharers reuse their home region"
    );
    assert!(stats.reroutes > 0, "the outage re-routed buffered work");
    println!(
        "\nzero requests lost; affinity hit rate {:.0}%",
        stats.affinity_hit_rate() * 100.0
    );
}
