//! Model placement: which layers each compute node holds.

pub mod heuristics;
pub mod hierarchical;
pub mod incremental;
pub mod milp;
pub mod partition;
pub mod refine;

use crate::error::HelixError;
use helix_cluster::{ClusterProfile, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A contiguous range of model layers `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerRange {
    /// First layer held (inclusive).
    pub start: usize,
    /// One past the last layer held (exclusive).
    pub end: usize,
}

impl LayerRange {
    /// Creates a range; `start` must be strictly less than `end`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(
            start < end,
            "empty or inverted layer range [{start}, {end})"
        );
        LayerRange { start, end }
    }

    /// Number of layers in the range.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// A range is never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `layer` falls inside the range.
    pub fn contains(&self, layer: usize) -> bool {
        layer >= self.start && layer < self.end
    }

    /// Whether two ranges share at least one layer.
    pub fn intersects(&self, other: LayerRange) -> bool {
        self.start < other.end && other.start < self.end
    }
}

impl fmt::Display for LayerRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// An assignment of a contiguous layer range to each compute node.
///
/// Nodes may be left unassigned (e.g. the separate-pipelines baseline leaves
/// nodes idle when their GPU type cannot hold a full model replica).
///
/// # Example
///
/// ```rust
/// use helix_cluster::NodeId;
/// use helix_core::{LayerRange, ModelPlacement};
///
/// let mut placement = ModelPlacement::empty(3);
/// placement.assign(NodeId(0), LayerRange::new(0, 2));
/// placement.assign(NodeId(1), LayerRange::new(2, 4));
/// placement.assign(NodeId(2), LayerRange::new(0, 4));
/// // Node 2 covers the whole model by itself, so the shortest pipeline has one stage.
/// assert_eq!(placement.pipeline_depth(4), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelPlacement {
    assignments: Vec<Option<LayerRange>>,
}

impl ModelPlacement {
    /// A placement for `num_nodes` nodes with nothing assigned yet.
    pub fn empty(num_nodes: usize) -> Self {
        ModelPlacement {
            assignments: vec![None; num_nodes],
        }
    }

    /// Number of nodes this placement covers (assigned or not).
    pub fn num_nodes(&self) -> usize {
        self.assignments.len()
    }

    /// Assigns `range` to `node`, replacing any previous assignment.
    ///
    /// # Panics
    ///
    /// Panics if the node index is out of range.
    pub fn assign(&mut self, node: NodeId, range: LayerRange) {
        self.assignments[node.index()] = Some(range);
    }

    /// Removes any assignment from `node`.
    pub fn clear(&mut self, node: NodeId) {
        self.assignments[node.index()] = None;
    }

    /// The range assigned to `node`, if any.
    pub fn range(&self, node: NodeId) -> Option<LayerRange> {
        self.assignments.get(node.index()).copied().flatten()
    }

    /// Iterates over `(node, range)` pairs for assigned nodes.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, LayerRange)> + '_ {
        self.assignments
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.map(|range| (NodeId(i), range)))
    }

    /// Number of nodes holding at least one layer.
    pub fn num_assigned(&self) -> usize {
        self.assignments.iter().filter(|r| r.is_some()).count()
    }

    /// Nodes that hold the given layer.
    pub fn holders_of(&self, layer: usize) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, r)| r.contains(layer))
            .map(|(n, _)| n)
            .collect()
    }

    /// Nodes holding the first layer of the model.
    pub fn entry_nodes(&self) -> Vec<NodeId> {
        self.holders_of(0)
    }

    /// Nodes holding the last layer of a model with `num_layers` layers.
    pub fn exit_nodes(&self, num_layers: usize) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, r)| r.end == num_layers)
            .map(|(n, _)| n)
            .collect()
    }

    /// Total layers held across all nodes (counts replicas).
    pub fn total_layers_held(&self) -> usize {
        self.iter().map(|(_, r)| r.len()).sum()
    }

    /// The minimum number of pipeline stages a request must traverse, i.e.
    /// the length of the shortest node chain from layer 0 to `num_layers`
    /// (the paper's "pipeline depth").  Returns `usize::MAX` if no complete
    /// chain exists.
    pub fn pipeline_depth(&self, num_layers: usize) -> usize {
        // BFS over layer positions: dist[p] = min #stages to have completed p layers.
        let mut dist = vec![usize::MAX; num_layers + 1];
        dist[0] = 0;
        // Relax in rounds; positions only move forward so a simple dynamic
        // program over positions in increasing order suffices.
        for p in 0..num_layers {
            if dist[p] == usize::MAX {
                continue;
            }
            for (_, r) in self.iter() {
                // With partial inference a node holding [s, e) can take a
                // request at position p if s <= p < e and advance it to e.
                if r.start <= p && p < r.end {
                    let next = r.end;
                    if dist[p] + 1 < dist[next] {
                        dist[next] = dist[p] + 1;
                    }
                }
            }
        }
        dist[num_layers]
    }

    /// Whether a request can be served end-to-end, i.e. a chain of nodes
    /// covers every layer in order.
    pub fn has_complete_pipeline(&self, num_layers: usize) -> bool {
        self.pipeline_depth(num_layers) != usize::MAX
    }

    /// Validates the placement against a profile: every assigned range must
    /// lie inside the model and fit the node's VRAM budget, and at least one
    /// complete pipeline must exist.
    ///
    /// # Errors
    ///
    /// Returns the specific [`HelixError`] describing the first violation
    /// found.
    pub fn validate(&self, profile: &ClusterProfile) -> Result<(), HelixError> {
        let num_layers = profile.model().num_layers;
        for (node, range) in self.iter() {
            if range.end > num_layers {
                return Err(HelixError::InvalidLayerRange {
                    node,
                    start: range.start,
                    end: range.end,
                    num_layers,
                });
            }
            // Placements may over-pack weights beyond the recommended 50/50
            // split (the separate-pipelines baseline does this for LLaMA 70B)
            // but never beyond what physically fits in VRAM.
            let max = profile.node_profile(node).max_layers_absolute;
            if range.len() > max {
                return Err(HelixError::ExceedsNodeCapacity {
                    node,
                    layers: range.len(),
                    max_layers: max,
                });
            }
        }
        if !self.has_complete_pipeline(num_layers) {
            return Err(HelixError::NoCompletePipeline);
        }
        Ok(())
    }

    /// Whether the directed connection `from → to` is valid under this
    /// placement (paper §4.3):
    /// with partial inference, `to` must hold the layer right after the last
    /// layer `from` computes and extend strictly beyond it
    /// (`s_to <= e_from < e_to`); without, `to` must start exactly where
    /// `from` ends.
    pub fn connection_valid(&self, from: NodeId, to: NodeId, partial_inference: bool) -> bool {
        let (Some(a), Some(b)) = (self.range(from), self.range(to)) else {
            return false;
        };
        if partial_inference {
            b.start <= a.end && a.end < b.end
        } else {
            a.end == b.start
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_cluster::{ClusterSpec, ModelConfig};

    fn tiny_placement() -> ModelPlacement {
        let mut p = ModelPlacement::empty(4);
        p.assign(NodeId(0), LayerRange::new(0, 3));
        p.assign(NodeId(1), LayerRange::new(3, 6));
        p.assign(NodeId(2), LayerRange::new(0, 6));
        p
    }

    #[test]
    fn layer_range_basics() {
        let r = LayerRange::new(2, 5);
        assert_eq!(r.len(), 3);
        assert!(r.contains(2) && r.contains(4) && !r.contains(5));
        assert_eq!(r.to_string(), "[2, 5)");
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty or inverted")]
    fn empty_layer_range_panics() {
        let _ = LayerRange::new(3, 3);
    }

    #[test]
    fn placement_queries() {
        let p = tiny_placement();
        assert_eq!(p.num_nodes(), 4);
        assert_eq!(p.num_assigned(), 3);
        assert_eq!(p.entry_nodes(), vec![NodeId(0), NodeId(2)]);
        assert_eq!(p.exit_nodes(6), vec![NodeId(1), NodeId(2)]);
        assert_eq!(p.holders_of(4), vec![NodeId(1), NodeId(2)]);
        assert_eq!(p.total_layers_held(), 12);
        assert_eq!(p.range(NodeId(3)), None);
    }

    #[test]
    fn pipeline_depth_finds_shortest_chain() {
        let p = tiny_placement();
        // Node 2 covers the whole model in one stage.
        assert_eq!(p.pipeline_depth(6), 1);
        let mut two_stage = ModelPlacement::empty(2);
        two_stage.assign(NodeId(0), LayerRange::new(0, 3));
        two_stage.assign(NodeId(1), LayerRange::new(3, 6));
        assert_eq!(two_stage.pipeline_depth(6), 2);
        let mut broken = ModelPlacement::empty(2);
        broken.assign(NodeId(0), LayerRange::new(0, 2));
        broken.assign(NodeId(1), LayerRange::new(3, 6));
        assert_eq!(broken.pipeline_depth(6), usize::MAX);
        assert!(!broken.has_complete_pipeline(6));
    }

    #[test]
    fn connection_validity_partial_and_strict() {
        let mut p = ModelPlacement::empty(3);
        p.assign(NodeId(0), LayerRange::new(0, 4));
        p.assign(NodeId(1), LayerRange::new(4, 8));
        p.assign(NodeId(2), LayerRange::new(2, 8));
        // Exact continuation is valid under both modes.
        assert!(p.connection_valid(NodeId(0), NodeId(1), false));
        assert!(p.connection_valid(NodeId(0), NodeId(1), true));
        // Overlapping continuation (0 ends at 4, 2 holds [2,8)) needs partial inference.
        assert!(!p.connection_valid(NodeId(0), NodeId(2), false));
        assert!(p.connection_valid(NodeId(0), NodeId(2), true));
        // Going backwards is never valid.
        assert!(!p.connection_valid(NodeId(1), NodeId(0), true));
        // Unassigned endpoints are never valid.
        let mut q = ModelPlacement::empty(2);
        q.assign(NodeId(0), LayerRange::new(0, 4));
        assert!(!q.connection_valid(NodeId(0), NodeId(1), true));
    }

    #[test]
    fn validate_against_profile() {
        let profile =
            ClusterProfile::analytic(ClusterSpec::solver_quality_10(), ModelConfig::llama_30b());
        let num_layers = profile.model().num_layers;
        let n = profile.cluster().num_nodes();
        // A valid chain placement across all nodes.
        let mut p = ModelPlacement::empty(n);
        let mut start = 0;
        for id in profile.cluster().node_ids() {
            let take = profile.node_profile(id).max_layers.min(num_layers - start);
            if take == 0 {
                break;
            }
            p.assign(id, LayerRange::new(start, start + take));
            start += take;
        }
        assert!(start >= num_layers, "cluster should hold the model");
        assert!(p.validate(&profile).is_ok());

        // Out-of-range layers are rejected.
        let mut bad = p.clone();
        bad.assign(NodeId(0), LayerRange::new(0, num_layers + 1));
        assert!(matches!(
            bad.validate(&profile),
            Err(HelixError::InvalidLayerRange { .. })
        ));

        // Exceeding VRAM is rejected.
        let mut fat = p.clone();
        let max0 = profile.node_profile(NodeId(0)).max_layers_absolute;
        fat.assign(NodeId(0), LayerRange::new(0, max0 + 1));
        assert!(matches!(
            fat.validate(&profile),
            Err(HelixError::ExceedsNodeCapacity { .. })
        ));

        // Removing coverage of some layers breaks the pipeline.
        let mut gap = p.clone();
        gap.clear(NodeId(0));
        assert!(matches!(
            gap.validate(&profile),
            Err(HelixError::NoCompletePipeline)
        ));
    }
}
