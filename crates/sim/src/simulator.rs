//! The cluster simulator: coordinator loop, routing, metrics collection —
//! and the simulated half of the online re-planning loop (perturbation
//! events, windowed observation, policy-driven re-plans with drain/hand-over).

use crate::engine::NodeEngine;
use crate::event::{Event, EventQueue, PerturbationEvent, Phase, RequestState, SimTime, WorkItem};
use crate::metrics::{IntervalMetrics, LatencyStats, LinkStats, Metrics};
use crate::network::LinkQueue;
use helix_cluster::{ModelId, NodeId, PrefixId, TOKEN_WIRE_BYTES};
use helix_core::exec_model::DEFAULT_TOKENS_PER_PAGE;
use helix_core::{
    select_standby, ClusterState, EngineCounters, FailoverRecord, FleetScheduler, FleetTopology,
    IwrrScheduler, KvTransferModel, KvTransferRecord, LayerRange, ModelPlacement, NodeDirectory,
    NodeObservations, ObservationWindows, PlacementDelta, PrefixRoute, PrefixRouter, PrefixStats,
    PrefixWork, ReplanPolicy, ReplanReason, ReplanRecord, ReplicaTracker, ReplicationPolicy,
    ReplicationStats, RequestPipeline, Scheduler, Topology,
};
use helix_workload::{Request, RequestId, Workload};
use std::collections::{HashMap, HashSet, VecDeque};

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationConfig {
    /// Warm-up period excluded from measurements (seconds).
    pub warmup_secs: f64,
    /// Measurement window length (seconds).
    pub duration_secs: f64,
    /// Maximum number of requests concurrently admitted into the cluster;
    /// further arrivals wait in the coordinator backlog.  This is how the
    /// offline setting saturates the cluster without infinite queues.
    pub admission_limit: usize,
    /// Safety cap on processed events.
    pub max_events: u64,
}

impl SimulationConfig {
    /// Offline serving (paper: 1 minute warm-up, 10 minute measurement; here
    /// parameterised): all requests are available immediately and admission
    /// control keeps the cluster saturated.
    pub fn offline(duration_secs: f64) -> Self {
        SimulationConfig {
            warmup_secs: duration_secs * 0.1,
            duration_secs,
            admission_limit: 512,
            max_events: 200_000_000,
        }
    }

    /// Online serving: requests arrive over time; admission control is
    /// effectively unlimited.
    pub fn online(duration_secs: f64) -> Self {
        SimulationConfig {
            warmup_secs: duration_secs * 0.05,
            duration_secs,
            admission_limit: usize::MAX,
            max_events: 200_000_000,
        }
    }

    /// Overrides the warm-up period.
    pub fn with_warmup(mut self, warmup_secs: f64) -> Self {
        self.warmup_secs = warmup_secs;
        self
    }

    /// Overrides the admission limit.
    pub fn with_admission_limit(mut self, limit: usize) -> Self {
        self.admission_limit = limit;
        self
    }
}

/// Snapshot of cluster state handed to the scheduler.
struct StateSnapshot {
    queue_len: HashMap<NodeId, usize>,
    throughput: HashMap<NodeId, f64>,
    kv_used: HashMap<NodeId, f64>,
    kv_capacity: HashMap<NodeId, f64>,
}

impl ClusterState for StateSnapshot {
    fn queue_len(&self, node: NodeId) -> usize {
        self.queue_len.get(&node).copied().unwrap_or(0)
    }
    fn recent_throughput(&self, node: NodeId) -> f64 {
        self.throughput.get(&node).copied().unwrap_or(0.0)
    }
    fn kv_used_tokens(&self, node: NodeId) -> f64 {
        self.kv_used.get(&node).copied().unwrap_or(0.0)
    }
    fn kv_capacity_tokens(&self, node: NodeId) -> f64 {
        self.kv_capacity
            .get(&node)
            .copied()
            .unwrap_or(f64::INFINITY)
    }
}

/// Per-model metrics of a fleet simulation, alongside the combined view.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetMetrics {
    /// Metrics over all models together (per-model link contention included).
    pub overall: Metrics,
    /// Metrics of each model's own requests, indexed by [`ModelId`].  Link
    /// statistics live only in `overall` — links are shared by the fleet.
    pub per_model: Vec<Metrics>,
}

/// One request finishing in a simulation run — the simulator's analogue of
/// the runtime's per-request outcome, so cross-surface suites can compare
/// *when* things completed (e.g. relative to a KV hand-over window), not
/// just how many did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletionRecord {
    /// The completed request.
    pub id: RequestId,
    /// The model it ran against.
    pub model: ModelId,
    /// Virtual time its final output token reached the coordinator.
    pub at: SimTime,
}

/// What a promoted request resumes with after its primary failed: the
/// replica pipeline it re-routes onto and the progress that survived.  The
/// coordinator re-admits the request under a new epoch, seeds the replicated
/// tokens as KV residency on the promoted pipeline, and recomputes only the
/// tokens decoded since the last replicated chunk — the bounded-loss
/// contract.  Metrics continuity rides along: arrival and first-token times
/// belong to the original admission, and already-delivered tokens are not
/// re-emitted.
#[derive(Debug, Clone)]
struct ResumeCredit {
    /// The pipeline with failed stage nodes substituted by their standbys.
    pipeline: RequestPipeline,
    /// Sequence tokens (prompt + decode) durable on the standbys.
    resume_tokens: usize,
    /// Output tokens already delivered to the coordinator.
    generated: usize,
    /// Original admission's arrival time.
    arrival_time: SimTime,
    /// Original admission's first-token time, if the prompt had finished.
    first_token_time: Option<SimTime>,
}

/// The full result of a [`ClusterSimulator::run_with_events`] run: end-of-run
/// metrics plus the windowed interval metrics and the re-plan log.
#[derive(Debug, Clone)]
pub struct FleetRunReport {
    /// End-of-run metrics (identical shape to [`ClusterSimulator::run_per_model`]).
    pub metrics: FleetMetrics,
    /// Windowed per-model decode progress, one entry per observation window.
    pub intervals: Vec<IntervalMetrics>,
    /// Every re-plan the run applied, in order.
    pub replans: Vec<ReplanRecord>,
    /// Every KV hand-over a partial-layer migration performed, in completion
    /// order.
    pub kv_transfers: Vec<KvTransferRecord>,
    /// Every in-window request completion, in completion order (the count
    /// matches `metrics.overall.completed_requests`).
    pub completions: Vec<CompletionRecord>,
    /// Prefix-sharing counters summed over all models (all zeros when no
    /// request carries a prefix tag).
    pub prefix: PrefixStats,
    /// Every fail-over the run handled (one record per failure event), with
    /// the promoted/aborted request sets and the recompute-token accounting.
    pub failovers: Vec<FailoverRecord>,
    /// Replica traffic the run's replication policy trickled to standbys.
    pub replication: ReplicationStats,
}

/// Discrete-event simulator of a Helix-style serving cluster.
///
/// One simulator serves one model (via [`ClusterSimulator::new`]) or a whole
/// multi-model fleet (via [`ClusterSimulator::new_fleet`]): every (node,
/// model) pair gets its own batching engine with the capacity-split profile
/// the fleet planner assigned it, while network links are shared across
/// models, so cross-model link contention emerges naturally.
///
/// The simulator **owns** its [`FleetTopology`], because
/// [`ClusterSimulator::run_with_events`] closes the loop mid-run: engines are
/// observed over windows, a [`ReplanPolicy`] decides when the observed
/// throughput gap warrants action, and [`FleetTopology::replan`] re-derives
/// the plan — after which schedulers are swapped **drain-then-switch**:
/// in-flight pipelines keep routing over the engines they were assigned,
/// while new requests follow the re-planned IWRR weights.  The plain
/// [`ClusterSimulator::run`] / [`ClusterSimulator::run_per_model`] paths
/// schedule no observation ticks and are bit-identical to the static
/// pipeline.
///
/// To drive the simulator through the same submit → drain → finish surface
/// as the threaded runtime's serving session, wrap it in a
/// [`SimSession`](crate::SimSession).
///
/// See the [crate-level documentation](crate) for an end-to-end example.
pub struct ClusterSimulator {
    fleet: FleetTopology,
    schedulers: Vec<Box<dyn Scheduler>>,
    /// Per-model cache-aware routers layered over the base schedulers.
    prefix_routers: Vec<PrefixRouter>,
    engines: HashMap<(NodeId, ModelId), NodeEngine>,
    links: HashMap<(Option<NodeId>, Option<NodeId>), LinkQueue>,
    /// Active slowdown perturbations by node (applied to engines created by
    /// later re-plans too).
    slowdowns: HashMap<NodeId, f64>,
    /// Nodes that failed mid-run.
    failed: HashSet<NodeId>,
    /// The fleet-wide KV replication policy (disabled by default: RF 1,
    /// every failure falls back to abort-and-readmit).
    replication: ReplicationPolicy,
    /// Per-request replication progress toward the standby tenancies.
    replica_tracker: ReplicaTracker,
    /// Fail-over log of the current run, drained into its report.
    failovers: Vec<FailoverRecord>,
    /// Promotion credit of requests awaiting re-admission onto their
    /// replica pipelines (consumed by `admit_request`).
    resume: HashMap<RequestId, ResumeCredit>,
    /// Node-level health membership, driven by observation-tick heartbeats
    /// and failure/straggler overrides.
    node_health: NodeDirectory,
    /// Per-model forwarding of migrated prefix homes: `(prefix, old node)` →
    /// the node now holding the refcounted entry.  Releases follow the chain
    /// so a sharer admitted before a migration still balances its reference
    /// after the entry moved.
    prefix_forwards: Vec<HashMap<(PrefixId, NodeId), NodeId>>,
    /// Layer ranges captured when a flapping node drops, handed back to the
    /// planner when it rejoins.
    rejoin_ranges: HashMap<NodeId, Vec<(ModelId, LayerRange)>>,
}

impl ClusterSimulator {
    /// Creates a simulator for one (topology, scheduler) pair.  Node
    /// engines, layer counts and KV capacities all come from the shared
    /// planning artifact, so the simulator sees exactly the cluster the
    /// planner evaluated.
    pub fn new(topology: &Topology, scheduler: Box<dyn Scheduler>) -> Self {
        Self::from_parts(FleetTopology::single(topology.clone()), vec![scheduler])
    }

    /// Creates a fleet simulator: one lane per model of the fleet topology,
    /// with the matching per-model schedulers.
    ///
    /// # Panics
    ///
    /// Panics if the scheduler count does not match the fleet's model count.
    pub fn new_fleet(fleet: &FleetTopology, schedulers: FleetScheduler) -> Self {
        let schedulers = schedulers.into_parts();
        assert_eq!(
            fleet.num_models(),
            schedulers.len(),
            "one scheduler per model"
        );
        Self::from_parts(fleet.clone(), schedulers)
    }

    fn from_parts(fleet: FleetTopology, schedulers: Vec<Box<dyn Scheduler>>) -> Self {
        let mut engines = HashMap::new();
        for (m, topology) in fleet.topologies().iter().enumerate() {
            // Engines run at the analytic contention split (identical to the
            // planning profile when the fleet was planned without
            // observations); measured speed factors never slow an engine —
            // they re-price planning against a degradation the engine's own
            // slowdown state delivers.
            let profile = fleet.contention_profile(ModelId(m));
            for n in topology.nodes() {
                let engine = NodeEngine::new(
                    profile.node_profile(n.node),
                    n.layers.len(),
                    n.kv_capacity_tokens,
                );
                engines.insert((n.node, ModelId(m)), engine);
            }
        }
        let num_models = schedulers.len();
        let prefix_routers = (0..num_models).map(|_| PrefixRouter::new()).collect();
        ClusterSimulator {
            fleet,
            schedulers,
            prefix_routers,
            engines,
            links: HashMap::new(),
            slowdowns: HashMap::new(),
            failed: HashSet::new(),
            replication: ReplicationPolicy::disabled(),
            replica_tracker: ReplicaTracker::new(),
            failovers: Vec::new(),
            resume: HashMap::new(),
            node_health: NodeDirectory::default(),
            prefix_forwards: vec![HashMap::new(); num_models],
            rejoin_ranges: HashMap::new(),
        }
    }

    /// The fleet plan the simulator currently serves (re-plans update it).
    pub fn fleet(&self) -> &FleetTopology {
        &self.fleet
    }

    /// Sets the fleet-wide KV replication policy.  Takes effect for requests
    /// admitted afterwards; [`ReplicationPolicy::disabled`] (the default)
    /// reproduces pure abort-and-readmit recovery.
    pub fn set_replication(&mut self, policy: ReplicationPolicy) {
        self.replication = policy;
    }

    /// The current replication policy.
    pub fn replication(&self) -> ReplicationPolicy {
        self.replication
    }

    /// The node-level health directory (heartbeats ride the observation
    /// ticks; failures and stragglers are forced overrides).
    pub fn node_health(&self) -> &NodeDirectory {
        &self.node_health
    }

    /// The topology the simulator runs for one model.
    pub fn model_topology(&self, model: ModelId) -> Option<&Topology> {
        self.fleet.model(model)
    }

    /// Number of models the simulator serves.
    pub fn num_models(&self) -> usize {
        self.schedulers.len()
    }

    /// The topology the simulator is running (the first model's lane).
    pub fn topology(&self) -> &Topology {
        &self.fleet.topologies()[0]
    }

    /// The placement the simulator is running for one model.
    pub fn model_placement(&self, model: ModelId) -> Option<&ModelPlacement> {
        self.fleet.model(model).map(Topology::placement)
    }

    /// The placement the simulator is running (the first model's lane).
    pub fn placement(&self) -> &ModelPlacement {
        self.fleet.topologies()[0].placement()
    }

    /// Runs the simulation of `workload` and returns the combined metrics.
    pub fn run(&mut self, workload: &Workload, config: SimulationConfig) -> Metrics {
        self.run_per_model(workload, config).overall
    }

    /// Runs the simulation and reports both combined and per-model metrics.
    ///
    /// # Panics
    ///
    /// Panics if a request targets a model the fleet does not serve — the
    /// same workload fails loudly on the runtime surface too
    /// (`HelixError::UnknownModel`), so the two surfaces stay comparable.
    pub fn run_per_model(&mut self, workload: &Workload, config: SimulationConfig) -> FleetMetrics {
        self.run_loop(workload, config, &[], None).metrics
    }

    /// Runs the simulation with scripted mid-run perturbations and (when a
    /// policy is given) the closed re-planning loop: every
    /// `check_interval_secs` the engines are measured into
    /// [`NodeObservations`], interval metrics are emitted, and the policy
    /// decides whether the observed-vs-planned gap warrants a
    /// [`FleetTopology::replan`].  Node failures always re-plan immediately
    /// (removal delta), aborting and re-admitting the pipelines they strand.
    ///
    /// With no events and no policy this is exactly
    /// [`ClusterSimulator::run_per_model`] (no observation ticks are
    /// scheduled, so event timing is bit-identical).
    pub fn run_with_events(
        &mut self,
        workload: &Workload,
        config: SimulationConfig,
        events: &[PerturbationEvent],
        policy: Option<ReplanPolicy>,
    ) -> FleetRunReport {
        self.run_loop(workload, config, events, policy)
    }

    fn run_loop(
        &mut self,
        workload: &Workload,
        config: SimulationConfig,
        events: &[PerturbationEvent],
        policy: Option<ReplanPolicy>,
    ) -> FleetRunReport {
        let num_models = self.schedulers.len();
        let mut queue = EventQueue::new();
        // Each run's timeline restarts at zero; links and engines keep their
        // cumulative counters but must not stay "busy" (or frozen) into the
        // new epoch.
        for link in self.links.values_mut() {
            link.rebase_epoch();
        }
        for engine in self.engines.values_mut() {
            engine.rebase_epoch();
        }
        // Every engine node joins the health directory (re-registration
        // across drains refreshes the heartbeat but keeps forced overrides,
        // so a node failed in an earlier drain stays Down).
        for &(node, _) in self.engines.keys() {
            self.node_health.register(node, 0.0);
        }
        let mut specs: HashMap<RequestId, Request> = workload.iter().map(|r| (r.id, *r)).collect();

        // Arrival-rate shifts re-time the arrival process: gaps after the
        // shift point shrink by the rate factor.  Shifts are applied in
        // effect-time order, each in the already-shifted timeline.
        let mut shifts: Vec<(SimTime, f64)> = events
            .iter()
            .filter_map(|e| match *e {
                PerturbationEvent::ArrivalRateShift { at, factor } => Some((at, factor)),
                _ => None,
            })
            .collect();
        shifts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        if !shifts.is_empty() {
            for spec in specs.values_mut() {
                let mut t = spec.arrival_time;
                for &(at, factor) in &shifts {
                    if t > at && factor > 0.0 {
                        t = at + (t - at) / factor;
                    }
                }
                spec.arrival_time = t;
            }
        }

        for r in workload.iter() {
            assert!(
                r.model.index() < num_models,
                "request {} targets {} but the fleet serves {num_models} model(s)",
                r.id,
                r.model,
            );
            let arrival = specs[&r.id].arrival_time;
            queue.push(arrival, Event::RequestArrival { request: r.id });
        }
        let end_time = config.warmup_secs + config.duration_secs;
        for e in events {
            match e {
                PerturbationEvent::ArrivalRateShift { .. } => {} // applied above
                other => queue.push(other.at(), Event::Perturbation(*other)),
            }
        }
        // Observation ticks exist only for perturbed / policy-driven runs, so
        // the static serve path schedules exactly the events it always did.
        let ticks_enabled = policy.is_some() || !events.is_empty();
        let tick_interval = policy
            .map(|p| p.check_interval_secs)
            .unwrap_or(10.0)
            .max(1e-3);
        if ticks_enabled && tick_interval <= end_time {
            queue.push(tick_interval, Event::ObservationTick);
        }

        let mut states: HashMap<RequestId, RequestState> = HashMap::new();
        let mut backlog: VecDeque<RequestId> = VecDeque::new();
        let mut active = 0usize;

        // Per-model measurement accumulators.
        let mut decode_tokens: Vec<u64> = vec![0; num_models];
        let mut completed: Vec<u64> = vec![0; num_models];
        let mut prompt_latencies: Vec<Vec<f64>> = vec![Vec::new(); num_models];
        let mut decode_gaps: Vec<Vec<f64>> = vec![Vec::new(); num_models];
        // Warmup-independent totals backing the windowed interval metrics.
        let mut total_decode_tokens: Vec<u64> = vec![0; num_models];
        let mut processed_events: u64 = 0;
        let mut now: SimTime = 0.0;

        // Feedback-loop state.
        let mut intervals: Vec<IntervalMetrics> = Vec::new();
        let mut replans: Vec<ReplanRecord> = Vec::new();
        let mut kv_transfers: Vec<KvTransferRecord> = Vec::new();
        let mut completions: Vec<CompletionRecord> = Vec::new();
        let mut last_tick: SimTime = 0.0;
        let mut last_replan: Option<SimTime> = None;
        let mut interval_base: Vec<u64> = vec![0; num_models];
        let mut windows = ObservationWindows::new();
        // Admission epoch per request: bumped when a node failure aborts an
        // in-flight pipeline, so stale work from the old incarnation is
        // dropped instead of corrupting the re-admitted one.
        let mut epochs: HashMap<RequestId, u64> = HashMap::new();

        while let Some((time, event)) = queue.pop() {
            if time > end_time {
                break;
            }
            // Bookkeeping events don't advance the measured clock: the
            // no-perturbation path must report bit-identical metrics.
            if !matches!(
                event,
                Event::ObservationTick | Event::Perturbation(_) | Event::EngineThaw { .. }
            ) {
                now = time;
            }
            processed_events += 1;
            if processed_events > config.max_events {
                break;
            }
            match event {
                Event::RequestArrival { request } => {
                    if active >= config.admission_limit {
                        backlog.push_back(request);
                        continue;
                    }
                    self.admit_request(
                        request,
                        &specs,
                        &epochs,
                        &mut states,
                        &mut queue,
                        now,
                        &mut active,
                    );
                }
                Event::NodeArrival { node, item } => {
                    if states
                        .get(&item.request)
                        .is_none_or(|s| s.epoch != item.epoch)
                    {
                        // The request (incarnation) was aborted — e.g. its
                        // pipeline crossed a failed node; drop the stale work.
                        continue;
                    }
                    let model = item.model;
                    if let Some(engine) = self.engines.get_mut(&(node, model)) {
                        engine.enqueue(item);
                        if let Some(done) = engine.try_start_batch(now) {
                            queue.push(done, Event::BatchComplete { node, model });
                        }
                    }
                }
                Event::BatchComplete { node, model } => {
                    let items = self
                        .engines
                        .get_mut(&(node, model))
                        .expect("batch completed on unknown engine")
                        .complete_batch();
                    for item in items {
                        self.route_onward(node, item, &states, &mut queue, now);
                    }
                    if let Some(engine) = self.engines.get_mut(&(node, model)) {
                        if let Some(done) = engine.try_start_batch(now) {
                            queue.push(done, Event::BatchComplete { node, model });
                        }
                    }
                }
                Event::TokenAtCoordinator {
                    request,
                    epoch,
                    phase: _,
                } => {
                    let Some(state) = states.get_mut(&request) else {
                        continue;
                    };
                    if state.epoch != epoch {
                        // A token of an aborted incarnation; ignore.
                        continue;
                    }
                    let model = state.pipeline.model;
                    let m = model.index();
                    let was_first = state.first_token_time.is_none();
                    state.generated += 1;
                    let in_window = now >= config.warmup_secs;
                    total_decode_tokens[m] += 1;
                    if in_window {
                        decode_tokens[m] += 1;
                    }
                    if state.first_token_time.is_none() {
                        state.first_token_time = Some(now);
                        if in_window {
                            prompt_latencies[m].push(now - state.arrival_time);
                        }
                    } else if let Some(last) = state.last_token_time {
                        let gap = now - last;
                        state.decode_gaps.push(gap);
                        if in_window {
                            decode_gaps[m].push(gap);
                        }
                    }
                    state.last_token_time = Some(now);
                    if state.generated >= state.output_tokens {
                        state.finish_time = Some(now);
                        if in_window {
                            completed[m] += 1;
                            completions.push(CompletionRecord {
                                id: request,
                                model,
                                at: now,
                            });
                        }
                        // Release the request's KV on *every* engine of its
                        // model, not only its pipeline nodes: migrations seed
                        // destination engines and replication seeds standbys,
                        // and all those copies are keyed by this request id.
                        for (&(_, em), engine) in self.engines.iter_mut() {
                            if em == model {
                                engine.release_request(request);
                            }
                        }
                        // Prefix references release where the refcounted
                        // entry actually lives now — a migration may have
                        // moved it off the pipeline node (see
                        // `release_prefix_at`).
                        if let Some(p) = state.prefix {
                            for node in state.pipeline.nodes() {
                                self.release_prefix_at(model, node, p.id);
                            }
                            self.prefix_routers[model.index()].release(p.id);
                        }
                        self.replica_tracker.finish(request);
                        active = active.saturating_sub(1);
                        if let Some(next) = backlog.pop_front() {
                            self.admit_request(
                                next,
                                &specs,
                                &epochs,
                                &mut states,
                                &mut queue,
                                now,
                                &mut active,
                            );
                        }
                    } else {
                        // Trickle KV replication as decode proceeds: prompt
                        // completion (the first token) force-replicates
                        // everything cached so far, then whole chunks ship at
                        // every chunk boundary, per stage, over the
                        // primary→standby links like any other transfer.
                        if self.replica_tracker.is_tracked(request) {
                            let total = state.prompt_tokens + state.generated;
                            let stage_layers: Vec<usize> = state
                                .pipeline
                                .stages
                                .iter()
                                .map(|s| s.layers.len())
                                .collect();
                            self.trickle_replication(
                                request,
                                model,
                                total,
                                &stage_layers,
                                was_first,
                                now,
                            );
                        }
                        // Schedule the next decode iteration over the same pipeline.
                        let first = state.pipeline.stages[0];
                        let arrival =
                            self.link_transfer(None, Some(first.node), now, TOKEN_WIRE_BYTES);
                        queue.push(
                            arrival,
                            Event::NodeArrival {
                                node: first.node,
                                item: WorkItem {
                                    request,
                                    epoch,
                                    model,
                                    phase: Phase::Decode,
                                    tokens: 1,
                                    layers: first.layers,
                                    stage_index: 0,
                                    prefix: None,
                                },
                            },
                        );
                    }
                }
                Event::MeasurementEnd => {}
                Event::Perturbation(perturbation) => {
                    self.apply_perturbation(
                        perturbation,
                        time,
                        &mut states,
                        &mut epochs,
                        &mut queue,
                        &mut active,
                        &mut replans,
                        &mut kv_transfers,
                    );
                }
                Event::EngineThaw { node, model } => {
                    // The KV hand-over finished; work that queued up during
                    // the freeze starts batching again.
                    if let Some(engine) = self.engines.get_mut(&(node, model)) {
                        if let Some(done) = engine.try_start_batch(time) {
                            queue.push(done, Event::BatchComplete { node, model });
                        }
                    }
                }
                Event::ObservationTick => {
                    // 1. Close the interval window.
                    intervals.push(IntervalMetrics {
                        start: last_tick,
                        end: time,
                        decode_tokens: total_decode_tokens
                            .iter()
                            .zip(&interval_base)
                            .map(|(t, b)| t - b)
                            .collect(),
                    });
                    interval_base.clone_from(&total_decode_tokens);
                    // Live engines heartbeat the node directory; a node that
                    // stops ticking (failed, partitioned) decays Healthy →
                    // Degraded → Down on the membership clock.
                    for (&(node, _), engine) in &self.engines {
                        if !engine.is_failed() {
                            self.node_health.heartbeat(node, time);
                        }
                    }
                    // 2. Measure the engines.
                    let window = (time - last_tick).max(1e-9);
                    let observed = self.collect_observations(window, &mut windows);
                    // 3. Consult the policy: measured speeds vs the speeds
                    // the current plan already priced in.
                    if let Some(policy) = policy {
                        if let Some((node, model, speed)) = policy.should_replan(
                            &observed,
                            self.fleet.observations(),
                            time,
                            last_replan,
                        ) {
                            let applied = self.apply_replan(
                                &PlacementDelta::new(),
                                &observed,
                                time,
                                ReplanReason::ThroughputGap { node, model, speed },
                                &mut queue,
                                &mut replans,
                                &mut kv_transfers,
                            );
                            if applied {
                                last_replan = Some(time);
                            }
                        }
                    }
                    last_tick = time;
                    // 4. Schedule the next window.
                    let next = time + tick_interval;
                    if next <= end_time {
                        queue.push(next, Event::ObservationTick);
                    }
                }
            }
        }

        let measured = (now.min(end_time) - config.warmup_secs).max(1e-9);
        // Overall utilisation merges each node's per-model engines.
        let mut node_busy: HashMap<NodeId, f64> = HashMap::new();
        for (&(node, _), engine) in &self.engines {
            *node_busy.entry(node).or_insert(0.0) += engine.busy_seconds;
        }
        let node_utilization: HashMap<NodeId, f64> = node_busy
            .into_iter()
            .map(|(node, busy)| (node, (busy / now.max(1e-9)).min(1.0)))
            .collect();
        let mut link_stats: Vec<LinkStats> = self
            .links
            .iter()
            .map(|(&(from, to), link)| LinkStats {
                from,
                to,
                transfers: link.transfers,
                bytes: link.bytes_transferred,
                mean_queue_delay: link.mean_queue_delay(),
                max_queue_delay: link.max_queue_delay,
            })
            .collect();
        link_stats.sort_by(|a, b| {
            b.mean_queue_delay
                .partial_cmp(&a.mean_queue_delay)
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let per_model: Vec<Metrics> = (0..num_models)
            .map(|m| {
                let utilization: HashMap<NodeId, f64> = self
                    .engines
                    .iter()
                    .filter(|((_, model), _)| model.index() == m)
                    .map(|(&(node, _), engine)| {
                        (node, (engine.busy_seconds / now.max(1e-9)).min(1.0))
                    })
                    .collect();
                Metrics {
                    measured_seconds: measured,
                    decode_tokens: decode_tokens[m],
                    completed_requests: completed[m],
                    prompt_latency: LatencyStats::from_samples(&prompt_latencies[m]),
                    decode_latency: LatencyStats::from_samples(&decode_gaps[m]),
                    node_utilization: utilization,
                    // Links are shared across the fleet; see `overall`.
                    link_stats: Vec::new(),
                }
            })
            .collect();
        let overall = Metrics {
            measured_seconds: measured,
            decode_tokens: decode_tokens.iter().sum(),
            completed_requests: completed.iter().sum(),
            prompt_latency: LatencyStats::from_samples(&prompt_latencies.concat()),
            decode_latency: LatencyStats::from_samples(&decode_gaps.concat()),
            node_utilization,
            link_stats,
        };
        // Per-run prefix counters: taken (not copied) so back-to-back runs
        // on one simulator — e.g. session drains — each report their own.
        let mut prefix = PrefixStats::default();
        for router in &mut self.prefix_routers {
            prefix.merge(&router.take_stats());
        }
        FleetRunReport {
            metrics: FleetMetrics { overall, per_model },
            intervals,
            replans,
            kv_transfers,
            completions,
            prefix,
            failovers: std::mem::take(&mut self.failovers),
            replication: self.replica_tracker.take_stats(),
        }
    }

    /// Measures every engine's window deltas into a [`NodeObservations`]
    /// snapshot via the shared [`ObservationWindows`] accumulator (the same
    /// measurement math the runtime coordinator runs), against the speeds
    /// the current plan already priced in.
    fn collect_observations(
        &self,
        window: f64,
        windows: &mut ObservationWindows,
    ) -> NodeObservations {
        let mut observed = NodeObservations::new();
        for (&(node, model), engine) in &self.engines {
            windows.measure(
                &mut observed,
                node,
                model,
                EngineCounters {
                    nominal_busy_secs: engine.nominal_busy_seconds,
                    busy_secs: engine.busy_seconds,
                    tokens: engine.tokens_processed,
                },
                window,
                self.fleet.observations(),
            );
        }
        observed
    }

    #[allow(clippy::too_many_arguments)]
    fn apply_perturbation(
        &mut self,
        perturbation: PerturbationEvent,
        time: SimTime,
        states: &mut HashMap<RequestId, RequestState>,
        epochs: &mut HashMap<RequestId, u64>,
        queue: &mut EventQueue,
        active: &mut usize,
        replans: &mut Vec<ReplanRecord>,
        kv_transfers: &mut Vec<KvTransferRecord>,
    ) {
        match perturbation {
            PerturbationEvent::NodeSlowdown { node, factor, .. } => {
                self.slowdowns.insert(node, factor);
                for ((n, _), engine) in self.engines.iter_mut() {
                    if *n == node {
                        engine.set_slowdown(factor);
                    }
                }
                if factor > 1.0 {
                    self.node_health.mark_degraded(node);
                }
            }
            PerturbationEvent::NodeRecovery { node, .. } => {
                self.slowdowns.remove(&node);
                for ((n, _), engine) in self.engines.iter_mut() {
                    if *n == node {
                        engine.set_slowdown(1.0);
                    }
                }
                self.node_health.mark_healthy(node, time);
            }
            PerturbationEvent::NodeStraggler {
                node,
                factor,
                recover_secs,
                ..
            } => {
                // A straggler is a slowdown that the health layer surfaces
                // (Degraded) and that heals itself after `recover_secs`.
                self.slowdowns.insert(node, factor);
                for ((n, _), engine) in self.engines.iter_mut() {
                    if *n == node {
                        engine.set_slowdown(factor);
                    }
                }
                self.node_health.mark_degraded(node);
                let heal = time + recover_secs.max(0.0);
                queue.push(
                    heal,
                    Event::Perturbation(PerturbationEvent::NodeRecovery { at: heal, node }),
                );
            }
            PerturbationEvent::NodeFlap {
                node, down_secs, ..
            } => {
                // The down edge is a full node failure; the rejoin is
                // scheduled up front with the layer ranges the node holds
                // right now, so the planner can hand them back.
                self.schedule_rejoin(node, time + down_secs.max(0.0), queue);
                self.fail_nodes(
                    &[node],
                    ReplanReason::NodeFailure { node },
                    time,
                    states,
                    epochs,
                    queue,
                    active,
                    replans,
                    kv_transfers,
                );
            }
            PerturbationEvent::RegionPartition {
                region, heal_secs, ..
            } => {
                // The coordinator cannot tell a partition from a crash: the
                // unreachable side fails as a region outage, and every node
                // rejoins when the partition heals.
                let nodes: Vec<NodeId> = self.fleet.profiles()[0]
                    .cluster()
                    .nodes()
                    .iter()
                    .filter(|n| n.region == region)
                    .map(|n| n.id)
                    .collect();
                if !nodes.is_empty() {
                    let heal = time + heal_secs.max(0.0);
                    for &n in &nodes {
                        self.schedule_rejoin(n, heal, queue);
                    }
                    self.fail_nodes(
                        &nodes,
                        ReplanReason::RegionOutage { region },
                        time,
                        states,
                        epochs,
                        queue,
                        active,
                        replans,
                        kv_transfers,
                    );
                }
            }
            PerturbationEvent::NodeRejoin { node, .. } => {
                self.rejoin_node(node, time, queue, replans, kv_transfers);
            }
            PerturbationEvent::NodeFailure { node, .. } => {
                self.fail_nodes(
                    &[node],
                    ReplanReason::NodeFailure { node },
                    time,
                    states,
                    epochs,
                    queue,
                    active,
                    replans,
                    kv_transfers,
                );
            }
            PerturbationEvent::RegionOutage { region, .. } => {
                // Resolve the region's nodes against the fleet's cluster
                // spec (all profiles share one spec) and fail them together:
                // one abort/re-admit sweep, one re-plan removing the whole
                // region.
                let nodes: Vec<NodeId> = self.fleet.profiles()[0]
                    .cluster()
                    .nodes()
                    .iter()
                    .filter(|n| n.region == region)
                    .map(|n| n.id)
                    .collect();
                if !nodes.is_empty() {
                    self.fail_nodes(
                        &nodes,
                        ReplanReason::RegionOutage { region },
                        time,
                        states,
                        epochs,
                        queue,
                        active,
                        replans,
                        kv_transfers,
                    );
                }
            }
            PerturbationEvent::ArrivalRateShift { .. } => {
                // Applied to the arrival process before the run started.
            }
            PerturbationEvent::Migrate {
                model,
                from,
                to,
                layers,
                ..
            } => {
                let delta = PlacementDelta::new().migrate(model, from, to, layers);
                let observed = self.fleet.observations().clone();
                self.apply_replan(
                    &delta,
                    &observed,
                    time,
                    ReplanReason::Manual,
                    queue,
                    replans,
                    kv_transfers,
                );
            }
        }
    }

    /// Fails a set of nodes at once (one node for [`NodeFailure`], a whole
    /// region for [`RegionOutage`]): their engines stop, every *unfinished*
    /// pipeline crossing a dead node is aborted and its request re-admitted
    /// under a new epoch (stale work of the old incarnation is dropped on
    /// arrival), the KV pages it held anywhere are purged, and one re-plan
    /// removes all the dead nodes from every model's placement.  Completed
    /// requests keep their state — and their counted completion — untouched.
    ///
    /// [`NodeFailure`]: PerturbationEvent::NodeFailure
    /// [`RegionOutage`]: PerturbationEvent::RegionOutage
    #[allow(clippy::too_many_arguments)]
    fn fail_nodes(
        &mut self,
        nodes: &[NodeId],
        reason: ReplanReason,
        time: SimTime,
        states: &mut HashMap<RequestId, RequestState>,
        epochs: &mut HashMap<RequestId, u64>,
        queue: &mut EventQueue,
        active: &mut usize,
        replans: &mut Vec<ReplanRecord>,
        kv_transfers: &mut Vec<KvTransferRecord>,
    ) {
        for &node in nodes {
            self.failed.insert(node);
            self.node_health.mark_down(node);
            for ((n, _), engine) in self.engines.iter_mut() {
                if *n == node {
                    engine.fail();
                }
            }
        }
        let mut doomed: Vec<RequestId> = states
            .iter()
            .filter(|(_, s)| {
                s.finish_time.is_none() && nodes.iter().any(|n| s.pipeline.nodes().contains(n))
            })
            .map(|(&id, _)| id)
            .collect();
        // Deterministic re-admission order (map iteration order is not).
        doomed.sort_unstable();
        let mut record = FailoverRecord {
            at: time,
            node: nodes[0],
            promoted: Vec::new(),
            aborted: Vec::new(),
            tokens_recomputed: 0,
            abort_recompute_tokens: 0,
            replica_tokens_used: 0,
        };
        for id in doomed {
            let state = states.remove(&id).expect("listed above");
            let model = state.pipeline.model;
            // Purge the stranded incarnation's KV on *every* engine of its
            // model: pipeline nodes, migration destinations seeded with its
            // pages, and replica standbys (a promoted request re-seeds its
            // surviving tokens on re-admission).  Entries are keyed by
            // request id, so other requests are untouched.
            for (&(_, em), engine) in self.engines.iter_mut() {
                if em == model {
                    engine.purge_request(id);
                }
            }
            if let Some(p) = state.prefix {
                for n in state.pipeline.nodes() {
                    self.release_prefix_at(model, n, p.id);
                }
                self.prefix_routers[model.index()].release(p.id);
            }
            *epochs.entry(id).or_insert(0) += 1;
            *active = active.saturating_sub(1);
            // Fail-over: a replicated request promotes its standbys and
            // resumes from the last replicated chunk — only the tokens
            // decoded since then are recomputed.  Without a (live) replica
            // it falls back to abort-and-readmit from token zero.
            let total = state.prompt_tokens + state.generated;
            match self.promote_pipeline(id, &state.pipeline, nodes) {
                Some(promoted) => {
                    let resume_tokens = self.replica_tracker.replicated_tokens(id).min(total);
                    record.promoted.push(id);
                    record.tokens_recomputed += total.saturating_sub(resume_tokens) as u64;
                    record.abort_recompute_tokens += total as u64;
                    record.replica_tokens_used += resume_tokens as u64;
                    self.resume.insert(
                        id,
                        ResumeCredit {
                            pipeline: promoted,
                            resume_tokens,
                            generated: state.generated,
                            arrival_time: state.arrival_time,
                            first_token_time: state.first_token_time,
                        },
                    );
                }
                None => {
                    record.aborted.push(id);
                    record.tokens_recomputed += total as u64;
                    record.abort_recompute_tokens += total as u64;
                }
            }
            self.replica_tracker.finish(id);
            queue.push(time, Event::RequestArrival { request: id });
        }
        self.failovers.push(record);
        // Dead pipelines must not stay prefix homes.  The re-plan below
        // clears routers only when it succeeds; when removing the nodes is
        // infeasible (they were load-bearing) the old plan keeps serving,
        // so evict exactly the homes that crossed a dead node — otherwise
        // later sharers would "hit" a pipeline that no longer executes.
        for router in &mut self.prefix_routers {
            for &node in nodes {
                router.evict_node(node);
            }
        }
        // Structural change: re-plan immediately with one removal delta
        // covering every dead node, keeping whatever observations are
        // already priced in.
        let mut delta = PlacementDelta::new();
        for &node in nodes {
            delta = delta.remove_node(node, self.fleet.num_models());
        }
        let observed = self.fleet.observations().clone();
        self.apply_replan(
            &delta,
            &observed,
            time,
            reason,
            queue,
            replans,
            kv_transfers,
        );
    }

    /// Applies one re-plan: mutates the owned fleet plan, swaps the affected
    /// models' schedulers (drain-then-switch — in-flight pipelines keep their
    /// routes), reconciles the engine set with the new plan and performs the
    /// KV hand-over of any partial-layer migration the delta carried.
    /// Returns whether the re-plan was applied; an infeasible re-plan (e.g.
    /// a failed node was load-bearing) leaves the current plan serving.
    #[allow(clippy::too_many_arguments)]
    fn apply_replan(
        &mut self,
        delta: &PlacementDelta,
        observed: &NodeObservations,
        time: SimTime,
        reason: ReplanReason,
        queue: &mut EventQueue,
        replans: &mut Vec<ReplanRecord>,
        kv_transfers: &mut Vec<KvTransferRecord>,
    ) -> bool {
        let outcome = match self.fleet.replan(delta, observed) {
            Ok(outcome) => outcome,
            Err(_) => return false,
        };
        for &model in &outcome.affected {
            let topology = self.fleet.model(model).expect("affected model exists");
            // Hand-over step 1: new IWRR weights for new requests.  A model
            // whose re-planned flow is zero keeps its old scheduler
            // (serving degraded beats serving nothing).
            if let Ok(scheduler) = IwrrScheduler::from_topology(topology) {
                self.schedulers[model.index()] = Box::new(scheduler);
            }
            // Pipelines of the old plan are stale prefix homes: forget them.
            // In-flight references stay balanced through their own release
            // path; only future routing is affected.
            self.prefix_routers[model.index()].clear();
            // Hand-over step 2: reconcile engines.  Existing engines take
            // the new layer count / KV budget in place (their queues and
            // cached tokens survive) *and rebuild their execution cost model
            // from the re-derived contention split*, so a surviving engine
            // on a node whose tenancy changed runs at the same re-split
            // speed a freshly created engine would; pairs the plan no longer
            // includes keep draining their in-flight work but receive no new
            // pipelines; newly planned pairs get fresh engines.
            let planned: Vec<(NodeId, usize, f64)> = topology
                .nodes()
                .map(|n| (n.node, n.layers.len(), n.kv_capacity_tokens))
                .collect();
            // Engines run at the analytic contention split; observed speed
            // factors only re-price planning (the engine's own `slowdown`
            // already delivers the physical degradation being measured).
            let profile = self.fleet.contention_profile(model);
            for (node, layers, kv_capacity) in planned {
                match self.engines.get_mut(&(node, model)) {
                    Some(engine) => {
                        engine.update_plan(profile.node_profile(node), layers, kv_capacity)
                    }
                    None => {
                        let mut engine =
                            NodeEngine::new(profile.node_profile(node), layers, kv_capacity);
                        if let Some(&factor) = self.slowdowns.get(&node) {
                            engine.set_slowdown(factor);
                        }
                        if self.failed.contains(&node) {
                            engine.fail();
                        }
                        self.engines.insert((node, model), engine);
                    }
                }
            }
        }
        // Hand-over step 3: move the KV state of each migration.  The moved
        // pages travel as real traffic on the `from → to` link (queueing
        // behind activations), and both ends freeze *only the migrated
        // layer range* until the transfer lands — freeze → transfer →
        // re-route (step 1 above) → resume.  Requests whose stages run on
        // disjoint layers of the same nodes keep decoding throughout.
        for migration in &outcome.migrations {
            let m = migration.model;
            let Some(source) = self.engines.get(&(migration.from, m)) else {
                continue;
            };
            let snapshot = source.kv_snapshot();
            let prefix_snapshot = source.prefix_snapshot();
            // Shared prefixes travel once each, no matter how many requests
            // reference them — the transfer prices the deduplicated pages.
            let tokens: f64 = snapshot.iter().map(|&(_, t)| t).sum::<f64>()
                + prefix_snapshot.iter().map(|&(_, t, _)| t).sum::<f64>();
            let transfer = KvTransferModel::new(
                self.fleet.profiles()[m.index()]
                    .model()
                    .kv_bytes_per_token_per_layer(),
                DEFAULT_TOKENS_PER_PAGE,
            );
            let pages = transfer.pages(tokens);
            let bytes = transfer.bytes(tokens, migration.layers.len());
            let arrival = self.link_transfer(Some(migration.from), Some(migration.to), time, bytes);
            let source_retired = self.fleet.placement().placements()[m.index()]
                .range(migration.from)
                .is_none();
            if let Some(engine) = self.engines.get_mut(&(migration.from, m)) {
                engine.freeze_range_until(migration.layers, arrival);
                if source_retired {
                    // The whole range moved: every page now lives on the
                    // destination.
                    engine.clear_kv();
                }
                // Shared-prefix entries *move* (references and all): drop
                // them from the source so later releases follow the
                // forwarding map to the destination instead of decrementing
                // a stale copy while the live one leaks.
                for &(prefix, _, _) in &prefix_snapshot {
                    engine.remove_prefix(prefix);
                }
            }
            if let Some(engine) = self.engines.get_mut(&(migration.to, m)) {
                engine.freeze_range_until(migration.layers, arrival);
                for &(request, tokens) in &snapshot {
                    engine.seed_kv(request, tokens);
                }
                for &(prefix, tokens, refcount) in &prefix_snapshot {
                    engine.seed_prefix(prefix, tokens, refcount);
                }
            }
            for &(prefix, _, _) in &prefix_snapshot {
                self.prefix_forwards[m.index()].insert((prefix, migration.from), migration.to);
            }
            queue.push(
                arrival,
                Event::EngineThaw {
                    node: migration.from,
                    model: m,
                },
            );
            queue.push(
                arrival,
                Event::EngineThaw {
                    node: migration.to,
                    model: m,
                },
            );
            kv_transfers.push(KvTransferRecord {
                at: arrival,
                migration: *migration,
                tokens,
                pages,
                bytes,
                transfer_secs: arrival - time,
            });
        }
        replans.push(ReplanRecord {
            at: time,
            reason,
            affected: outcome.affected,
            planned_flow: self.fleet.total_flow_value(),
        });
        true
    }

    /// The standing engine of one (node, model) pair, if any — exposed so
    /// tests can compare surviving engines against freshly created ones.
    pub fn engine(&self, node: NodeId, model: ModelId) -> Option<&NodeEngine> {
        self.engines.get(&(node, model))
    }

    /// Starts replication tracking for a newly admitted request when the
    /// policy marks it hot *and* every pipeline stage has a live standby
    /// whose layer range covers it; otherwise the request runs unreplicated
    /// and a failure falls back to abort-and-readmit.  Promoted incarnations
    /// are not re-tracked — the replication factor applies from admission.
    fn begin_replication(
        &mut self,
        request: RequestId,
        pipeline: &RequestPipeline,
        output_tokens: usize,
    ) {
        if !self.replication.replicates(output_tokens) {
            return;
        }
        let model = pipeline.model;
        let Some(topology) = self.fleet.model(model) else {
            return;
        };
        let candidates: Vec<(NodeId, LayerRange)> = topology
            .nodes()
            .filter(|n| !self.failed.contains(&n.node))
            .map(|n| (n.node, n.layers))
            .collect();
        let mut standbys = Vec::with_capacity(pipeline.stages.len());
        for stage in &pipeline.stages {
            match select_standby(stage.node, stage.layers, &candidates) {
                Some(standby) => standbys.push((stage.node, standby)),
                None => return,
            }
        }
        self.replica_tracker.begin(request, standbys);
    }

    /// Ships one replication milestone: the newly durable token delta (if
    /// the chunk boundary was crossed, or the prompt just completed) travels
    /// from every primary stage to its standby over the real links, priced
    /// by the shared [`KvTransferModel`], and the standby engines seed the
    /// durable tokens as KV residency — replication steals serving
    /// bandwidth and KV headroom, which is exactly the trade-off measured.
    fn trickle_replication(
        &mut self,
        request: RequestId,
        model: ModelId,
        total_tokens: usize,
        stage_layers: &[usize],
        force: bool,
        now: SimTime,
    ) {
        let delta = self.replica_tracker.record_progress(
            request,
            total_tokens,
            self.replication.chunk_tokens,
            force,
        );
        if delta == 0 {
            return;
        }
        let durable = self.replica_tracker.replicated_tokens(request);
        let standbys: Vec<(NodeId, NodeId)> = self.replica_tracker.standbys(request).to_vec();
        let transfer = KvTransferModel::new(
            self.fleet.profiles()[model.index()]
                .model()
                .kv_bytes_per_token_per_layer(),
            DEFAULT_TOKENS_PER_PAGE,
        );
        for (i, &(primary, standby)) in standbys.iter().enumerate() {
            let layers = stage_layers.get(i).copied().unwrap_or(1);
            let bytes = transfer.bytes(delta as f64, layers);
            self.link_transfer(Some(primary), Some(standby), now, bytes);
            self.replica_tracker.record_bytes(bytes);
            if let Some(engine) = self.engines.get_mut(&(standby, model)) {
                engine.seed_kv(request, durable as f64);
            }
        }
    }

    /// Builds the promoted pipeline for `request`: every stage on a node
    /// failing *now* is substituted by its standby.  `None` — untracked
    /// request, no standby for a failed stage, or a standby that is itself
    /// dead — falls back to abort-and-readmit.
    fn promote_pipeline(
        &self,
        request: RequestId,
        pipeline: &RequestPipeline,
        failed_now: &[NodeId],
    ) -> Option<RequestPipeline> {
        if !self.replica_tracker.is_tracked(request) {
            return None;
        }
        let standbys = self.replica_tracker.standbys(request);
        let mut promoted = pipeline.clone();
        for stage in &mut promoted.stages {
            if failed_now.contains(&stage.node) {
                let standby = standbys
                    .iter()
                    .find(|&&(primary, _)| primary == stage.node)
                    .map(|&(_, s)| s)?;
                if self.failed.contains(&standby)
                    || !self.engines.contains_key(&(standby, pipeline.model))
                {
                    return None;
                }
                stage.node = standby;
            }
        }
        Some(promoted)
    }

    /// Releases one shared-prefix reference at the node where the entry
    /// lives *now*: when a migration moved the home's entry, the release
    /// follows the per-model forwarding chain (hop-limited against cycles).
    fn release_prefix_at(&mut self, model: ModelId, node: NodeId, prefix: PrefixId) {
        let mut at = node;
        for _ in 0..16 {
            if let Some(engine) = self.engines.get_mut(&(at, model)) {
                if engine.has_prefix(prefix) {
                    engine.release_prefix(prefix);
                    return;
                }
            }
            match self.prefix_forwards[model.index()].get(&(prefix, at)) {
                Some(&next) => at = next,
                None => return,
            }
        }
    }

    /// Captures the layer ranges `node` holds right now (before the failure
    /// re-plan removes them) and schedules its rejoin.
    fn schedule_rejoin(&mut self, node: NodeId, at: SimTime, queue: &mut EventQueue) {
        let mut ranges: Vec<(ModelId, LayerRange)> = Vec::new();
        for m in 0..self.fleet.num_models() {
            if let Some(n) = self.fleet.model(ModelId(m)).and_then(|t| t.node(node)) {
                ranges.push((ModelId(m), n.layers));
            }
        }
        self.rejoin_ranges.insert(node, ranges);
        queue.push(
            at,
            Event::Perturbation(PerturbationEvent::NodeRejoin { at, node }),
        );
    }

    /// A flapped node comes back: its engines recover, membership returns to
    /// Healthy, and one assign-delta re-plan hands the node its pre-failure
    /// layer ranges back (a no-op when the failure-time removal was
    /// infeasible and the node never left the plan).
    fn rejoin_node(
        &mut self,
        node: NodeId,
        time: SimTime,
        queue: &mut EventQueue,
        replans: &mut Vec<ReplanRecord>,
        kv_transfers: &mut Vec<KvTransferRecord>,
    ) {
        if !self.failed.remove(&node) {
            return;
        }
        for ((n, _), engine) in self.engines.iter_mut() {
            if *n == node {
                engine.recover();
            }
        }
        self.node_health.mark_healthy(node, time);
        let ranges = self.rejoin_ranges.remove(&node).unwrap_or_default();
        let mut delta = PlacementDelta::new();
        let mut missing = false;
        for (m, layers) in ranges {
            if self.fleet.model(m).and_then(|t| t.node(node)).is_none() {
                delta = delta.assign(m, node, layers);
                missing = true;
            }
        }
        if missing {
            let observed = self.fleet.observations().clone();
            self.apply_replan(
                &delta,
                &observed,
                time,
                ReplanReason::NodeRejoin { node },
                queue,
                replans,
                kv_transfers,
            );
        }
    }

    /// Scheduler feedback for one model: queue/throughput/KV state of that
    /// model's engines only, so per-model KV masking sees its own partition.
    fn snapshot(&self, model: ModelId) -> StateSnapshot {
        let mut queue_len = HashMap::new();
        let mut throughput = HashMap::new();
        let mut kv_used = HashMap::new();
        let mut kv_capacity = HashMap::new();
        for (&(node, m), engine) in &self.engines {
            if m != model {
                continue;
            }
            queue_len.insert(node, engine.queue_len() + usize::from(engine.is_busy()));
            throughput.insert(node, engine.recent_throughput());
            kv_used.insert(node, engine.kv_used_tokens());
            kv_capacity.insert(node, engine.kv_capacity_tokens());
        }
        StateSnapshot {
            queue_len,
            throughput,
            kv_used,
            kv_capacity,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn admit_request(
        &mut self,
        request: RequestId,
        specs: &HashMap<RequestId, Request>,
        epochs: &HashMap<RequestId, u64>,
        states: &mut HashMap<RequestId, RequestState>,
        queue: &mut EventQueue,
        now: SimTime,
        active: &mut usize,
    ) {
        let Some(spec) = specs.get(&request).copied() else {
            return;
        };
        let model = spec.model;
        if model.index() >= self.schedulers.len() {
            return;
        }
        let epoch = epochs.get(&request).copied().unwrap_or(0);
        // A promoted request skips scheduling: it resumes on the replica
        // pipeline the fail-over controller built, seeds the replicated
        // tokens as KV residency there, and recomputes only the cached
        // tokens its standbys had not yet received.  Its arrival/first-token
        // metrics continue from the original admission, and already-
        // delivered output tokens are not re-emitted.
        if let Some(credit) = self.resume.remove(&request) {
            let pipeline = credit.pipeline;
            for node in pipeline.nodes() {
                if let Some(engine) = self.engines.get_mut(&(node, model)) {
                    engine.seed_kv(request, credit.resume_tokens as f64);
                }
            }
            let recompute = (spec.prompt_tokens + credit.generated)
                .saturating_sub(credit.resume_tokens)
                .max(1);
            let first = pipeline.stages[0];
            states.insert(
                request,
                RequestState {
                    pipeline: pipeline.clone(),
                    epoch,
                    prompt_tokens: spec.prompt_tokens,
                    output_tokens: spec.output_tokens,
                    generated: credit.generated,
                    arrival_time: credit.arrival_time,
                    first_token_time: credit.first_token_time,
                    last_token_time: None,
                    decode_gaps: Vec::new(),
                    finish_time: None,
                    // The promoted incarnation holds no prefix reference —
                    // the abort path already released the original's.
                    prefix: None,
                },
            );
            *active += 1;
            let bytes = recompute as f64 * TOKEN_WIRE_BYTES;
            let arrival = self.link_transfer(None, Some(first.node), now, bytes);
            queue.push(
                arrival,
                Event::NodeArrival {
                    node: first.node,
                    item: WorkItem {
                        request,
                        epoch,
                        model,
                        phase: Phase::Prompt,
                        tokens: recompute,
                        layers: first.layers,
                        stage_index: 0,
                        prefix: None,
                    },
                },
            );
            return;
        }
        let snapshot = self.snapshot(model);
        // Cache-aware routing: a prefix-tagged request goes to the pipeline
        // already holding its prefix when that pipeline has KV headroom; a
        // saturated home degrades to plain IWRR with sharing disabled.
        let mut prefix_work: Option<PrefixWork> = None;
        let mut routed: Option<RequestPipeline> = None;
        let mut bypassed = false;
        if let Some((pid, ptokens)) = spec.shared_prefix() {
            match self.prefix_routers[model.index()].route(pid, ptokens, &snapshot) {
                PrefixRoute::Hit {
                    pipeline,
                    shared_tokens,
                } => {
                    prefix_work = Some(PrefixWork {
                        id: pid,
                        tokens: shared_tokens,
                        hit: true,
                    });
                    routed = Some(pipeline);
                }
                PrefixRoute::Miss => {
                    prefix_work = Some(PrefixWork {
                        id: pid,
                        tokens: ptokens,
                        hit: false,
                    });
                }
                PrefixRoute::Bypass => bypassed = true,
            }
        }
        let scheduled = match routed {
            Some(pipeline) => Ok(pipeline),
            None => self.schedulers[model.index()].schedule(&snapshot),
        };
        match scheduled {
            Ok(mut pipeline) => {
                pipeline.model = model;
                match prefix_work {
                    // A miss materialises the prefix: the scheduled pipeline
                    // becomes its home for later sharers.
                    Some(p) if !p.hit => {
                        self.prefix_routers[model.index()].adopt(p.id, p.tokens, &pipeline)
                    }
                    None if bypassed => self.prefix_routers[model.index()].record_bypass(),
                    _ => {}
                }
                // Shared residency is attached (refcounted) on every pipeline
                // node; the per-request KV entries hold only the suffix.
                if let Some(p) = prefix_work {
                    for node in pipeline.nodes() {
                        if let Some(engine) = self.engines.get_mut(&(node, model)) {
                            engine.attach_prefix(p.id, p.tokens as f64);
                        }
                    }
                }
                // A cache hit skips prefilling the shared range (that is the
                // compute saving); at least one token still flows through the
                // pipeline to produce the first output token.
                let prefill_tokens = match prefix_work {
                    Some(p) if p.hit => spec.prompt_tokens.saturating_sub(p.tokens).max(1),
                    _ => spec.prompt_tokens,
                };
                let first = pipeline.stages[0];
                states.insert(
                    request,
                    RequestState {
                        pipeline: pipeline.clone(),
                        epoch,
                        prompt_tokens: spec.prompt_tokens,
                        output_tokens: spec.output_tokens,
                        generated: 0,
                        arrival_time: spec.arrival_time.max(0.0).min(now),
                        first_token_time: None,
                        last_token_time: None,
                        decode_gaps: Vec::new(),
                        finish_time: None,
                        prefix: prefix_work,
                    },
                );
                *active += 1;
                self.begin_replication(request, &pipeline, spec.output_tokens);
                let bytes = prefill_tokens as f64 * TOKEN_WIRE_BYTES;
                let arrival = self.link_transfer(None, Some(first.node), now, bytes);
                queue.push(
                    arrival,
                    Event::NodeArrival {
                        node: first.node,
                        item: WorkItem {
                            request,
                            epoch,
                            model,
                            phase: Phase::Prompt,
                            tokens: prefill_tokens,
                            layers: first.layers,
                            stage_index: 0,
                            prefix: prefix_work,
                        },
                    },
                );
            }
            Err(_) => {
                // Every candidate is masked (e.g. KV caches full): retry
                // shortly.  A hit never fails here; a miss was not adopted,
                // so no reference leaks.
                queue.push(now + 0.2, Event::RequestArrival { request });
            }
        }
    }

    fn route_onward(
        &mut self,
        node: NodeId,
        item: WorkItem,
        states: &HashMap<RequestId, RequestState>,
        queue: &mut EventQueue,
        now: SimTime,
    ) {
        let Some(state) = states.get(&item.request) else {
            return;
        };
        if state.epoch != item.epoch {
            // Work of an aborted incarnation: its stage indices describe the
            // old pipeline, not the re-admitted one.  Drop it.
            return;
        }
        let next_index = item.stage_index + 1;
        if next_index < state.pipeline.stages.len() {
            let next = state.pipeline.stages[next_index];
            let activation_bytes = self.fleet.topologies()[item.model.index()]
                .profile()
                .model()
                .activation_bytes();
            let bytes = item.tokens as f64 * activation_bytes;
            let arrival = self.link_transfer(Some(node), Some(next.node), now, bytes);
            queue.push(
                arrival,
                Event::NodeArrival {
                    node: next.node,
                    item: WorkItem {
                        request: item.request,
                        epoch: item.epoch,
                        model: item.model,
                        phase: item.phase,
                        tokens: item.tokens,
                        layers: next.layers,
                        stage_index: next_index,
                        prefix: item.prefix,
                    },
                },
            );
        } else {
            // Last stage: the generated token returns to the coordinator.
            let arrival = self.link_transfer(Some(node), None, now, TOKEN_WIRE_BYTES);
            queue.push(
                arrival,
                Event::TokenAtCoordinator {
                    request: item.request,
                    epoch: item.epoch,
                    phase: item.phase,
                },
            );
        }
    }

    fn link_transfer(
        &mut self,
        from: Option<NodeId>,
        to: Option<NodeId>,
        now: SimTime,
        bytes: f64,
    ) -> SimTime {
        // Link hardware is shared by every model; the first lane's profile
        // supplies the (model-independent) bandwidth and latency numbers.
        let profile = self.fleet.topologies()[0].profile();
        let link = self.links.entry((from, to)).or_insert_with(|| {
            let spec = profile.cluster().link(from, to);
            LinkQueue::new(spec.bandwidth_bytes_per_sec(), spec.latency_secs())
        });
        link.transfer(now, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_cluster::{ClusterProfile, ClusterSpec, ModelConfig};
    use helix_core::{heuristics, IwrrScheduler, RandomScheduler, SwarmScheduler};
    use helix_workload::ArrivalPattern;

    fn small_profile() -> ClusterProfile {
        ClusterProfile::analytic(ClusterSpec::solver_quality_10(), ModelConfig::llama_30b())
    }

    fn petals_topology(profile: &ClusterProfile) -> Topology {
        let placement = heuristics::petals_placement(profile).unwrap();
        Topology::plan(profile, &placement, true).unwrap()
    }

    fn small_workload(n: usize) -> Workload {
        // Short requests keep the unit tests quick.
        let config = helix_workload::AzureTraceConfig {
            mean_input_tokens: 128.0,
            mean_output_tokens: 32.0,
            max_input_tokens: 512,
            max_output_tokens: 64,
            ..Default::default()
        };
        config
            .generate(n, 3)
            .with_arrivals(ArrivalPattern::Offline, 4)
    }

    #[test]
    fn simulation_completes_requests_and_reports_metrics() {
        let profile = small_profile();
        let topology = petals_topology(&profile);
        let scheduler = IwrrScheduler::from_topology(&topology).unwrap();
        let workload = small_workload(40);
        let mut sim = ClusterSimulator::new(&topology, Box::new(scheduler));
        let metrics = sim.run(&workload, SimulationConfig::offline(120.0).with_warmup(0.0));
        assert!(metrics.decode_throughput() > 0.0);
        assert!(metrics.completed_requests > 0);
        assert!(metrics.avg_prompt_latency() > 0.0);
        assert!(metrics.avg_decode_latency() > 0.0);
        // Utilisation values are sane.
        for u in metrics.node_utilization.values() {
            assert!(*u >= 0.0 && *u <= 1.0);
        }
        assert!(!metrics.link_stats.is_empty());
    }

    #[test]
    fn online_arrivals_produce_lower_latency_than_saturation() {
        let profile = small_profile();
        let topology = petals_topology(&profile);
        let workload_sat = small_workload(60);
        let workload_light =
            small_workload(60).with_arrivals(ArrivalPattern::constant_rate(0.5), 5);
        let run = |w: &Workload| {
            let scheduler = IwrrScheduler::from_topology(&topology).unwrap();
            let mut sim = ClusterSimulator::new(&topology, Box::new(scheduler));
            sim.run(w, SimulationConfig::online(200.0).with_warmup(0.0))
        };
        let saturated = run(&workload_sat);
        let light = run(&workload_light);
        assert!(
            light.avg_prompt_latency() <= saturated.avg_prompt_latency() * 1.5,
            "light {} vs saturated {}",
            light.avg_prompt_latency(),
            saturated.avg_prompt_latency()
        );
    }

    #[test]
    fn admission_limit_throttles_concurrency() {
        let profile = small_profile();
        let topology = petals_topology(&profile);
        let scheduler = IwrrScheduler::from_topology(&topology).unwrap();
        let workload = small_workload(30);
        let mut sim = ClusterSimulator::new(&topology, Box::new(scheduler));
        let metrics = sim.run(
            &workload,
            SimulationConfig::offline(120.0)
                .with_warmup(0.0)
                .with_admission_limit(2),
        );
        assert!(metrics.completed_requests > 0);
    }

    #[test]
    fn different_schedulers_run_on_the_same_placement() {
        let profile = small_profile();
        let placement = heuristics::swarm_placement(&profile).unwrap();
        let topology = Topology::plan(&profile, &placement, true).unwrap();
        let workload = small_workload(25);
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(IwrrScheduler::from_topology(&topology).unwrap()),
            Box::new(SwarmScheduler::new(&topology)),
            Box::new(RandomScheduler::new(&topology, 11)),
        ];
        for scheduler in schedulers {
            let mut sim = ClusterSimulator::new(&topology, scheduler);
            let metrics = sim.run(&workload, SimulationConfig::offline(90.0).with_warmup(0.0));
            assert!(metrics.decode_tokens > 0);
        }
    }

    #[test]
    fn fleet_simulation_reports_per_model_metrics() {
        use helix_core::fleet::{fleet_profiles, FleetAnnealingOptions, FleetAnnealingPlanner};
        use helix_core::{FleetScheduler, FleetTopology};
        let profiles = fleet_profiles(
            &ClusterSpec::single_cluster_24(),
            &[ModelConfig::llama_30b(), ModelConfig::llama_13b()],
        );
        let planner = FleetAnnealingPlanner::new(&profiles).with_options(FleetAnnealingOptions {
            iterations: 300,
            ..Default::default()
        });
        let (placement, _) = planner.solve().unwrap();
        let fleet = FleetTopology::plan(&profiles, &placement, true).unwrap();
        let schedulers = FleetScheduler::iwrr(&fleet).unwrap();
        let config = helix_workload::AzureTraceConfig {
            mean_input_tokens: 128.0,
            mean_output_tokens: 32.0,
            max_input_tokens: 512,
            max_output_tokens: 64,
            ..Default::default()
        };
        let workload = Workload::merge(vec![
            config.generate(25, 3).with_model(helix_cluster::ModelId(0)),
            config.generate(25, 4).with_model(helix_cluster::ModelId(1)),
        ])
        .with_arrivals(ArrivalPattern::Offline, 4);
        let mut sim = ClusterSimulator::new_fleet(&fleet, schedulers);
        assert_eq!(sim.num_models(), 2);
        let metrics =
            sim.run_per_model(&workload, SimulationConfig::offline(150.0).with_warmup(0.0));
        assert_eq!(metrics.per_model.len(), 2);
        for m in &metrics.per_model {
            assert!(m.decode_tokens > 0, "every model makes progress");
        }
        assert_eq!(
            metrics.overall.decode_tokens,
            metrics
                .per_model
                .iter()
                .map(|m| m.decode_tokens)
                .sum::<u64>()
        );
        assert_eq!(
            metrics.overall.completed_requests,
            metrics
                .per_model
                .iter()
                .map(|m| m.completed_requests)
                .sum::<u64>()
        );
        // The two models run on disjoint node partitions.
        let nodes0: Vec<_> = metrics.per_model[0].node_utilization.keys().collect();
        assert!(nodes0
            .iter()
            .all(|n| !metrics.per_model[1].node_utilization.contains_key(n)));
    }

    #[test]
    fn single_model_run_matches_fleet_of_one() {
        let profile = small_profile();
        let topology = petals_topology(&profile);
        let workload = small_workload(30);
        let config = SimulationConfig::offline(100.0).with_warmup(0.0);
        let single = {
            let scheduler = IwrrScheduler::from_topology(&topology).unwrap();
            let mut sim = ClusterSimulator::new(&topology, Box::new(scheduler));
            sim.run(&workload, config)
        };
        let fleet_of_one = {
            let fleet = helix_core::FleetTopology::single(topology.clone());
            let schedulers = helix_core::FleetScheduler::iwrr(&fleet).unwrap();
            let mut sim = ClusterSimulator::new_fleet(&fleet, schedulers);
            sim.run_per_model(&workload, config)
        };
        assert_eq!(single, fleet_of_one.overall);
        // Per-model metrics carry no link stats (links are fleet-shared);
        // everything else matches the single-model run exactly.
        let mut per_model = fleet_of_one.per_model[0].clone();
        per_model.link_stats = single.link_stats.clone();
        assert_eq!(single, per_model);
    }

    #[test]
    fn warmup_window_excludes_early_tokens() {
        let profile = small_profile();
        let topology = petals_topology(&profile);
        let workload = small_workload(40);
        let run = |warmup: f64| {
            let scheduler = IwrrScheduler::from_topology(&topology).unwrap();
            let mut sim = ClusterSimulator::new(&topology, Box::new(scheduler));
            sim.run(
                &workload,
                SimulationConfig {
                    warmup_secs: warmup,
                    duration_secs: 60.0,
                    admission_limit: 64,
                    max_events: 10_000_000,
                },
            )
        };
        let with_warmup = run(30.0);
        let without = run(0.0);
        assert!(with_warmup.decode_tokens <= without.decode_tokens);
    }

    #[test]
    fn run_with_no_events_is_bit_identical_to_the_static_path() {
        let profile = small_profile();
        let topology = petals_topology(&profile);
        let workload = small_workload(30);
        let config = SimulationConfig::offline(100.0).with_warmup(0.0);
        let static_metrics = {
            let scheduler = IwrrScheduler::from_topology(&topology).unwrap();
            let mut sim = ClusterSimulator::new(&topology, Box::new(scheduler));
            sim.run_per_model(&workload, config)
        };
        let event_metrics = {
            let scheduler = IwrrScheduler::from_topology(&topology).unwrap();
            let mut sim = ClusterSimulator::new(&topology, Box::new(scheduler));
            sim.run_with_events(&workload, config, &[], None)
        };
        assert!(event_metrics.replans.is_empty());
        assert!(event_metrics.intervals.is_empty());
        assert_eq!(static_metrics.overall, event_metrics.metrics.overall);
        assert_eq!(static_metrics.per_model, event_metrics.metrics.per_model);
    }

    #[test]
    fn slowdown_without_policy_degrades_throughput_and_reports_intervals() {
        let profile = small_profile();
        let topology = petals_topology(&profile);
        let workload = small_workload(60);
        let config = SimulationConfig::offline(200.0).with_warmup(0.0);
        // Slow down the busiest node hard at t=0.
        let slow = topology
            .nodes()
            .max_by(|a, b| a.flow.partial_cmp(&b.flow).unwrap())
            .unwrap()
            .node;
        let events = [PerturbationEvent::NodeSlowdown {
            at: 0.0,
            node: slow,
            factor: 4.0,
        }];
        let run = |events: &[PerturbationEvent]| {
            let scheduler = IwrrScheduler::from_topology(&topology).unwrap();
            let mut sim = ClusterSimulator::new(&topology, Box::new(scheduler));
            sim.run_with_events(&workload, config, events, None)
        };
        let healthy = run(&[]);
        let degraded = run(&events);
        assert!(
            degraded.metrics.overall.decode_throughput()
                < healthy.metrics.overall.decode_throughput()
        );
        // Perturbed runs emit interval metrics even without a policy.
        assert!(!degraded.intervals.is_empty());
        assert!(degraded.replans.is_empty(), "no policy, no re-plan");
        for w in &degraded.intervals {
            assert!(w.end > w.start);
            assert_eq!(w.decode_tokens.len(), 1);
        }
    }

    #[test]
    fn node_failure_triggers_immediate_replan_and_requests_still_complete() {
        let profile = small_profile();
        let topology = petals_topology(&profile);
        let workload = small_workload(40);
        let config = SimulationConfig::offline(240.0).with_warmup(0.0);
        // Fail a node that holds layers but is not the only holder of any
        // layer (petals over 10 nodes replicates ranges).
        let candidates: Vec<NodeId> = topology.nodes().map(|n| n.node).collect();
        let placement = topology.placement().clone();
        let num_layers = topology.num_layers();
        let failed = candidates
            .iter()
            .copied()
            .find(|&node| {
                let mut without = placement.clone();
                without.clear(node);
                without.has_complete_pipeline(num_layers)
            })
            .expect("some node is redundant");
        let events = [PerturbationEvent::NodeFailure {
            at: 30.0,
            node: failed,
        }];
        let scheduler = IwrrScheduler::from_topology(&topology).unwrap();
        let mut sim = ClusterSimulator::new(&topology, Box::new(scheduler));
        let report = sim.run_with_events(&workload, config, &events, None);
        assert_eq!(report.replans.len(), 1);
        assert!(matches!(
            report.replans[0].reason,
            ReplanReason::NodeFailure { node } if node == failed
        ));
        // The failed node left the plan …
        assert!(sim
            .fleet()
            .model(ModelId(0))
            .unwrap()
            .node(failed)
            .is_none());
        // … and the run still completes requests afterwards.
        assert!(report.metrics.overall.completed_requests > 0);
        // Requests that finished before the failure keep exactly one counted
        // completion, and aborted incarnations are never double-counted.
        assert!(report.metrics.overall.completed_requests <= 40);
    }
}
