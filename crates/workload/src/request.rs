//! Request records.

use helix_cluster::{ModelId, Region};
use serde::{Deserialize, Serialize};

/// Identifier of a request within a workload.
pub type RequestId = u64;

/// Handle returned by a serving front door when a request is submitted.
///
/// A ticket wraps the submitted request's [`RequestId`]; session front ends
/// (the threaded runtime's `ServingSession`, the simulator's `SimSession`)
/// hand it back so completions can be awaited per request.  Request ids must
/// be unique within one session for tickets to be unambiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TicketId(pub RequestId);

impl TicketId {
    /// The submitted request's id.
    pub fn request(&self) -> RequestId {
        self.0
    }
}

pub use helix_cluster::PrefixId;

/// One LLM serving request: a prompt of known length and the (ground-truth)
/// number of output tokens it will generate.
///
/// The output length is of course unknown to the serving system until the
/// request finishes; the simulator only uses it to decide when the request
/// emits its end-of-sequence token, mirroring how trace replay works in the
/// paper's evaluation.
///
/// Requests default to no shared prefix (`prefix: None`): every existing
/// trace and workload behaves exactly as before prefix sharing existed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Unique id within the workload.
    pub id: RequestId,
    /// Number of prompt tokens.
    pub prompt_tokens: usize,
    /// Number of output tokens the request will generate.
    pub output_tokens: usize,
    /// Arrival time in seconds from the start of the trace.
    pub arrival_time: f64,
    /// Which model of the fleet the request targets (`ModelId(0)` in
    /// single-model deployments).
    pub model: ModelId,
    /// The shared prompt prefix this request starts with, if any.
    pub prefix: Option<PrefixId>,
    /// How many leading prompt tokens the shared prefix covers (0 when
    /// `prefix` is `None`; always ≤ `prompt_tokens`).
    pub prefix_tokens: usize,
    /// The region the request prefers (user locality), if any.  A front-tier
    /// router honours the tag while the region is healthy; untagged requests
    /// are placed by consistent hashing.  Single-region surfaces ignore it.
    /// (Absent in pre-region serialised workloads; missing fields
    /// deserialise to `None`.)
    pub region: Option<Region>,
}

impl Default for Request {
    fn default() -> Self {
        Request {
            id: 0,
            prompt_tokens: 0,
            output_tokens: 0,
            arrival_time: 0.0,
            model: ModelId::default(),
            prefix: None,
            prefix_tokens: 0,
            region: None,
        }
    }
}

impl Request {
    /// Total tokens that end up in the KV cache when the request completes.
    pub fn total_tokens(&self) -> usize {
        self.prompt_tokens + self.output_tokens
    }

    /// The shared prefix and its token count, when the request actually
    /// shares a non-empty range (`Some` requires both a `PrefixId` and
    /// `prefix_tokens > 0`).
    pub fn shared_prefix(&self) -> Option<(PrefixId, usize)> {
        match self.prefix {
            Some(prefix) if self.prefix_tokens > 0 => {
                Some((prefix, self.prefix_tokens.min(self.prompt_tokens)))
            }
            _ => None,
        }
    }

    /// Prompt tokens *outside* the shared prefix — what a cache-hit request
    /// still has to prefill itself.
    pub fn suffix_tokens(&self) -> usize {
        match self.shared_prefix() {
            Some((_, shared)) => self.prompt_tokens - shared,
            None => self.prompt_tokens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_tokens_adds_prompt_and_output() {
        let r = Request {
            id: 1,
            prompt_tokens: 100,
            output_tokens: 50,
            ..Request::default()
        };
        assert_eq!(r.total_tokens(), 150);
        assert_eq!(r.model, ModelId(0));
    }

    #[test]
    fn default_request_shares_nothing() {
        let r = Request::default();
        assert_eq!(r.prefix, None);
        assert_eq!(r.shared_prefix(), None);
        assert_eq!(r.suffix_tokens(), 0);
    }

    #[test]
    fn shared_prefix_requires_id_and_positive_range() {
        let mut r = Request {
            prompt_tokens: 100,
            prefix: Some(PrefixId(7)),
            prefix_tokens: 60,
            ..Request::default()
        };
        assert_eq!(r.shared_prefix(), Some((PrefixId(7), 60)));
        assert_eq!(r.suffix_tokens(), 40);
        // A prefix id with a zero-length range shares nothing.
        r.prefix_tokens = 0;
        assert_eq!(r.shared_prefix(), None);
        assert_eq!(r.suffix_tokens(), 100);
        // A range longer than the prompt is clamped to the prompt.
        r.prefix_tokens = 500;
        assert_eq!(r.shared_prefix(), Some((PrefixId(7), 100)));
        assert_eq!(r.suffix_tokens(), 0);
    }
}
