//! Paged KV-cache pool, the runtime's stand-in for vLLM's PagedAttention
//! block manager.
//!
//! The paper's prototype builds a unified page pool on top of vLLM 0.4.0 so
//! that partial inference can share one pool across layer ranges (§6.1).
//! This module reproduces that allocator: KV memory is carved into
//! fixed-size pages of `tokens_per_page` tokens, a request allocates pages
//! lazily as its sequence grows, and all pages are returned when the request
//! finishes.  The scheduler-side *estimate* of usage lives in
//! [`helix_core::KvCacheEstimator`]; this pool is the ground truth the worker
//! actually enforces.

use helix_cluster::PrefixId;
use helix_workload::RequestId;
use std::collections::HashMap;
use std::fmt;

/// Error returned when a pool cannot satisfy an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvPoolError {
    /// The pool does not have enough free pages for the allocation.
    OutOfPages {
        /// Pages the allocation needed.
        requested: usize,
        /// Pages currently free.
        available: usize,
    },
}

impl fmt::Display for KvPoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvPoolError::OutOfPages { requested, available } => write!(
                f,
                "kv pool exhausted: allocation needs {requested} pages but only {available} are free"
            ),
        }
    }
}

impl std::error::Error for KvPoolError {}

/// Pages and tokens held by one request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Allocation {
    pages: usize,
    tokens: usize,
}

/// Pages and tokens held by one shared prefix, plus the number of resident
/// requests referencing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PrefixAllocation {
    pages: usize,
    tokens: usize,
    refcount: usize,
}

/// A fixed-capacity paged KV-cache pool for one compute node.
///
/// # Example
///
/// ```rust
/// use helix_runtime::PagedKvPool;
///
/// let mut pool = PagedKvPool::new(1024.0, 16);
/// pool.append_tokens(1, 100).unwrap();
/// assert_eq!(pool.used_pages(), 7); // ceil(100 / 16)
/// assert!(pool.release(1));
/// assert!(!pool.release(1)); // nothing left to free
/// assert_eq!(pool.used_tokens(), 0.0);
/// ```
///
/// Shared prompt prefixes get their own refcounted entries: the first
/// [`attach_prefix`](Self::attach_prefix) materialises the pages, later
/// attaches only bump the reference count, and the pages return to the free
/// list when [`detach_prefix`](Self::detach_prefix) drops the last
/// reference.
#[derive(Debug, Clone)]
pub struct PagedKvPool {
    tokens_per_page: usize,
    total_pages: usize,
    free_pages: usize,
    allocations: HashMap<RequestId, Allocation>,
    /// Refcounted shared-prefix residency (RadixAttention-style: one copy of
    /// the pages no matter how many requests reference them).
    prefixes: HashMap<PrefixId, PrefixAllocation>,
    /// Highest utilisation (used pages / total pages) observed so far.
    peak_utilization: f64,
    /// Number of allocations rejected for lack of pages.
    rejections: u64,
}

impl PagedKvPool {
    /// Creates a pool holding `capacity_tokens` tokens split into pages of
    /// `tokens_per_page`.
    ///
    /// # Panics
    ///
    /// Panics if `tokens_per_page` is zero or `capacity_tokens` is negative
    /// or NaN.
    pub fn new(capacity_tokens: f64, tokens_per_page: usize) -> Self {
        assert!(tokens_per_page > 0, "tokens_per_page must be positive");
        assert!(
            capacity_tokens.is_finite() && capacity_tokens >= 0.0,
            "capacity_tokens must be non-negative, got {capacity_tokens}"
        );
        let total_pages = (capacity_tokens / tokens_per_page as f64).floor() as usize;
        PagedKvPool {
            tokens_per_page,
            total_pages,
            free_pages: total_pages,
            allocations: HashMap::new(),
            prefixes: HashMap::new(),
            peak_utilization: 0.0,
            rejections: 0,
        }
    }

    /// Number of tokens per page.
    pub fn tokens_per_page(&self) -> usize {
        self.tokens_per_page
    }

    /// Re-sizes the pool to `capacity_tokens`, keeping resident allocations
    /// (an in-place plan update).  No pages are evicted: shrinking below
    /// current usage floors the capacity at the pages in use, so new
    /// allocations fail until releases catch up with the new budget.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_tokens` is negative or NaN.
    pub fn resize(&mut self, capacity_tokens: f64) {
        assert!(
            capacity_tokens.is_finite() && capacity_tokens >= 0.0,
            "capacity_tokens must be non-negative, got {capacity_tokens}"
        );
        let used = self.used_pages();
        let requested = (capacity_tokens / self.tokens_per_page as f64).floor() as usize;
        self.total_pages = requested.max(used);
        self.free_pages = self.total_pages - used;
    }

    /// Total pool capacity in pages.
    pub fn total_pages(&self) -> usize {
        self.total_pages
    }

    /// Total pool capacity in tokens.
    pub fn capacity_tokens(&self) -> f64 {
        (self.total_pages * self.tokens_per_page) as f64
    }

    /// Pages currently allocated to requests.
    pub fn used_pages(&self) -> usize {
        self.total_pages - self.free_pages
    }

    /// Tokens currently cached across all requests and shared prefixes.
    pub fn used_tokens(&self) -> f64 {
        self.allocations
            .values()
            .map(|a| a.tokens as f64)
            .sum::<f64>()
            + self.prefixes.values().map(|p| p.tokens as f64).sum::<f64>()
    }

    /// Fraction of pages in use, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.total_pages == 0 {
            return 1.0;
        }
        self.used_pages() as f64 / self.total_pages as f64
    }

    /// The highest utilisation observed since the pool was created.
    pub fn peak_utilization(&self) -> f64 {
        self.peak_utilization
    }

    /// Number of allocations that failed because the pool was exhausted.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Number of requests currently holding pages.
    pub fn active_requests(&self) -> usize {
        self.allocations.len()
    }

    /// Appends `tokens` newly cached tokens for `request`, allocating new
    /// pages only when the request's last page is full (the PagedAttention
    /// allocation rule).
    ///
    /// # Errors
    ///
    /// Returns [`KvPoolError::OutOfPages`] and leaves the pool unchanged if
    /// there are not enough free pages.
    pub fn append_tokens(&mut self, request: RequestId, tokens: usize) -> Result<(), KvPoolError> {
        if tokens == 0 {
            return Ok(());
        }
        let current = self.allocations.get(&request).copied().unwrap_or_default();
        let needed_pages = (current.tokens + tokens).div_ceil(self.tokens_per_page);
        let extra = needed_pages.saturating_sub(current.pages);
        if extra > self.free_pages {
            self.rejections += 1;
            return Err(KvPoolError::OutOfPages {
                requested: extra,
                available: self.free_pages,
            });
        }
        self.free_pages -= extra;
        self.allocations.insert(
            request,
            Allocation {
                pages: needed_pages,
                tokens: current.tokens + tokens,
            },
        );
        self.peak_utilization = self.peak_utilization.max(self.utilization());
        Ok(())
    }

    /// Frees every page held by `request`.  Returns `true` when pages were
    /// actually freed and `false` when the request held nothing — either it
    /// never allocated (every append was rejected) or it was already
    /// released.  Callers that expect a resident request can assert on the
    /// result to catch double-release bugs instead of silently ignoring
    /// them.
    pub fn release(&mut self, request: RequestId) -> bool {
        if let Some(allocation) = self.allocations.remove(&request) {
            self.free_pages += allocation.pages;
            true
        } else {
            false
        }
    }

    /// Attaches one reference to shared prefix `prefix` covering `tokens`
    /// tokens.  The first attach materialises the pages (returns
    /// `Ok(true)`); later attaches only bump the reference count (returns
    /// `Ok(false)`), costing no new pages — that is the whole point of
    /// sharing.  Every attach must be paired with one
    /// [`detach_prefix`](Self::detach_prefix).
    ///
    /// # Errors
    ///
    /// Returns [`KvPoolError::OutOfPages`] and leaves the pool unchanged if
    /// the prefix is not resident and its pages do not fit.
    pub fn attach_prefix(&mut self, prefix: PrefixId, tokens: usize) -> Result<bool, KvPoolError> {
        if let Some(entry) = self.prefixes.get_mut(&prefix) {
            entry.refcount += 1;
            return Ok(false);
        }
        let pages = tokens.div_ceil(self.tokens_per_page);
        if pages > self.free_pages {
            self.rejections += 1;
            return Err(KvPoolError::OutOfPages {
                requested: pages,
                available: self.free_pages,
            });
        }
        self.free_pages -= pages;
        self.prefixes.insert(
            prefix,
            PrefixAllocation {
                pages,
                tokens,
                refcount: 1,
            },
        );
        self.peak_utilization = self.peak_utilization.max(self.utilization());
        Ok(true)
    }

    /// Drops one reference to shared prefix `prefix`; the last reference
    /// frees its pages.  Returns `true` when the pages were freed by this
    /// call.  Unknown prefixes return `false` (the entry may have been
    /// handed over by a migration).
    pub fn detach_prefix(&mut self, prefix: PrefixId) -> bool {
        let Some(entry) = self.prefixes.get_mut(&prefix) else {
            return false;
        };
        entry.refcount = entry.refcount.saturating_sub(1);
        if entry.refcount == 0 {
            let pages = entry.pages;
            self.prefixes.remove(&prefix);
            self.free_pages += pages;
            true
        } else {
            false
        }
    }

    /// Tokens resident for one shared prefix (0 when not resident).
    pub fn prefix_tokens_of(&self, prefix: PrefixId) -> usize {
        self.prefixes.get(&prefix).map(|p| p.tokens).unwrap_or(0)
    }

    /// Pages held by shared prefixes (counted once each, regardless of how
    /// many requests reference them).
    pub fn shared_pages(&self) -> usize {
        self.prefixes.values().map(|p| p.pages).sum()
    }

    /// The shared-prefix residency snapshot (prefix → cached tokens and
    /// reference count), sorted by prefix id — the prefix payload of a KV
    /// hand-over.  Each prefix's pages are transferred once, not once per
    /// referencing request.
    pub fn prefix_snapshot(&self) -> Vec<(PrefixId, usize, usize)> {
        let mut entries: Vec<(PrefixId, usize, usize)> = self
            .prefixes
            .iter()
            .map(|(&prefix, p)| (prefix, p.tokens, p.refcount))
            .collect();
        entries.sort_by_key(|&(prefix, _, _)| prefix);
        entries
    }

    /// Seeds a migrated shared prefix: materialises it with the given
    /// reference count if absent, or adds the incoming references to the
    /// resident entry.  Like [`seed`](Self::seed), overflow counts as a
    /// rejection but the hand-over still completes.
    pub fn seed_prefix(&mut self, prefix: PrefixId, tokens: usize, refcount: usize) {
        if refcount == 0 {
            return;
        }
        if let Some(entry) = self.prefixes.get_mut(&prefix) {
            entry.refcount += refcount;
            return;
        }
        let pages = tokens.div_ceil(self.tokens_per_page);
        if pages > self.free_pages {
            self.rejections += 1;
            // Modelled host-memory offload: the prefix arrives with no
            // resident pages, so sharers re-attach (and may re-materialise)
            // on demand.
            return;
        }
        self.free_pages -= pages;
        self.prefixes.insert(
            prefix,
            PrefixAllocation {
                pages,
                tokens,
                refcount,
            },
        );
        self.peak_utilization = self.peak_utilization.max(self.utilization());
    }

    /// The per-request residency snapshot (request → cached tokens), sorted
    /// by request id — the payload of a KV hand-over.
    pub fn snapshot(&self) -> Vec<(RequestId, usize)> {
        let mut entries: Vec<(RequestId, usize)> = self
            .allocations
            .iter()
            .map(|(&request, allocation)| (request, allocation.tokens))
            .collect();
        entries.sort_by_key(|&(request, _)| request);
        entries
    }

    /// Seeds migrated KV state: tops the request's residency up to at least
    /// `tokens` cached tokens.  Residency counts the request's cached
    /// *sequence* tokens — the same count on every node holding layers for
    /// it — so a request this pool already serves merges instead of
    /// double-allocating.  A pool too small for the incoming state counts
    /// the overflow as a rejection (modelled host-memory offload) but the
    /// hand-over still completes — migrated requests are never dropped.
    pub fn seed(&mut self, request: RequestId, tokens: usize) {
        let have = self.tokens_of(request);
        if tokens > have {
            let _ = self.append_tokens(request, tokens - have);
        }
    }

    /// Tokens currently cached for one request.
    pub fn tokens_of(&self, request: RequestId) -> usize {
        self.allocations
            .get(&request)
            .map(|a| a.tokens)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_are_allocated_lazily_and_released_in_full() {
        let mut pool = PagedKvPool::new(160.0, 16);
        assert_eq!(pool.total_pages(), 10);
        pool.append_tokens(1, 10).unwrap();
        assert_eq!(pool.used_pages(), 1);
        // The next 6 tokens fit in the already-allocated page.
        pool.append_tokens(1, 6).unwrap();
        assert_eq!(pool.used_pages(), 1);
        // One more token needs a second page.
        pool.append_tokens(1, 1).unwrap();
        assert_eq!(pool.used_pages(), 2);
        assert_eq!(pool.tokens_of(1), 17);
        assert!(pool.release(1));
        assert_eq!(pool.used_pages(), 0);
        assert_eq!(pool.used_tokens(), 0.0);
        // A double release frees nothing and says so.
        assert!(!pool.release(1));
        assert_eq!(pool.active_requests(), 0);
    }

    #[test]
    fn shared_prefixes_are_materialised_once_and_freed_at_refcount_zero() {
        let mut pool = PagedKvPool::new(320.0, 16);
        // First attach materialises ceil(100/16) = 7 pages.
        assert!(pool.attach_prefix(PrefixId(5), 100).unwrap());
        assert_eq!(pool.used_pages(), 7);
        assert_eq!(pool.shared_pages(), 7);
        // Later attaches cost nothing.
        assert!(!pool.attach_prefix(PrefixId(5), 100).unwrap());
        assert!(!pool.attach_prefix(PrefixId(5), 100).unwrap());
        assert_eq!(pool.used_pages(), 7);
        assert_eq!(pool.prefix_tokens_of(PrefixId(5)), 100);
        // Requests and prefixes share the same page budget.
        pool.append_tokens(1, 32).unwrap();
        assert_eq!(pool.used_pages(), 9);
        assert_eq!(pool.used_tokens(), 132.0);
        // Pages survive until the last reference drops.
        assert!(!pool.detach_prefix(PrefixId(5)));
        assert!(!pool.detach_prefix(PrefixId(5)));
        assert!(pool.detach_prefix(PrefixId(5)));
        assert_eq!(pool.shared_pages(), 0);
        assert_eq!(pool.used_pages(), 2);
        // Detaching an unknown prefix is a no-op returning false.
        assert!(!pool.detach_prefix(PrefixId(5)));
    }

    #[test]
    fn prefix_attach_respects_capacity_and_snapshot_carries_refcounts() {
        let mut pool = PagedKvPool::new(64.0, 16);
        pool.append_tokens(1, 48).unwrap();
        // 3 of 4 pages used: a 32-token prefix does not fit.
        assert_eq!(
            pool.attach_prefix(PrefixId(0), 32),
            Err(KvPoolError::OutOfPages {
                requested: 2,
                available: 1
            })
        );
        assert_eq!(pool.rejections(), 1);
        assert!(pool.attach_prefix(PrefixId(1), 16).unwrap());
        assert!(!pool.attach_prefix(PrefixId(1), 16).unwrap());
        assert_eq!(pool.prefix_snapshot(), vec![(PrefixId(1), 16, 2)]);
        // Seeding a migrated prefix merges refcounts with the resident entry.
        pool.seed_prefix(PrefixId(1), 16, 3);
        assert_eq!(pool.prefix_snapshot(), vec![(PrefixId(1), 16, 5)]);
        // Seeding an absent prefix into a full pool counts a rejection but
        // completes (modelled host-memory offload).
        pool.seed_prefix(PrefixId(2), 160, 1);
        assert_eq!(pool.rejections(), 2);
        assert_eq!(pool.prefix_tokens_of(PrefixId(2)), 0);
        // Seeding into free space materialises with the given refcount.
        assert!(pool.release(1));
        pool.seed_prefix(PrefixId(3), 32, 2);
        assert_eq!(pool.prefix_tokens_of(PrefixId(3)), 32);
        assert!(!pool.detach_prefix(PrefixId(3)));
        assert!(pool.detach_prefix(PrefixId(3)));
    }

    #[test]
    fn refcounted_release_never_leaks_or_double_frees() {
        // Property-style sweep over interleavings: requests and prefix
        // references attach and release in every relative order; afterwards
        // the pool must be exactly empty (no leak, no double free).
        let orders: &[&[usize]] = &[
            &[0, 1, 2, 3, 4, 5],
            &[5, 4, 3, 2, 1, 0],
            &[0, 2, 4, 1, 3, 5],
            &[3, 0, 5, 2, 4, 1],
            &[1, 5, 0, 4, 2, 3],
        ];
        for order in orders {
            let mut pool = PagedKvPool::new(4096.0, 16);
            // Three requests sharing prefix 9, three sharing prefix 11.
            for id in 0..6u64 {
                let prefix = if id < 3 { PrefixId(9) } else { PrefixId(11) };
                pool.attach_prefix(prefix, 64).unwrap();
                pool.append_tokens(id, 100 + id as usize).unwrap();
            }
            assert_eq!(pool.shared_pages(), 8);
            let mut frees = 0;
            for &slot in *order {
                let id = slot as u64;
                let prefix = if id < 3 { PrefixId(9) } else { PrefixId(11) };
                assert!(pool.release(id), "request {id} must hold pages");
                if pool.detach_prefix(prefix) {
                    frees += 1;
                }
            }
            assert_eq!(frees, 2, "each prefix freed exactly once");
            assert_eq!(pool.used_pages(), 0, "order {order:?} leaked pages");
            assert_eq!(pool.used_tokens(), 0.0);
            assert_eq!(pool.active_requests(), 0);
            assert_eq!(pool.shared_pages(), 0);
            assert_eq!(pool.free_pages, pool.total_pages);
        }
    }

    #[test]
    fn exhaustion_is_reported_and_leaves_the_pool_unchanged() {
        let mut pool = PagedKvPool::new(64.0, 16);
        pool.append_tokens(1, 48).unwrap();
        let err = pool.append_tokens(2, 32).unwrap_err();
        assert_eq!(
            err,
            KvPoolError::OutOfPages {
                requested: 2,
                available: 1
            }
        );
        assert_eq!(pool.rejections(), 1);
        // The failed allocation did not leak pages.
        assert_eq!(pool.used_pages(), 3);
        assert_eq!(pool.tokens_of(2), 0);
        // A smaller allocation still fits.
        pool.append_tokens(2, 16).unwrap();
        assert_eq!(pool.used_pages(), 4);
        assert!(pool.utilization() > 0.99);
        assert!((pool.peak_utilization() - 1.0).abs() < 1e-9);
        assert!(err.to_string().contains("exhausted"));
    }

    #[test]
    fn zero_capacity_pool_rejects_everything() {
        let mut pool = PagedKvPool::new(0.0, 16);
        assert_eq!(pool.total_pages(), 0);
        assert_eq!(pool.utilization(), 1.0);
        assert!(pool.append_tokens(1, 1).is_err());
        assert!(
            pool.append_tokens(1, 0).is_ok(),
            "empty appends always succeed"
        );
    }

    #[test]
    fn capacity_rounds_down_to_whole_pages() {
        let pool = PagedKvPool::new(100.0, 16);
        assert_eq!(pool.total_pages(), 6);
        assert_eq!(pool.capacity_tokens(), 96.0);
        assert_eq!(pool.tokens_per_page(), 16);
    }

    #[test]
    #[should_panic(expected = "tokens_per_page")]
    fn zero_page_size_is_rejected() {
        let _ = PagedKvPool::new(100.0, 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

        /// Random attach/release interleavings: whatever order requests
        /// finish in, the pool ends exactly empty — refcounted prefixes are
        /// freed exactly once and no request pages leak.
        #[test]
        fn pool_ends_empty_after_any_interleaving(
            priorities in proptest::prelude::prop::collection::vec(0u64..1_000_000, 4..12),
        ) {
            let mut pool = PagedKvPool::new(8192.0, 16);
            let n = priorities.len() as u64;
            for id in 0..n {
                let prefix = PrefixId(id % 3);
                pool.attach_prefix(prefix, 48).unwrap();
                pool.append_tokens(id, 20 + 7 * id as usize).unwrap();
            }
            // Release in the order induced by the random priorities.
            let mut order: Vec<u64> = (0..n).collect();
            order.sort_by_key(|&id| priorities[id as usize]);
            let mut prefix_frees = 0;
            for id in order {
                proptest::prop_assert!(pool.release(id));
                proptest::prop_assert!(!pool.release(id));
                if pool.detach_prefix(PrefixId(id % 3)) {
                    prefix_frees += 1;
                }
            }
            proptest::prop_assert_eq!(prefix_frees, 3);
            proptest::prop_assert_eq!(pool.used_pages(), 0);
            proptest::prop_assert_eq!(pool.active_requests(), 0);
            proptest::prop_assert_eq!(pool.shared_pages(), 0);
            proptest::prop_assert_eq!(pool.used_tokens(), 0.0);
        }
    }

    #[test]
    fn resize_keeps_residency_and_floors_at_usage() {
        let mut pool = PagedKvPool::new(64.0, 16);
        pool.append_tokens(1, 32).unwrap();
        pool.resize(128.0);
        assert_eq!(pool.total_pages(), 8);
        assert_eq!(pool.used_pages(), 2);
        pool.append_tokens(2, 64).unwrap();
        // Shrinking below the 6 pages in use floors capacity at usage: no
        // eviction, but nothing new fits until releases catch up.
        pool.resize(16.0);
        assert_eq!(pool.total_pages(), 6);
        assert!(pool.append_tokens(3, 16).is_err());
        pool.release(1);
        pool.release(2);
        pool.resize(16.0);
        assert_eq!(pool.total_pages(), 1);
        assert!(pool.append_tokens(3, 16).is_ok());
    }
}
