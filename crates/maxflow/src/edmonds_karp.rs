//! Edmonds–Karp maximum flow (BFS augmenting paths).
//!
//! Slow but simple; used in tests and property checks as a third independent
//! implementation to compare against push-relabel and Dinic.

use crate::graph::{ArenaEdge, FlowNetwork, FlowResult, NodeId, UndoJournal};
use crate::FLOW_EPS;
use std::collections::VecDeque;

/// Computes the maximum flow on `network` from `source` to `sink` with the
/// Edmonds–Karp algorithm.
///
/// # Panics
///
/// Panics if `source == sink` or either node is not part of `network`.
pub fn edmonds_karp(network: &FlowNetwork, source: NodeId, sink: NodeId) -> FlowResult {
    network.max_flow_with(source, sink, crate::MaxFlowAlgorithm::EdmondsKarp)
}

/// Core Edmonds–Karp routine operating on the shared arena representation.
pub(crate) fn run(
    edges: &mut [ArenaEdge],
    adjacency: &[Vec<usize>],
    n: usize,
    source: usize,
    sink: usize,
    journal: &mut UndoJournal,
) -> f64 {
    let mut total = 0.0f64;
    loop {
        // BFS for the shortest augmenting path, remembering the edge used to
        // reach each node.
        let mut parent_edge = vec![usize::MAX; n];
        let mut visited = vec![false; n];
        visited[source] = true;
        let mut queue = VecDeque::new();
        queue.push_back(source);
        'bfs: while let Some(u) = queue.pop_front() {
            for &eid in &adjacency[u] {
                let v = edges[eid].to;
                if !visited[v] && edges[eid].residual > FLOW_EPS {
                    visited[v] = true;
                    parent_edge[v] = eid;
                    if v == sink {
                        break 'bfs;
                    }
                    queue.push_back(v);
                }
            }
        }
        if !visited[sink] {
            break;
        }
        // Find the bottleneck along the path.
        let mut bottleneck = f64::INFINITY;
        let mut v = sink;
        while v != source {
            let eid = parent_edge[v];
            bottleneck = bottleneck.min(edges[eid].residual);
            v = edges[eid ^ 1].to;
        }
        // Augment.
        let mut v = sink;
        while v != source {
            let eid = parent_edge[v];
            journal.touch_pair(eid, edges);
            edges[eid].residual -= bottleneck;
            edges[eid ^ 1].residual += bottleneck;
            v = edges[eid ^ 1].to;
        }
        total += bottleneck;
    }
    total
}

#[cfg(test)]
mod tests {
    use crate::{FlowNetwork, MaxFlowAlgorithm};

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new();
        let s = net.add_node("s");
        let t = net.add_node("t");
        net.add_edge(s, t, 7.25);
        let r = net.max_flow_with(s, t, MaxFlowAlgorithm::EdmondsKarp);
        assert!((r.value - 7.25).abs() < 1e-12);
    }

    #[test]
    fn requires_flow_rerouting() {
        // The classic example where a greedy path must be partially undone via
        // the residual edge.
        let mut net = FlowNetwork::new();
        let s = net.add_node("s");
        let a = net.add_node("a");
        let b = net.add_node("b");
        let t = net.add_node("t");
        net.add_edge(s, a, 1.0);
        net.add_edge(s, b, 1.0);
        net.add_edge(a, b, 1.0);
        net.add_edge(a, t, 1.0);
        net.add_edge(b, t, 1.0);
        let r = net.max_flow_with(s, t, MaxFlowAlgorithm::EdmondsKarp);
        assert!((r.value - 2.0).abs() < 1e-12);
        net.validate_flow(&r.edge_flows, s, t).unwrap();
    }

    #[test]
    fn agrees_with_other_algorithms_on_dense_graph() {
        let mut net = FlowNetwork::new();
        let nodes: Vec<_> = (0..8).map(|i| net.add_node(format!("v{i}"))).collect();
        // Dense-ish DAG with deterministic pseudo-random capacities.
        for i in 0..8 {
            for j in (i + 1)..8 {
                let cap = ((i * 7 + j * 13) % 11) as f64 + 0.5;
                net.add_edge(nodes[i], nodes[j], cap);
            }
        }
        let s = nodes[0];
        let t = nodes[7];
        let ek = net.max_flow_with(s, t, MaxFlowAlgorithm::EdmondsKarp);
        let di = net.max_flow_with(s, t, MaxFlowAlgorithm::Dinic);
        let pr = net.max_flow_with(s, t, MaxFlowAlgorithm::PushRelabel);
        assert!((ek.value - di.value).abs() < 1e-9);
        assert!((ek.value - pr.value).abs() < 1e-9);
    }
}
