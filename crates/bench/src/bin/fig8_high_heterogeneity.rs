//! Figure 8: the 42-node, 7-node-type high-heterogeneity cluster serving
//! LLaMA 70B — Helix vs Swarm vs SP vs SP+ (SP alone cannot use V100/T4/2×T4
//! nodes, SP+ adds a mixed pipeline from them).
//!
//! ```text
//! cargo run --release -p helix-bench --bin fig8_high_heterogeneity [--full]
//! ```

use helix_bench::{
    print_serving_table, run_serving, ExperimentReport, ExperimentScale, ServingSetting, SystemKind,
};
use helix_cluster::{ClusterProfile, ClusterSpec, ModelConfig};

fn main() {
    let scale = ExperimentScale::from_args();
    let profile = ClusterProfile::analytic(
        ClusterSpec::high_heterogeneity_42(),
        ModelConfig::llama2_70b(),
    );
    let mut rows = Vec::new();
    for setting in [ServingSetting::Offline, ServingSetting::Online] {
        for system in [
            SystemKind::Helix,
            SystemKind::Swarm,
            SystemKind::SeparatePipelines,
            SystemKind::SeparatePipelinesPlus,
        ] {
            if let Some(row) = run_serving(&profile, system, setting, scale, 81) {
                rows.push(row);
            }
        }
    }
    print_serving_table("Figure 8: high GPU-heterogeneity cluster, LLaMA 70B", &rows);
    let report = ExperimentReport::new(
        "fig8_high_heterogeneity",
        "Figure 8 (a-c)",
        scale,
        serde_json::to_value(&rows).unwrap(),
    );
    if let Ok(path) = report.write() {
        println!("\nwrote {}", path.display());
    }
}
