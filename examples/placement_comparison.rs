//! Model-placement deep dive on the single 24-node cluster (paper §6.6):
//! compare Helix's flow-maximising placement with the Swarm, Petals and
//! separate-pipelines heuristics, show per-node utilisation under max flow,
//! and (optionally) run the exact MILP planner on a trimmed-down cluster.
//!
//! ```text
//! cargo run --release --example placement_comparison
//! cargo run --release --example placement_comparison -- --milp    # also run the MILP planner
//! ```

use helix::prelude::*;
use std::time::Duration;

fn main() {
    let run_milp = std::env::args().any(|a| a == "--milp");
    let profile =
        ClusterProfile::analytic(ClusterSpec::single_cluster_24(), ModelConfig::llama2_70b());
    println!(
        "cluster: {} | model: {} | throughput upper bound {:.0} tokens/s\n",
        profile.cluster().name,
        profile.model().name,
        profile.throughput_upper_bound()
    );

    let builder = FlowGraphBuilder::new(&profile);
    let report = |name: &str, placement: &ModelPlacement| {
        let graph = builder.build(placement).expect("placement is valid");
        let flow = graph.max_flow();
        let utilization = graph.node_utilization(&flow);
        let fully_used = utilization.values().filter(|&&u| u > 0.9).count();
        println!(
            "{:<22} max-flow {:>8.0} tokens/s | depth {:>2} | {}/{} nodes >90% utilised",
            name,
            flow.value,
            placement.pipeline_depth(profile.model().num_layers),
            fully_used,
            placement.num_assigned(),
        );
        flow.value
    };

    let swarm = heuristics::swarm_placement(&profile).expect("swarm");
    let petals = heuristics::petals_placement(&profile).expect("petals");
    let sp = heuristics::separate_pipelines_placement(&profile).expect("sp");
    let swarm_flow = report("swarm placement", &swarm);
    let petals_flow = report("petals placement", &petals);
    report("separate pipelines", &sp);

    let planner = FlowAnnealingPlanner::new(&profile).with_options(AnnealingOptions {
        iterations: 4000,
        ..Default::default()
    });
    let (helix_placement, helix_flow) = planner.solve().expect("helix placement");
    report("helix placement", &helix_placement);

    println!(
        "\nhelix vs swarm placement : {:.2}x higher max-flow throughput",
        helix_flow / swarm_flow.max(1e-9)
    );
    println!(
        "helix vs petals placement: {:.2}x higher max-flow throughput",
        helix_flow / petals_flow.max(1e-9)
    );

    // Per-node layer counts, grouped by GPU type (the Fig. 9b case study).
    println!("\nhelix placement layer counts per node:");
    for gpu in [GpuType::A100_40, GpuType::L4, GpuType::T4] {
        let counts: Vec<String> = profile
            .cluster()
            .node_ids()
            .filter(|&id| profile.cluster().node(id).gpu == gpu)
            .map(|id| match helix_placement.range(id) {
                Some(r) => r.len().to_string(),
                None => "-".to_string(),
            })
            .collect();
        println!("  {:<5}: {}", gpu.short_name(), counts.join(" "));
    }

    if run_milp {
        // The exact MILP planner on the small solver-quality cluster (§6.9).
        println!("\nrunning the exact MILP planner on the 10-node study cluster…");
        let small =
            ClusterProfile::analytic(ClusterSpec::solver_quality_10(), ModelConfig::llama_30b());
        let mut planner = MilpPlacementPlanner::new(&small)
            .prune_to_degree(6)
            .time_limit(Duration::from_secs(60))
            .record_events();
        match planner.solve() {
            Ok((placement, report)) => {
                println!(
                    "  MILP: {} vars, {} constraints, objective {:.0} tokens/s, {} B&B nodes in {:.1}s",
                    report.num_variables,
                    report.num_constraints,
                    report.objective_tokens_per_sec,
                    report.nodes_explored,
                    report.solve_seconds
                );
                println!(
                    "  placement uses {} of {} nodes",
                    placement.num_assigned(),
                    small.cluster().num_nodes()
                );
            }
            Err(e) => println!("  MILP planner failed: {e}"),
        }
    } else {
        println!("\n(pass --milp to also run the exact MILP planner on the 10-node cluster)");
    }
}
