//! GPU catalogue (paper Table 3).

use serde::{Deserialize, Serialize};
use std::fmt;

/// GPU models considered by the paper (Tables 2–4 and the evaluation
/// clusters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum GpuType {
    /// NVIDIA H100 SXM (80 GB).
    H100,
    /// NVIDIA A100 SXM 80 GB.
    A100_80,
    /// NVIDIA A100 SXM 40 GB (the "A100" of the paper's clusters).
    A100_40,
    /// NVIDIA V100 16 GB.
    V100,
    /// NVIDIA L4 24 GB.
    L4,
    /// NVIDIA T4 16 GB.
    T4,
}

impl GpuType {
    /// All catalogue entries, from most to least capable.
    pub const ALL: [GpuType; 6] = [
        GpuType::H100,
        GpuType::A100_80,
        GpuType::A100_40,
        GpuType::V100,
        GpuType::L4,
        GpuType::T4,
    ];

    /// Hardware specification of this GPU (paper Table 3, NVIDIA data
    /// sheets for V100).
    pub fn spec(self) -> GpuSpec {
        match self {
            GpuType::H100 => GpuSpec {
                gpu: self,
                fp16_tflops: 1979.0,
                memory_gb: 80.0,
                memory_bandwidth_gbps: 3350.0,
                power_watts: 700.0,
                price_usd: 32_500.0,
            },
            GpuType::A100_80 => GpuSpec {
                gpu: self,
                fp16_tflops: 312.0,
                memory_gb: 80.0,
                memory_bandwidth_gbps: 2039.0,
                power_watts: 400.0,
                price_usd: 15_000.0,
            },
            GpuType::A100_40 => GpuSpec {
                gpu: self,
                fp16_tflops: 312.0,
                memory_gb: 40.0,
                memory_bandwidth_gbps: 1555.0,
                power_watts: 400.0,
                price_usd: 12_500.0,
            },
            GpuType::V100 => GpuSpec {
                gpu: self,
                fp16_tflops: 125.0,
                memory_gb: 16.0,
                memory_bandwidth_gbps: 900.0,
                power_watts: 300.0,
                price_usd: 8_000.0,
            },
            GpuType::L4 => GpuSpec {
                gpu: self,
                fp16_tflops: 242.0,
                memory_gb: 24.0,
                memory_bandwidth_gbps: 300.0,
                power_watts: 72.0,
                price_usd: 3_000.0,
            },
            GpuType::T4 => GpuSpec {
                gpu: self,
                fp16_tflops: 65.0,
                memory_gb: 16.0,
                memory_bandwidth_gbps: 300.0,
                power_watts: 70.0,
                price_usd: 1_000.0,
            },
        }
    }

    /// Short display name, matching the paper's usage ("A100" means the
    /// 40 GB SXM part used in the evaluation clusters).
    pub fn short_name(self) -> &'static str {
        match self {
            GpuType::H100 => "H100",
            GpuType::A100_80 => "A100-80GB",
            GpuType::A100_40 => "A100",
            GpuType::V100 => "V100",
            GpuType::L4 => "L4",
            GpuType::T4 => "T4",
        }
    }
}

impl fmt::Display for GpuType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Hardware characteristics of one GPU (paper Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Which GPU this spec describes.
    pub gpu: GpuType,
    /// Peak FP16 tensor throughput in TFLOP/s.
    pub fp16_tflops: f64,
    /// VRAM capacity in GB.
    pub memory_gb: f64,
    /// Memory bandwidth in GB/s.
    pub memory_bandwidth_gbps: f64,
    /// Board power in watts.
    pub power_watts: f64,
    /// Approximate street price in USD.
    pub price_usd: f64,
}

impl GpuSpec {
    /// VRAM capacity in bytes.
    pub fn memory_bytes(&self) -> f64 {
        self.memory_gb * 1e9
    }

    /// FP16 throughput in FLOP/s.
    pub fn fp16_flops(&self) -> f64 {
        self.fp16_tflops * 1e12
    }

    /// Memory bandwidth in bytes/s.
    pub fn memory_bandwidth_bytes(&self) -> f64 {
        self.memory_bandwidth_gbps * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_matches_table_3() {
        assert_eq!(GpuType::H100.spec().fp16_tflops, 1979.0);
        assert_eq!(GpuType::A100_40.spec().memory_gb, 40.0);
        assert_eq!(GpuType::L4.spec().memory_gb, 24.0);
        assert_eq!(GpuType::T4.spec().fp16_tflops, 65.0);
        assert_eq!(GpuType::T4.spec().memory_bandwidth_gbps, 300.0);
    }

    #[test]
    fn ordering_of_compute_capability() {
        // The paper's examples rely on A100 > L4 > T4 in compute capacity.
        let a100 = GpuType::A100_40.spec().fp16_tflops;
        let l4 = GpuType::L4.spec().fp16_tflops;
        let t4 = GpuType::T4.spec().fp16_tflops;
        assert!(a100 > l4 && l4 > t4);
    }

    #[test]
    fn eight_l4_match_one_h100_claim() {
        // Intro claim: eight L4s offer comparable FP16 compute to one H100
        // with more total memory and lower power.
        let l4 = GpuType::L4.spec();
        let h100 = GpuType::H100.spec();
        assert!(8.0 * l4.fp16_tflops > 0.9 * h100.fp16_tflops);
        assert!(8.0 * l4.memory_gb > h100.memory_gb);
        assert!(8.0 * l4.power_watts < h100.power_watts);
    }

    #[test]
    fn unit_conversions() {
        let t4 = GpuType::T4.spec();
        assert_eq!(t4.memory_bytes(), 16e9);
        assert_eq!(t4.fp16_flops(), 65e12);
        assert_eq!(t4.memory_bandwidth_bytes(), 300e9);
    }

    #[test]
    fn display_names() {
        assert_eq!(GpuType::A100_40.to_string(), "A100");
        assert_eq!(GpuType::A100_80.to_string(), "A100-80GB");
        assert_eq!(GpuType::ALL.len(), 6);
    }
}
